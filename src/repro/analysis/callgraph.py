"""Call graph construction and call-site classification.

Figure 5 of the paper classifies every static call site into five
categories: external, indirect, cross-module, within-module (cross-
routine), and recursive.  This module builds the program call graph,
computes SCCs (recursion regions), classifies each site, and provides
the bottom-up traversal order the inliner schedules against.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.instructions import Call, ICall, Instr
from ..ir.procedure import Procedure
from ..ir.program import Program

# Site categories (Figure 5).
EXTERNAL = "external"
INDIRECT = "indirect"
CROSS_MODULE = "cross-module"
WITHIN_MODULE = "within-module"
RECURSIVE = "recursive"

CATEGORIES = (EXTERNAL, INDIRECT, CROSS_MODULE, WITHIN_MODULE, RECURSIVE)


class CallSite:
    """One static call site in the program."""

    __slots__ = ("caller", "block", "index", "instr", "callee", "category")

    def __init__(
        self,
        caller: Procedure,
        block: BasicBlock,
        index: int,
        instr: Instr,
        callee: Optional[Procedure],
        category: str,
    ):
        self.caller = caller
        self.block = block
        self.index = index
        self.instr = instr
        self.callee = callee  # None for indirect/external sites
        self.category = category

    @property
    def site_id(self) -> int:
        return self.instr.site_id

    @property
    def key(self) -> Tuple[str, int]:
        """Profile-database key for this site."""
        return (self.caller.module, self.instr.site_id)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        target = self.callee.name if self.callee else "?"
        return "<CallSite @{} -> @{} [{}] #{}>".format(
            self.caller.name, target, self.category, self.instr.site_id
        )


class CallGraph:
    """The program call graph over *defined* procedures.

    ``sites`` lists every static call site (including external and
    indirect ones, which have no graph edge).  ``edges[name]`` lists the
    sites whose resolved callee is ``name``.
    """

    def __init__(self, program: Program):
        self.program = program
        self.sites: List[CallSite] = []
        self._callees: Dict[str, List[CallSite]] = {}  # caller -> its sites
        self._callers: Dict[str, List[CallSite]] = {}  # callee -> incoming sites
        self._scc_id: Dict[str, int] = {}
        self._sccs: List[List[str]] = []
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        program = self.program
        defined = {p.name: p for p in program.all_procs()}
        raw_edges: Dict[str, List[str]] = {name: [] for name in defined}

        pending: List[Tuple[Procedure, BasicBlock, int, Instr, Optional[Procedure]]] = []
        for proc in program.all_procs():
            self._callees.setdefault(proc.name, [])
            for block, index, instr in proc.call_sites():
                callee: Optional[Procedure] = None
                if isinstance(instr, Call):
                    callee = defined.get(instr.callee)
                    if callee is not None:
                        raw_edges[proc.name].append(callee.name)
                pending.append((proc, block, index, instr, callee))

        self._compute_sccs(defined, raw_edges)

        for proc, block, index, instr, callee in pending:
            category = self._classify(proc, instr, callee)
            site = CallSite(proc, block, index, instr, callee, category)
            self.sites.append(site)
            self._callees[proc.name].append(site)
            if callee is not None:
                self._callers.setdefault(callee.name, []).append(site)

    def _classify(self, caller: Procedure, instr: Instr, callee: Optional[Procedure]) -> str:
        if isinstance(instr, ICall):
            return INDIRECT
        if callee is None:
            return EXTERNAL
        if self._scc_id.get(caller.name) == self._scc_id.get(callee.name):
            return RECURSIVE
        if caller.module != callee.module:
            return CROSS_MODULE
        return WITHIN_MODULE

    def _compute_sccs(self, defined: Dict[str, Procedure], edges: Dict[str, List[str]]) -> None:
        """Iterative Tarjan over direct-call edges.

        A procedure alone in its SCC with no self edge forms a trivial
        SCC; self-recursive procedures get their own nontrivial SCC.
        """
        index_of: Dict[str, int] = {}
        low: Dict[str, int] = {}
        on_stack: Dict[str, bool] = {}
        stack: List[str] = []
        counter = [0]

        # Self-loops must make a node's SCC "recursive"; Tarjan handles
        # this naturally since classification compares SCC ids — a self
        # edge yields caller == callee, same id.

        for root in defined:
            if root in index_of:
                continue
            work: List[Tuple[str, Iterator[str]]] = [(root, iter(edges[root]))]
            index_of[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack[root] = True
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index_of:
                        index_of[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack[succ] = True
                        work.append((succ, iter(edges[succ])))
                        advanced = True
                        break
                    if on_stack.get(succ):
                        low[node] = min(low[node], index_of[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    scc: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        scc.append(member)
                        if member == node:
                            break
                    scc_index = len(self._sccs)
                    self._sccs.append(scc)
                    for member in scc:
                        self._scc_id[member] = scc_index

        # Distinguish trivial SCCs from self-recursive singletons: a
        # singleton with no self edge should NOT classify its intra-SCC
        # calls as recursive (there are none), but a self edge should.
        # Classification naturally handles this because a direct call
        # A -> A compares equal SCC ids regardless.

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def sites_in(self, proc_name: str) -> List[CallSite]:
        return list(self._callees.get(proc_name, []))

    def callers_of(self, proc_name: str) -> List[CallSite]:
        return list(self._callers.get(proc_name, []))

    def scc_of(self, proc_name: str) -> List[str]:
        scc_id = self._scc_id.get(proc_name)
        if scc_id is None:
            return [proc_name]
        return list(self._sccs[scc_id])

    def in_cycle(self, proc_name: str) -> bool:
        """True when the procedure participates in recursion."""
        scc = self.scc_of(proc_name)
        if len(scc) > 1:
            return True
        return any(
            site.callee is not None and site.callee.name == proc_name
            for site in self.sites_in(proc_name)
        )

    def bottom_up_order(self) -> List[str]:
        """Procedure names ordered callees-first (SCC condensation order).

        Tarjan emits SCCs in reverse topological order of the
        condensation — exactly callees-first — so we flatten that.
        """
        order: List[str] = []
        for scc in self._sccs:
            order.extend(sorted(scc))
        return order

    def category_counts(self) -> Dict[str, int]:
        """Static call-site mix — one row of Figure 5."""
        counts = {cat: 0 for cat in CATEGORIES}
        for site in self.sites:
            counts[site.category] += 1
        return counts

    def reachable_from(self, roots: List[str]) -> List[str]:
        """Procedures reachable from ``roots`` via direct calls and
        address-taken references (a FuncRef anywhere keeps a procedure
        alive, since an indirect call might reach it)."""
        from ..ir.values import FuncRef

        address_taken = set()
        for proc in self.program.all_procs():
            for instr in proc.instructions():
                for op in instr.uses():
                    if isinstance(op, FuncRef):
                        address_taken.add(op.name)

        seen: set = set()
        work = [r for r in roots if self.program.proc(r) is not None]
        work.extend(n for n in address_taken if self.program.proc(n) is not None)
        while work:
            name = work.pop()
            if name in seen:
                continue
            seen.add(name)
            for site in self.sites_in(name):
                if site.callee is not None and site.callee.name not in seen:
                    work.append(site.callee.name)
        return sorted(seen)
