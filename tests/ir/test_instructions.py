"""Instruction behaviours: uses, operand rewriting, retargeting, copying."""

import pytest

from repro.ir import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Imm,
    Jump,
    Load,
    Mov,
    Probe,
    Reg,
    Ret,
    Store,
    UnOp,
    FuncRef,
)


def upper_regs(op):
    if isinstance(op, Reg):
        return Reg(op.name.upper())
    return op


class TestUsesAndMapping:
    def test_mov(self):
        instr = Mov(Reg("d"), Reg("s"))
        assert instr.uses() == [Reg("s")]
        instr.map_operands(upper_regs)
        assert instr.src == Reg("S")
        assert instr.dest == Reg("d")  # dest is not a use

    def test_binop(self):
        instr = BinOp(Reg("d"), "add", Reg("a"), Imm(3))
        assert instr.uses() == [Reg("a"), Imm(3)]
        instr.map_operands(upper_regs)
        assert instr.lhs == Reg("A")
        assert instr.rhs == Imm(3)

    def test_unop(self):
        instr = UnOp(Reg("d"), "neg", Reg("a"))
        assert instr.uses() == [Reg("a")]

    def test_load_store(self):
        load = Load(Reg("d"), Reg("p"))
        store = Store(Reg("p"), Reg("v"))
        assert load.uses() == [Reg("p")]
        assert store.uses() == [Reg("p"), Reg("v")]
        assert store.dest is None

    def test_call_uses_args_only(self):
        call = Call(Reg("d"), "f", [Reg("a"), Imm(1)], site_id=7)
        assert call.uses() == [Reg("a"), Imm(1)]
        call.map_operands(upper_regs)
        assert call.args == [Reg("A"), Imm(1)]
        assert call.site_id == 7

    def test_icall_uses_func_and_args(self):
        icall = ICall(None, Reg("f"), [Reg("a")], site_id=3)
        assert icall.uses() == [Reg("f"), Reg("a")]
        icall.map_operands(upper_regs)
        assert icall.func == Reg("F")

    def test_branch_and_ret(self):
        br = Branch(Reg("c"), "a", "b")
        assert br.uses() == [Reg("c")]
        ret = Ret(Reg("v"))
        assert ret.uses() == [Reg("v")]
        assert Ret(None).uses() == []


class TestControlFlow:
    def test_targets(self):
        assert Jump("x").targets() == ["x"]
        assert Branch(Imm(1), "a", "b").targets() == ["a", "b"]
        assert Ret(None).targets() == []
        assert Mov(Reg("d"), Imm(0)).targets() == []

    def test_retarget(self):
        br = Branch(Imm(1), "a", "b")
        br.retarget({"a": "z"})
        assert br.targets() == ["z", "b"]
        jmp = Jump("a")
        jmp.retarget({"a": "q", "b": "r"})
        assert jmp.target == "q"

    def test_terminator_flags(self):
        assert Jump("x").is_terminator
        assert Branch(Imm(1), "a", "b").is_terminator
        assert Ret(None).is_terminator
        assert not Call(None, "f", [], 0).is_terminator
        assert not Probe(0).is_terminator


class TestMisc:
    def test_alloca_dynamic_flag(self):
        assert not Alloca(Reg("d"), Imm(8)).is_dynamic
        assert Alloca(Reg("d"), Reg("n")).is_dynamic

    def test_icall_to_direct(self):
        icall = ICall(Reg("d"), FuncRef("f"), [Imm(1)], site_id=9)
        call = icall.to_direct()
        assert isinstance(call, Call)
        assert call.callee == "f"
        assert call.site_id == 9
        assert call.origin == 9

    def test_icall_to_direct_requires_funcref(self):
        with pytest.raises(ValueError):
            ICall(None, Reg("f"), [], 0).to_direct()

    def test_origin_defaults_to_site(self):
        call = Call(None, "f", [], site_id=4)
        assert call.origin == 4
        derived = Call(None, "f", [], site_id=9, origin=4)
        assert derived.origin == 4

    def test_copy_is_deep(self):
        call = Call(Reg("d"), "f", [Reg("a")], 1)
        dup = call.copy()
        dup.args[0] = Imm(9)
        dup.site_id = 99
        assert call.args == [Reg("a")]
        assert call.site_id == 1

    def test_str_forms(self):
        assert str(Mov(Reg("d"), Imm(1))) == "%d = mov 1"
        assert str(Store(Reg("p"), Imm(2))) == "store [%p], 2"
        assert str(Jump("L")) == "jmp L"
        assert "call @f(%a) #2" in str(Call(None, "f", [Reg("a")], 2))
        assert str(Probe(5)) == "probe 5"
