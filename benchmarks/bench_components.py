"""Substrate micro-benchmarks: compiler and simulator throughput.

Not a paper table — these track the toolchain's own performance so
regressions in the IR, front end, optimizer, HLO, or interpreter show
up in benchmark history.  Multi-round timing is meaningful here.
"""

from __future__ import annotations

import pytest

from repro.core import HLOConfig, run_hlo
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import parse_module, print_module
from repro.opt import optimize_program
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def li_sources():
    return list(get_workload("li").sources)


def test_frontend_throughput(benchmark, li_sources):
    program = benchmark(compile_program, li_sources)
    assert program.proc("main") is not None


def test_isom_roundtrip_throughput(benchmark, li_sources):
    program = compile_program(li_sources)
    module = next(iter(program.modules.values()))
    text = print_module(module)

    def roundtrip():
        return print_module(parse_module(text))

    assert benchmark(roundtrip) == text


def test_optimizer_throughput(benchmark, li_sources):
    def build_and_optimize():
        program = compile_program(li_sources)
        optimize_program(program)
        return program

    program = benchmark(build_and_optimize)
    assert program.size() > 0


def test_hlo_throughput(benchmark, li_sources):
    def build_and_hlo():
        program = compile_program(li_sources)
        return run_hlo(program, HLOConfig(budget_percent=400))

    report = benchmark(build_and_hlo)
    assert report.inlines > 0


def test_interpreter_throughput(benchmark, li_sources):
    program = compile_program(li_sources)
    inputs = get_workload("li").train_inputs[0]

    def run():
        return run_program(program, inputs)

    result = benchmark(run)
    assert result.exit_code == result.exit_code  # deterministic completion
