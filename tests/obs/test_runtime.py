"""Guest flamegraphs: the runtime profiler and its exports."""

from __future__ import annotations

import json

import pytest

from repro.frontend.driver import compile_program
from repro.interp.engine import sink_mode
from repro.interp.interpreter import ENGINES, run_program
from repro.obs.metrics import collect_runtime_metrics
from repro.obs.runtime import FLAME_SCHEMA, RuntimeProfiler
from repro.obs.validate import validate_flame

SOURCES = [
    (
        "util",
        "int weigh(int x) { return x * 3 + 1; }\n"
        "int heavy(int x) { int i = 0; int acc = 0;\n"
        "  while (i < 8) { acc = acc + weigh(x + i); i = i + 1; }\n"
        "  return acc; }\n",
    ),
    (
        "main",
        "extern int heavy(int x);\n"
        "int main() { int n = input(0); int i = 0; int acc = 0;\n"
        "  while (i < 12) { acc = acc + heavy(n + i); i = i + 1; }\n"
        "  print_int(acc); return 0; }\n",
    ),
]

INPUTS = [5]


@pytest.fixture(scope="module")
def program():
    return compile_program(SOURCES)


def profiled_run(program, rate=4, seed=3, engine="fast"):
    profiler = RuntimeProfiler(rate=rate, seed=seed)
    run_program(program, INPUTS, sink=profiler, engine=engine)
    return profiler


class TestSampling:
    def test_records_full_stacks(self, program):
        profiler = profiled_run(program)
        assert profiler.samples > 0
        assert profiler.events > 0
        # Every context is rooted at main and leaf frames include the
        # hot helper chain main -> heavy -> weigh.
        assert all(stack[0] == "main" for stack in profiler.stack_samples)
        assert ("main", "heavy", "weigh") in profiler.stack_samples
        assert profiler.max_stack_depth >= 3

    def test_deterministic_for_fixed_seed(self, program):
        first = profiled_run(program, seed=11)
        second = profiled_run(program, seed=11)
        assert first.stack_samples == second.stack_samples
        assert first.call_edges == second.call_edges
        assert first.samples == second.samples

    def test_rate_one_is_exact(self, program):
        profiler = profiled_run(program, rate=1)
        assert profiler.samples == profiler.events
        assert profiler.effective_rate == 1.0
        # At rate 1 the weights are exact instruction counts.
        total = sum(w for _stack, w in profiler.weighted_stacks())
        assert total == profiler.events

    def test_call_edges_are_exact(self, program):
        profiler = profiled_run(program)
        # main calls heavy 12 times, heavy calls weigh 8 times each —
        # exact tallies regardless of the sampling rate.
        assert profiler.call_edges[("main", "heavy")] == 12
        assert profiler.call_edges[("heavy", "weigh")] == 96

    def test_identical_across_all_engines(self, program):
        runs = [profiled_run(program, engine=engine) for engine in ENGINES]
        want = runs[0]
        for got in runs[1:]:
            assert got.stack_samples == want.stack_samples
            assert got.call_edges == want.call_edges
            assert got.samples == want.samples
            assert got.events == want.events


class TestDisabled:
    def test_negotiates_like_no_sink(self):
        disabled = RuntimeProfiler(enabled=False)
        assert sink_mode(disabled) == sink_mode(None)

    def test_records_nothing(self, program):
        disabled = RuntimeProfiler(enabled=False)
        run_program(program, INPUTS, sink=disabled, engine="fast")
        assert disabled.events == 0
        assert disabled.samples == 0
        assert disabled.stack_samples == {}

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            RuntimeProfiler(rate=0)


class TestExports:
    def test_collapsed_format(self, program):
        profiler = profiled_run(program)
        for line in profiler.collapsed().strip().splitlines():
            stack, _sep, weight = line.rpartition(" ")
            assert int(weight) >= 1
            assert stack.split(";")[0] == "main"

    def test_speedscope_passes_validator(self, program):
        profiler = profiled_run(program)
        doc = profiler.speedscope()
        assert validate_flame(doc) == []
        assert doc["$schema"] == FLAME_SCHEMA
        prof = doc["profiles"][0]
        assert prof["type"] == "sampled"
        assert len(prof["samples"]) == len(prof["weights"])
        assert prof["endValue"] == sum(prof["weights"])

    def test_write_auto_format_by_extension(self, program, tmp_path):
        profiler = profiled_run(program)
        json_path = tmp_path / "flame.json"
        text_path = tmp_path / "flame.folded"
        assert profiler.write(str(json_path)) == "speedscope"
        assert profiler.write(str(text_path)) == "collapsed"
        loaded = json.loads(json_path.read_text())
        assert validate_flame(loaded) == []
        assert text_path.read_text() == profiler.collapsed()
        with pytest.raises(ValueError):
            profiler.write(str(text_path), fmt="elf")

    def test_format_text_summary(self, program):
        profiler = profiled_run(program)
        text = profiler.format_text(limit=3)
        assert "runtime profile:" in text
        assert "hot call edges (exact):" in text

    def test_runtime_metrics_collection(self, program):
        profiler = profiled_run(program)
        registry = collect_runtime_metrics(profiler)
        assert registry.value("runtime.samples") == profiler.samples
        assert registry.value("runtime.events") == profiler.events
        assert registry.value("runtime.contexts") == len(profiler.stack_samples)
        assert registry.value("runtime.call_edges") == len(profiler.call_edges)
        assert (
            registry.value("runtime.max_stack_depth")
            == profiler.max_stack_depth
        )


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_flame([]) != []

    def test_rejects_missing_profiles(self):
        errors = validate_flame({"$schema": FLAME_SCHEMA, "shared": {"frames": []}})
        assert any("profiles" in e for e in errors)

    def test_rejects_frame_index_out_of_range(self, program):
        doc = profiled_run(program).speedscope()
        doc["profiles"][0]["samples"][0] = [10**6]
        assert any("frame index" in e for e in validate_flame(doc))

    def test_rejects_samples_weights_mismatch(self, program):
        doc = profiled_run(program).speedscope()
        doc["profiles"][0]["weights"].append(1)
        assert validate_flame(doc) != []
