"""The inline schedule's cascaded-cost replay (_replay_cost)."""

from repro.analysis import CallGraph, entry_counts
from repro.core import HLOConfig, rank_site
from repro.core.inliner import GLUE_FIXED, GLUE_PER_ARG, ScheduledInline, _replay_cost
from repro.frontend import compile_program


SOURCES = [
    (
        "m",
        """
        int c_fn(int x) { return x + 1; }
        int b_fn(int x) { return c_fn(x) * 2; }
        int a_fn(int x) { return b_fn(x) - 3; }
        int main() { return a_fn(4); }
        """,
    )
]


def scheduled(program, caller, callee):
    graph = CallGraph(program)
    entry = entry_counts(program, graph, None)
    site = next(
        s
        for s in graph.sites
        if s.caller.name == caller and s.callee and s.callee.name == callee
    )
    return ScheduledInline(rank_site(site, entry, HLOConfig(), None))


class TestReplayCost:
    def setup_method(self):
        self.program = compile_program(SOURCES)
        self.graph = CallGraph(self.program)
        self.rank = {n: i for i, n in enumerate(self.graph.bottom_up_order())}
        self.sizes = {p.name: p.size() for p in self.program.all_procs()}

    def test_empty_schedule_is_base_cost(self):
        cost = _replay_cost([], self.sizes, self.rank)
        assert cost == sum(s * s for s in self.sizes.values())

    def test_single_inline_grows_caller_quadratically(self):
        item = scheduled(self.program, "b_fn", "c_fn")
        cost = _replay_cost([item], self.sizes, self.rank)
        added = self.sizes["c_fn"] + 1 * GLUE_PER_ARG + GLUE_FIXED - 1
        expected = dict(self.sizes)
        expected["b_fn"] += added
        assert cost == sum(s * s for s in expected.values())

    def test_cascade_uses_grown_callee(self):
        """Accepting b<-c makes a<-b strictly more expensive: the replay
        performs bottom-up, so a_fn receives the already-grown b_fn."""
        ab = scheduled(self.program, "a_fn", "b_fn")
        bc = scheduled(self.program, "b_fn", "c_fn")
        without_cascade = _replay_cost([ab], self.sizes, self.rank)
        with_cascade = _replay_cost([ab, bc], self.sizes, self.rank)
        # The pair costs more than each alone (b grew before a copied it).
        bc_only = _replay_cost([bc], self.sizes, self.rank)
        base = _replay_cost([], self.sizes, self.rank)
        delta_ab = without_cascade - base
        delta_bc = bc_only - base
        assert with_cascade - base > delta_ab + delta_bc

    def test_order_independence_of_input_list(self):
        """The replay sorts internally: schedule list order is irrelevant."""
        ab = scheduled(self.program, "a_fn", "b_fn")
        bc = scheduled(self.program, "b_fn", "c_fn")
        assert _replay_cost([ab, bc], self.sizes, self.rank) == _replay_cost(
            [bc, ab], self.sizes, self.rank
        )

    def test_self_recursive_edge_doubles(self):
        sources = [
            (
                "m",
                """
                int r(int n) { if (n <= 0) return 0; return n + r(n - 1); }
                int main() { return r(3); }
                """,
            )
        ]
        program = compile_program(sources)
        graph = CallGraph(program)
        rank = {n: i for i, n in enumerate(graph.bottom_up_order())}
        sizes = {p.name: p.size() for p in program.all_procs()}
        item = scheduled(program, "r", "r")
        cost = _replay_cost([item], sizes, rank)
        grown = sizes["r"] * 2 + GLUE_PER_ARG + GLUE_FIXED - 1
        expected = dict(sizes)
        expected["r"] = grown
        assert cost == sum(s * s for s in expected.values())
