"""Table 1: inline and clone counts across the four scope configurations.

Paper: for selected SPECint benchmarks, each scope row (base, c, p, cp)
reports inlines, clones, clone replacements (sites modified), routine
deletions, compile time, and run time.  Headline claims the table
supports:

- widening scope (c) and adding profiles (p) both change which — and
  how many — transforms are chosen;
- cross-module scopes delete far more routines (clonees/inlinees become
  unreachable at link time, which module-at-a-time builds must keep);
- profile builds pay compile-time overhead (instrumenting compile plus
  training run) yet usually win on run time;
- run time improves broadly from base to cp ("by and large, this
  monotonic improvement property holds").
"""

from __future__ import annotations

from repro.bench import TABLE1_WORKLOADS, format_table, table1_transforms


def test_table1_transform_counts(benchmark, lab, archive):
    headers, rows = benchmark.pedantic(
        table1_transforms, args=(lab,), rounds=1, iterations=1
    )
    text = format_table(headers, rows, "Table 1: transforms by scope")
    archive("table1_transforms", text)

    by_key = {(r[0], r[1]): dict(zip(headers, r)) for r in rows}
    for name in TABLE1_WORKLOADS:
        base = by_key[(name, "base")]
        cp = by_key[(name, "cp")]
        c = by_key[(name, "c")]
        p = by_key[(name, "p")]
        # Link-time scope can delete; module-at-a-time mostly cannot.
        assert c["deletions"] >= base["deletions"], name
        # The profile pipeline costs extra compile units.
        assert p["compile_units"] > base["compile_units"], name
        assert cp["compile_units"] > c["compile_units"], name
        # The paper's headline: full scope beats the base compile.
        assert cp["run_cycles"] < base["run_cycles"] * 1.02, name

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]
