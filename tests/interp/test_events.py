"""The event stream contract between interpreter and machine model."""

from repro.frontend import compile_program
from repro.interp import EventSink, run_program


class RecordingSink(EventSink):
    def __init__(self):
        self.instrs = []
        self.branches = []
        self.calls = []
        self.returns = []
        self.mems = []

    def on_instr(self, proc, label, index, instr):
        self.instrs.append((proc.name, label, index, type(instr).__name__))

    def on_branch(self, proc, label, index, kind, taken, target_label):
        self.branches.append((proc.name, kind, taken, target_label))

    def on_call(self, caller, callee_name, kind, n_args):
        self.calls.append((caller.name, callee_name, kind, n_args))

    def on_return(self, callee_name, caller):
        self.returns.append((callee_name, caller.name))

    def on_mem(self, addr, is_store):
        self.mems.append((addr, is_store))


SOURCES = [
    (
        "m",
        """
        int g[4];
        int tiny(int x) { return x + 1; }
        int apply(int f, int x) { return f(x); }
        int main() {
          g[0] = tiny(1);
          int r = apply(&tiny, g[0]);
          print_int(r);
          if (r > 2) return 1;
          return 0;
        }
        """,
    )
]


def run_with_sink():
    sink = RecordingSink()
    program = compile_program(SOURCES)
    result = run_program(program, sink=sink)
    return sink, result


class TestEventStream:
    def test_instr_events_cover_all_steps(self):
        sink, result = run_with_sink()
        assert len(sink.instrs) == result.steps

    def test_call_kinds(self):
        sink, _ = run_with_sink()
        kinds = {(callee, kind) for _c, callee, kind, _n in sink.calls}
        assert ("tiny", "direct") in kinds
        assert ("tiny", "indirect") in kinds  # through apply's parameter
        assert ("print_int", "builtin") in kinds

    def test_returns_name_callee_and_receiver(self):
        sink, _ = run_with_sink()
        assert ("tiny", "main") in sink.returns
        assert ("apply", "main") in sink.returns
        assert ("tiny", "apply") in sink.returns
        # Builtins do not produce return events.
        assert all(callee != "print_int" for callee, _ in sink.returns)

    def test_mem_events_for_global_traffic(self):
        sink, _ = run_with_sink()
        stores = [addr for addr, is_store in sink.mems if is_store]
        loads = [addr for addr, is_store in sink.mems if not is_store]
        assert len(stores) == 1  # g[0] = ...
        assert len(loads) == 1  # ... = g[0]
        assert stores == loads  # same cell

    def test_branch_events_record_direction(self):
        sink, _ = run_with_sink()
        cond = [(taken, target) for _p, kind, taken, target in sink.branches if kind == "cond"]
        assert cond  # the r > 2 test
        taken_flags = {taken for taken, _t in cond}
        assert True in taken_flags  # r == 3 > 2

    def test_instr_identities_are_resolvable(self):
        """Every (proc, label, index) the sink sees must exist in the
        program — the machine layout depends on this."""
        sink, _ = run_with_sink()
        program = compile_program(SOURCES)
        for proc_name, label, index, _cls in sink.instrs:
            proc = program.proc(proc_name)
            assert proc is not None
            assert label in proc.blocks
            assert index < len(proc.blocks[label].instrs)
