"""Workload kernels checked against independent Python reference models.

The benchmark checksums must mean something: each test here re-derives
a workload's expected output with a straightforward Python model of the
same algorithm (PRNG included) and compares against the compiled minic
program's actual output.
"""

from repro.interp import run_program
from repro.workloads import get_workload


def outputs(name, inputs):
    program = get_workload(name).compile()
    return list(run_program(program, inputs, max_steps=4_000_000).output)


class TestCompressReference:
    """LZW with a 1024-slot probing table, mirrored in Python."""

    @staticmethod
    def reference(n, period, noise):
        # data generation (module `data`): LCG seed 99991, a*48271 % (2^31-1)
        seed = 99991
        data = []

        def rnd(m):
            nonlocal seed
            seed = (seed * 48271) % 2147483647
            return seed % m

        for i in range(n):
            if rnd(100) < noise:
                data.append(rnd(256))
            else:
                data.append(((i % period) * 13 + 7) & 255)

        # compression (modules `table` + `lzw`)
        tab_key = [-1] * 1024
        tab_val = [0] * 1024

        def find(prefix, ch):
            h = ((prefix * 31) + ch * 7) & 1023
            key = prefix * 256 + ch
            probes = 0
            while tab_key[h] != -1 and probes < 1024:
                if tab_key[h] == key:
                    return tab_val[h]
                h = (h + 1) & 1023
                probes += 1
            return -1

        def add(prefix, ch, code):
            h = ((prefix * 31) + ch * 7) & 1023
            probes = 0
            while tab_key[h] != -1 and probes < 1024:
                h = (h + 1) & 1023
                probes += 1
            if probes >= 1024:
                return
            tab_key[h] = prefix * 256 + ch
            tab_val[h] = code

        out_count = 0
        out_sum = 0

        def emit(code):
            nonlocal out_count, out_sum
            out_count += 1
            out_sum = (out_sum + code * ((out_count & 7) + 1)) % 1000003

        next_code = 256
        prefix = data[0]
        for ch in data[1:n]:
            code = find(prefix, ch)
            if code != -1:
                prefix = code
            else:
                emit(prefix)
                if next_code < 768:
                    add(prefix, ch, next_code)
                    next_code += 1
                prefix = ch
        emit(prefix)
        return [out_count, out_sum]

    def test_train_input_matches(self):
        n, period, noise = get_workload("compress").train_inputs[0]
        assert outputs("compress", (n, period, noise)) == self.reference(n, period, noise)

    def test_other_inputs_match(self):
        for params in [(100, 5, 0), (333, 7, 50), (1024, 13, 25)]:
            assert outputs("compress", params) == self.reference(*params), params


class TestM88ksimReference:
    """The guest program is a nested summation loop; model it exactly."""

    @staticmethod
    def reference(loops, asize, cap):
        asize = min(asize, 15)
        data = [(i * 3 + 1) & 15 for i in range(asize)]
        acc = sum(data) * loops
        # Guest instruction count: 2 setup + per outer iteration
        # (1 init + asize*4 inner + 1 incr + 1 branch) + final halt.
        per_outer = 1 + asize * 4 + 2
        steps = 2 + loops * per_outer + 1
        steps = min(steps, cap)
        return [acc, loops, steps, steps]

    def test_train_input_matches(self):
        loops, asize, cap = get_workload("m88ksim").train_inputs[0]
        assert outputs("m88ksim", (loops, asize, cap)) == self.reference(loops, asize, cap)

    def test_various_guest_shapes(self):
        for params in [(1, 1, 1000), (3, 5, 1000), (7, 15, 100000)]:
            assert outputs("m88ksim", params) == self.reference(*params), params

    def test_step_cap_halts_guest(self):
        loops, asize = 50, 10
        full = self.reference(loops, asize, 10**9)[2]
        capped = outputs("m88ksim", (loops, asize, full // 2))
        assert capped[2] == full // 2  # stopped exactly at the cap


class TestEqntottReference:
    """Boolean DAG evaluation and the gray-code comparator sort."""

    @staticmethod
    def reference(nvars, nnodes, rounds):
        nvars = min(nvars, 10)
        seed = 555

        def rnd(m):
            nonlocal seed
            seed = (seed * 1103515245 + 12345) % 2147483648
            if seed < 0:
                seed = -seed
            return seed % m

        kinds, lefts, rights = [], [], []

        def enode(kind, l, r):
            kinds.append(kind)
            lefts.append(l)
            rights.append(r)
            return len(kinds) - 1

        last = 0
        for i in range(nvars):
            last = enode(0, i, 0)
        for _ in range(nnodes):
            k = 1 + rnd(4)
            l = rnd(len(kinds))
            r = rnd(len(kinds))
            last = enode(4, l, 0) if k == 4 else enode(k, l, r)
        root = last

        def beval(n, assignment):
            k = kinds[n]
            if k == 0:
                return (assignment >> lefts[n]) & 1
            if k == 4:
                return 1 - beval(lefts[n], assignment)
            l = beval(lefts[n], assignment)
            r = beval(rights[n], assignment)
            if k == 1:
                return l & r
            if k == 2:
                return l | r
            return l ^ r

        limit = 1 << nvars
        table = [beval(root, a) * 512 + (a ^ (a >> 2)) for a in range(limit)]

        def cmp_key(which):
            if which == 1:
                return lambda v: v
            if which == 2:
                return lambda v: -v
            return lambda v: ((v ^ (v >> 1)), v)

        check = 0
        for rnd_i in range(rounds):
            table.sort(key=cmp_key(rnd_i % 3))
            s = 0
            for v in table:
                s = (s * 31 + v) % 1000003
            check = (check + s) % 1000003
        return [check, limit]

    def test_train_input_matches(self):
        params = get_workload("eqntott").train_inputs[0]
        assert outputs("eqntott", params) == self.reference(*params)

    def test_ref_input_matches(self):
        params = get_workload("eqntott").ref_input
        assert outputs("eqntott", params) == self.reference(*params)
