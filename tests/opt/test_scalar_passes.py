"""Copy propagation, CSE, DCE, peephole, simplify-CFG."""

from repro.interp import run_program
from repro.ir import (
    BinOp,
    Branch,
    Imm,
    Jump,
    Load,
    Mov,
    Reg,
    Store,
)
from repro.opt import (
    copy_propagation,
    dead_code_elimination,
    liveness,
    local_cse,
    peephole,
    simplify_cfg,
)

from ..conftest import single_proc_program


def count(program, cls, name="main"):
    return sum(isinstance(i, cls) for i in program.proc(name).instructions())


class TestCopyProp:
    def test_single_def_forwarding(self):
        def body(b):
            x = b.call("input", [0])
            y = b.mov(x)
            z = b.mov(y)
            b.ret(b.add(z, 1))

        program = single_proc_program(body)
        changed = copy_propagation(program, program.proc("main"))
        assert changed
        add = next(i for i in program.proc("main").instructions() if isinstance(i, BinOp))
        # The add now reads the original input register through the chain.
        assert run_program(program, [41]).exit_code == 42

    def test_redefined_source_not_forwarded_globally(self):
        def body(b):
            x = b.reg("x")
            b.mov(1, x)
            y = b.mov(x)  # y = 1 here
            b.mov(2, x)  # x redefined
            b.ret(y)  # must still be 1

        program = single_proc_program(body)
        copy_propagation(program, program.proc("main"))
        assert run_program(program).exit_code == 1

    def test_local_forwarding_within_block(self):
        def body(b):
            v = b.call("input", [0])
            c = b.mov(v)
            b.ret(b.add(c, c))

        program = single_proc_program(body)
        copy_propagation(program, program.proc("main"))
        assert run_program(program, [5]).exit_code == 10


class TestCSE:
    def test_repeated_expression_reused(self):
        def body(b):
            x = b.call("input", [0])
            a = b.mul(x, x)
            bb = b.mul(x, x)
            b.ret(b.add(a, bb))

        program = single_proc_program(body)
        assert local_cse(program, program.proc("main"))
        muls = count(program, BinOp)
        assert run_program(program, [3]).exit_code == 18

    def test_commutative_matching(self):
        def body(b):
            x = b.call("input", [0])
            y = b.call("input", [1])
            a = b.add(x, y)
            bb = b.add(y, x)
            b.ret(b.sub(a, bb))

        program = single_proc_program(body)
        assert local_cse(program, program.proc("main"))
        assert run_program(program, [3, 9]).exit_code == 0

    def test_loads_killed_by_store(self):
        def body(b):
            p = b.alloca(1)
            b.store(p, 1)
            v1 = b.load(p)
            b.store(p, 2)
            v2 = b.load(p)  # must NOT reuse v1
            b.ret(b.add(v1, v2))

        program = single_proc_program(body)
        local_cse(program, program.proc("main"))
        assert run_program(program).exit_code == 3

    def test_loads_killed_by_call(self):
        def body(b):
            p = b.alloca(1)
            b.store(p, 5)
            v1 = b.load(p)
            b.call("print_int", [v1], dest=False)
            v2 = b.load(p)
            b.ret(b.add(v1, v2))

        program = single_proc_program(body)
        local_cse(program, program.proc("main"))
        loads = count(program, Load)
        assert loads == 2  # the second load must survive

    def test_self_referential_not_recorded(self):
        def body(b):
            x = b.reg("x")
            b.mov(1, x)
            b.binop("add", x, 1, dest=x)  # x = x + 1
            y = b.binop("add", x, 1)  # different value!
            b.ret(y)

        program = single_proc_program(body)
        local_cse(program, program.proc("main"))
        assert run_program(program).exit_code == 3


class TestDCE:
    def test_dead_arithmetic_removed(self):
        def body(b):
            b.mul(6, 7)  # dead
            b.ret(1)

        program = single_proc_program(body)
        assert dead_code_elimination(program, program.proc("main"))
        assert count(program, BinOp) == 0

    def test_possibly_trapping_div_kept(self):
        def body(b):
            n = b.call("input", [0])
            b.div(10, n)  # dead but may trap
            b.ret(1)

        program = single_proc_program(body)
        dead_code_elimination(program, program.proc("main"))
        assert count(program, BinOp) == 1

    def test_stores_never_removed(self):
        def body(b):
            p = b.alloca(1)
            b.store(p, 9)
            b.ret(0)

        program = single_proc_program(body)
        dead_code_elimination(program, program.proc("main"))
        assert count(program, Store) == 1

    def test_live_through_loop(self):
        def body(b):
            s = b.reg("s")
            i = b.reg("i")
            b.mov(0, s)
            b.mov(0, i)
            head, body_b, done = b.new_block(), b.new_block(), b.new_block()
            b.jump(head)
            b.set_block(head)
            t = b.lt(i, 5)
            b.branch(t, body_b, done)
            b.set_block(body_b)
            b.binop("add", s, i, dest=s)
            b.binop("add", i, 1, dest=i)
            b.jump(head)
            b.set_block(done)
            b.ret(s)

        program = single_proc_program(body)
        dead_code_elimination(program, program.proc("main"))
        assert run_program(program).exit_code == 10

    def test_liveness_facts(self):
        def body(b):
            x = b.reg("x")
            b.mov(3, x)
            exit_b = b.new_block()
            b.jump(exit_b)
            b.set_block(exit_b)
            b.ret(x)

        program = single_proc_program(body)
        live = liveness(program.proc("main"))
        assert "x" in live["entry"]


class TestPeephole:
    def cases(self):
        return [
            # (op, lhs_reg, const, expected result when reg=6)
            ("add", 0, 6),
            ("sub", 0, 6),
            ("mul", 1, 6),
            ("mul", 0, 0),
            ("div", 1, 6),
            ("or", 0, 6),
            ("xor", 0, 6),
            ("and", 0, 0),
            ("mod", 1, 0),
        ]

    def test_identities(self):
        for op, const, expected in self.cases():
            def body(b, op=op, const=const):
                x = b.call("input", [0])
                r = b.binop(op, x, const)
                b.ret(r)

            program = single_proc_program(body)
            peephole(program, program.proc("main"))
            assert run_program(program, [6]).exit_code == expected, (op, const)

    def test_mul_power_of_two_becomes_shift(self):
        def body(b):
            x = b.call("input", [0])
            b.ret(b.mul(x, 8))

        program = single_proc_program(body)
        assert peephole(program, program.proc("main"))
        shifts = [i for i in program.proc("main").instructions() if getattr(i, "op", "") == "shl"]
        assert shifts
        assert run_program(program, [5]).exit_code == 40

    def test_float_identities_not_applied(self):
        def body(b):
            x = b.call("input", [0])
            f = b.unop("itof", x)
            r = b.binop("add", f, b.const(0.0))
            g = b.unop("ftoi", r)
            b.ret(g)

        program = single_proc_program(body)
        changed = peephole(program, program.proc("main"))
        assert not changed  # 0.0 is a float immediate: no identity


class TestSimplifyCFG:
    def test_jump_threading_and_merge(self):
        def body(b):
            hop1, hop2, dest = b.new_block(), b.new_block(), b.new_block()
            b.jump(hop1)
            b.set_block(hop1)
            b.jump(hop2)
            b.set_block(hop2)
            b.jump(dest)
            b.set_block(dest)
            b.ret(9)

        program = single_proc_program(body)
        assert simplify_cfg(program, program.proc("main"))
        assert len(program.proc("main").blocks) == 1
        assert run_program(program).exit_code == 9

    def test_unreachable_blocks_removed(self):
        def body(b):
            dead = b.new_block()
            b.ret(1)
            b.set_block(dead)
            b.ret(2)

        program = single_proc_program(body)
        simplify_cfg(program, program.proc("main"))
        assert len(program.proc("main").blocks) == 1

    def test_same_target_branch_collapses(self):
        def body(b):
            t = b.call("input", [0])
            dest = b.new_block()
            b.block.append(Branch(t, dest.label, dest.label))
            b.set_block(dest)
            b.ret(4)

        program = single_proc_program(body)
        simplify_cfg(program, program.proc("main"))
        assert not any(
            isinstance(i, Branch) for i in program.proc("main").instructions()
        )
        assert run_program(program, [1]).exit_code == 4

    def test_entry_never_merged_away(self):
        def body(b):
            nxt = b.new_block()
            b.jump(nxt)
            b.set_block(nxt)
            b.ret(0)

        program = single_proc_program(body)
        simplify_cfg(program, program.proc("main"))
        proc = program.proc("main")
        assert proc.entry in proc.blocks
