"""Random program generator: validity, determinism, boundedness."""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import verify_program
from repro.workloads.generator import generate_sources

seeds = st.integers(min_value=0, max_value=1_000_000)


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert generate_sources(42) == generate_sources(42)
        assert generate_sources(42) != generate_sources(43)

    def test_module_count_respected(self):
        sources = generate_sources(7, n_modules=3)
        assert len(sources) == 3

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_programs_compile_and_verify(self, seed):
        program = compile_program(generate_sources(seed))
        verify_program(program)

    @settings(max_examples=25, deadline=None)
    @given(seeds)
    def test_programs_terminate_quickly_without_traps(self, seed):
        program = compile_program(generate_sources(seed))
        result = run_program(program, max_steps=500_000)
        assert result.steps <= 500_000

    @settings(max_examples=10, deadline=None)
    @given(seeds)
    def test_runs_are_deterministic(self, seed):
        sources = generate_sources(seed)
        a = run_program(compile_program(sources), max_steps=500_000)
        b = run_program(compile_program(sources), max_steps=500_000)
        assert a.behavior() == b.behavior()
        assert a.steps == b.steps
