"""Dead-code elimination via live-register analysis.

Backward bitvector liveness over the CFG; an instruction is deleted
when it has a destination, the destination is dead after it, and the
instruction itself is effect-free.  Calls are never deleted here even
when their result is dead (that is :mod:`deadcalls`' job, which needs
interprocedural facts); stores, probes, and possibly-trapping divisions
by a non-constant divisor are also kept.
"""

from __future__ import annotations

from typing import Dict, Set

from ..ir.instructions import Alloca, BinOp, Load, Mov, UnOp
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import Imm, Reg


def _effect_free(instr) -> bool:
    cls = instr.__class__
    if cls in (Mov, Load):
        return True
    if cls is UnOp:
        # ftoi of a non-finite float traps, but a front-end-typed
        # program only applies ftoi to computed floats; conversions of
        # dead values are safe to drop because the trap would be the
        # program's only observable — and C-family semantics make that
        # undefined.  We keep it simple: unops are effect-free.
        return True
    if cls is BinOp:
        if instr.op in ("div", "mod"):
            rhs = instr.rhs
            return isinstance(rhs, Imm) and rhs.value != 0
        return True
    if cls is Alloca:
        # Dropping a dead alloca only changes stack addresses, which are
        # not observable through the defined runtime interface.
        return not instr.is_dynamic
    return False


def liveness(proc: Procedure) -> Dict[str, Set[str]]:
    """Live-out register-name sets per block label."""
    use: Dict[str, Set[str]] = {}
    define: Dict[str, Set[str]] = {}
    for label, block in proc.blocks.items():
        u: Set[str] = set()
        d: Set[str] = set()
        for instr in block.instrs:
            for op in instr.uses():
                if isinstance(op, Reg) and op.name not in d:
                    u.add(op.name)
            if instr.dest is not None:
                d.add(instr.dest.name)
        use[label] = u
        define[label] = d

    live_in: Dict[str, Set[str]] = {label: set() for label in proc.blocks}
    live_out: Dict[str, Set[str]] = {label: set() for label in proc.blocks}
    changed = True
    while changed:
        changed = False
        for label, block in proc.blocks.items():
            out: Set[str] = set()
            for succ in block.successors():
                out |= live_in.get(succ, set())
            new_in = use[label] | (out - define[label])
            if out != live_out[label]:
                live_out[label] = out
                changed = True
            if new_in != live_in[label]:
                live_in[label] = new_in
                changed = True
    return live_out


def dead_code_elimination(program: Program, proc: Procedure) -> bool:
    changed = False
    live_out = liveness(proc)
    for label, block in proc.blocks.items():
        live = set(live_out[label])
        kept = []
        for instr in reversed(block.instrs):
            dest = instr.dest
            if dest is not None and dest.name not in live and _effect_free(instr):
                changed = True
                continue
            if dest is not None:
                live.discard(dest.name)
            for op in instr.uses():
                if isinstance(op, Reg):
                    live.add(op.name)
            kept.append(instr)
        kept.reverse()
        block.instrs = kept
    return changed
