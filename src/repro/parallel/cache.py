"""Content-addressed incremental compilation cache.

Each entry is one module's compiled isom text, keyed by a SHA-256
digest over (cache format version, isom format version, HLOConfig
fingerprint, module name, source text).  Because the key is derived
entirely from the inputs of the per-module compile, a module whose
source and configuration are unchanged hits the cache on every rebuild
— including a rebuild whose file was touched but not edited — while
any change to the source *or* the config derives a fresh key and
recompiles.

The cache is two-level: an in-memory map (always on, lives for the
toolchain's lifetime) over an optional on-disk store (``--cache-dir``)
that persists across processes and builds.  Disk entries are plain
isom files, so they carry the isom header's CRC-32; a corrupt or
truncated entry fails isom validation and is treated as a miss and
evicted, composing with the resilience layer's degradation ladder
instead of poisoning a build.

Counters distinguish three outcomes per lookup:

- **hit** — the key's isom text was present and parsed cleanly;
- **miss** — the key was never stored (a brand-new module);
- **invalidation** — the module *name* was cached under a different
  key (its source or config changed), counted alongside the miss.

The disk tier can be bounded (``max_mb``): every hit refreshes the
entry's mtime, and a store that pushes the tier over the cap evicts
the least-recently-used objects (oldest mtime first) until it fits,
counting each removal in ``stats.size_evictions``.  A resident build
daemon can therefore keep one cache directory warm indefinitely
without growing it without limit.  All public entry points take an
internal lock, so one cache instance may be shared by the concurrent
build sessions of a server.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Dict, List, Optional, Tuple

from ..ir.module import Module
from ..resilience.errors import IsomError

# Bump when the key derivation or entry layout changes.
CACHE_FORMAT_VERSION = 1


class CacheStats:
    """Hit/miss/invalidation counters, monotonically increasing."""

    __slots__ = ("hits", "misses", "invalidations", "stores", "size_evictions")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.stores = 0
        # Disk objects removed by the size bound (never part of the
        # 4-tuple snapshot, which predates the bounded tier).
        self.size_evictions = 0

    def snapshot(self) -> Tuple[int, int, int, int]:
        return (self.hits, self.misses, self.invalidations, self.stores)

    def since(self, mark: Tuple[int, int, int, int]) -> Tuple[int, int, int, int]:
        """(hits, misses, invalidations, stores) accumulated after ``mark``."""
        return (
            self.hits - mark[0],
            self.misses - mark[1],
            self.invalidations - mark[2],
            self.stores - mark[3],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<CacheStats {}h/{}m/{}i>".format(
            self.hits, self.misses, self.invalidations
        )


def _safe_stem(name: str) -> str:
    """A filesystem-safe stem for a module name."""
    cleaned = "".join(c if c.isalnum() or c in "._-" else "_" for c in name)
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:12]
    return "{}.{}".format(cleaned[:40] or "mod", digest)


class ModuleCache:
    """Content-addressed store of compiled (isom-serialized) modules."""

    def __init__(
        self, directory: Optional[str] = None, max_mb: Optional[float] = None
    ):
        self.directory = directory
        self.max_bytes = int(max_mb * 1024 * 1024) if max_mb else None
        self._memory: Dict[str, str] = {}  # key -> isom text
        self._name_keys: Dict[str, str] = {}  # module name -> last key seen
        self.stats = CacheStats()
        self._lock = threading.RLock()
        if directory:
            os.makedirs(os.path.join(directory, "objects"), exist_ok=True)
            os.makedirs(os.path.join(directory, "names"), exist_ok=True)

    # ------------------------------------------------------------------
    # Key derivation
    # ------------------------------------------------------------------

    @staticmethod
    def key_for(name: str, source: str, fingerprint: str = "") -> str:
        from ..linker.isom import ISOM_VERSION

        digest = hashlib.sha256()
        for part in (
            "repro-module-cache",
            str(CACHE_FORMAT_VERSION),
            str(ISOM_VERSION),
            fingerprint,
            name,
            source,
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def fetch(self, name: str, key: str) -> Optional[Module]:
        """The cached module for ``key``, or ``None`` on a miss.

        Every call returns a *freshly parsed* module: cached text, not
        cached objects, so two builds never alias (and then mutate) the
        same IR.
        """
        from ..linker.isom import from_isom_text

        with self._lock:
            text = self._memory.get(key)
            if text is None:
                text = self._read_object(key)
            if text is not None:
                try:
                    module = from_isom_text(text)
                except IsomError:
                    # Corrupt/truncated cache entry: evict and recompile.
                    self._evict(key)
                    text = None
                else:
                    self.stats.hits += 1
                    self._memory[key] = text
                    self._remember_name(name, key)
                    self._touch(key)
                    return module
            previous = self._last_key(name)
            if previous is not None and previous != key:
                self.stats.invalidations += 1
            self.stats.misses += 1
            return None

    def store(self, name: str, key: str, isom_text: str) -> None:
        with self._lock:
            self._memory[key] = isom_text
            self._remember_name(name, key)
            self.stats.stores += 1
            if not self.directory:
                return
            self._write_atomic(self._object_path(key), isom_text)
            self._write_atomic(self._name_path(name), key)
            self._enforce_disk_bound(keep=key)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------

    def _object_path(self, key: str) -> str:
        return os.path.join(self.directory, "objects", key + ".isom")

    def _name_path(self, name: str) -> str:
        return os.path.join(self.directory, "names", _safe_stem(name))

    def _read_object(self, key: str) -> Optional[str]:
        if not self.directory:
            return None
        try:
            with open(self._object_path(key)) as handle:
                return handle.read()
        except OSError:
            return None

    def _last_key(self, name: str) -> Optional[str]:
        key = self._name_keys.get(name)
        if key is not None or not self.directory:
            return key
        try:
            with open(self._name_path(name)) as handle:
                return handle.read().strip() or None
        except OSError:
            return None

    def _remember_name(self, name: str, key: str) -> None:
        self._name_keys[name] = key
        if self.directory:
            self._write_atomic(self._name_path(name), key)

    def _evict(self, key: str) -> None:
        self._memory.pop(key, None)
        if self.directory:
            try:
                os.remove(self._object_path(key))
            except OSError:
                pass

    def _touch(self, key: str) -> None:
        """Refresh an entry's mtime so the size bound evicts true LRU."""
        if not self.directory:
            return
        try:
            os.utime(self._object_path(key))
        except OSError:
            pass

    def disk_bytes(self) -> int:
        """Total size of the on-disk object tier (0 when memory-only)."""
        if not self.directory:
            return 0
        total = 0
        try:
            with os.scandir(os.path.join(self.directory, "objects")) as it:
                for entry in it:
                    if entry.name.endswith(".isom"):
                        try:
                            total += entry.stat().st_size
                        except OSError:
                            continue
        except OSError:
            return 0
        return total

    def _enforce_disk_bound(self, keep: str) -> None:
        """Evict least-recently-used disk objects over ``max_bytes``.

        The entry just stored (``keep``) is never evicted — a single
        over-budget module still has to compile, and thrashing it in
        and out of the tier would defeat the cache entirely.
        """
        if not self.directory or self.max_bytes is None:
            return
        entries: List[Tuple[float, int, str, str]] = []
        total = 0
        try:
            with os.scandir(os.path.join(self.directory, "objects")) as it:
                for entry in it:
                    if not entry.name.endswith(".isom"):
                        continue
                    try:
                        stat = entry.stat()
                    except OSError:
                        continue
                    entries.append(
                        (stat.st_mtime, stat.st_size, entry.path, entry.name)
                    )
                    total += stat.st_size
        except OSError:
            return
        if total <= self.max_bytes:
            return
        keep_name = keep + ".isom"
        entries.sort()  # oldest mtime first
        for _mtime, size, path, filename in entries:
            if total <= self.max_bytes:
                break
            if filename == keep_name:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self.stats.size_evictions += 1
            # Drop the memory copy too, so the daemon's resident set
            # tracks the bounded tier instead of shadowing it.
            self._memory.pop(filename[: -len(".isom")], None)

    def _write_atomic(self, path: str, text: str) -> None:
        tmp = path + ".tmp.{}".format(os.getpid())
        try:
            with open(tmp, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except OSError:
            # A read-only or full cache directory degrades to the
            # in-memory layer; it must never fail the build.
            try:
                os.remove(tmp)
            except OSError:
                pass
