"""Random minic program generator for property-based testing.

Generates multi-module programs that are *trap-free and terminating by
construction*, so the property "every HLO/optimizer transform preserves
observable behaviour" can be asserted exactly:

- loops are bounded ``for`` loops with constant trip counts;
- calls form a DAG over the generated functions (plus optional bounded
  self-recursion with an explicit decreasing counter);
- division/modulo only by non-zero constants, shifts by small
  constants;
- array indices are masked with ``& (size-1)`` (power-of-two arrays),
  which is in-range even for negative values under two's complement;
- every variable is initialized at declaration.

The generator leans into HLO bait: constant arguments at call sites
(clone specs), function pointers passed to dispatchers (devirt), static
functions and globals (promotion), cross-module calls, and varargs /
dynamic-alloca functions (legality screens).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

ARRAY_SIZE = 16  # power of two; indices are masked with & 15
MAX_EXPR_DEPTH = 3


MAX_CALLEE_COST = 20_000  # skip callees whose estimated cost exceeds this


class _FuncSig:
    __slots__ = ("name", "module", "n_params", "static", "varargs", "kind", "cost")

    def __init__(self, name: str, module: str, n_params: int, static: bool,
                 varargs: bool = False, kind: str = "plain"):
        self.name = name
        self.module = module
        self.n_params = n_params
        self.static = static
        self.varargs = varargs
        self.kind = kind  # plain | recursive | dispatcher | dyn_alloca
        self.cost = 0  # estimated dynamic steps of one invocation


class ProgramGenerator:
    """Generates one random program per ``generate()`` call."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.funcs: List[_FuncSig] = []
        self.globals: List[Tuple[str, str, bool]] = []  # (name, module, array?)
        self._uid = 0
        self._calls_left = 0  # per-body budget of emitted call sites
        self._body_cost = 0  # estimated dynamic steps of the body so far
        self._mult = 1  # loop multiplier at the current nesting

    # ------------------------------------------------------------------
    # Naming
    # ------------------------------------------------------------------

    def _fresh(self, prefix: str) -> str:
        self._uid += 1
        return "{}{}".format(prefix, self._uid)

    # ------------------------------------------------------------------
    # Expressions (trap-free by construction)
    # ------------------------------------------------------------------

    def _expr(self, names: Sequence[str], depth: int, callables: Sequence[_FuncSig]) -> str:
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            choices = [str(rng.randint(-20, 100))]
            if names:
                choices.append(rng.choice(names))
            return rng.choice(choices)
        roll = rng.random()
        if roll < 0.55:
            op = rng.choice(["+", "-", "*", "&", "|", "^", "<", "<=", "==", "!="])
            lhs = self._expr(names, depth - 1, callables)
            rhs = self._expr(names, depth - 1, callables)
            if op == "*":
                # Bound products to keep values in-range recursively.
                return "(({}) % 256) * (({}) % 256)".format(lhs, rhs)
            return "({}) {} ({})".format(lhs, op, rhs)
        if roll < 0.65:
            divisor = rng.choice([2, 3, 5, 7, 16, 31])
            return "({}) {} {}".format(
                self._expr(names, depth - 1, callables), rng.choice(["/", "%"]), divisor
            )
        if roll < 0.72:
            return "({}) >> {}".format(self._expr(names, depth - 1, callables), rng.randint(0, 7))
        if roll < 0.80 and self.globals:
            gname, _mod, is_array = rng.choice(self.globals)
            if is_array:
                return "{}[({}) & {}]".format(
                    gname, self._expr(names, depth - 1, callables), ARRAY_SIZE - 1
                )
            return gname
        cheap = [
            f for f in callables
            if f.cost * self._mult <= MAX_CALLEE_COST
        ]
        if roll < 0.95 and cheap and self._calls_left > 0:
            self._calls_left -= 1
            return self._call_expr(names, depth, cheap)
        return "-({})".format(self._expr(names, depth - 1, callables))

    def _call_expr(self, names: Sequence[str], depth: int, callables: Sequence[_FuncSig]) -> str:
        rng = self.rng
        target = rng.choice(list(callables))
        multiplier = 8 if target.kind == "recursive" else 1
        self._body_cost += target.cost * self._mult * multiplier
        args = []
        for _ in range(target.n_params):
            # Bias toward constant arguments: clone-spec bait.
            if rng.random() < 0.4:
                args.append(str(rng.randint(0, 9)))
            else:
                args.append(self._expr(names, depth - 1, callables))
        if target.kind == "recursive":
            # First parameter is the bounded depth counter.
            args[0] = str(rng.randint(0, 6))
        if target.varargs and rng.random() < 0.7:
            args.append(self._expr(names, depth - 1, callables))
        return "{}({})".format(target.name, ", ".join(args))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _block(
        self,
        names: List[str],
        callables: Sequence[_FuncSig],
        stmts: int,
        indent: str,
        allow_loop: bool = True,
        protected: Sequence[str] = (),
    ) -> List[str]:
        """``protected`` names are readable but never assignment targets
        (loop counters: assigning one could make the loop diverge)."""
        rng = self.rng
        lines: List[str] = []
        local_names = list(names)
        protected_set = set(protected)
        for _ in range(stmts):
            roll = rng.random()
            if roll < 0.30:
                name = self._fresh("v")
                lines.append(
                    "{}int {} = {};".format(
                        indent, name, self._expr(local_names, MAX_EXPR_DEPTH, callables)
                    )
                )
                local_names.append(name)
            elif roll < 0.55 and [n for n in local_names if n not in protected_set]:
                target = rng.choice([n for n in local_names if n not in protected_set])
                op = rng.choice(["=", "+=", "^=", "="])
                lines.append(
                    "{}{} {} {};".format(
                        indent, target, op, self._expr(local_names, MAX_EXPR_DEPTH, callables)
                    )
                )
            elif roll < 0.70:
                cond = self._expr(local_names, 2, callables)
                body = self._block(
                    local_names, callables, rng.randint(1, 2), indent + "  ",
                    allow_loop, protected_set,
                )
                lines.append("{}if ({}) {{".format(indent, cond))
                lines.extend(body)
                if rng.random() < 0.5:
                    lines.append("{}}} else {{".format(indent))
                    lines.extend(
                        self._block(
                            local_names, callables, 1, indent + "  ",
                            allow_loop, protected_set,
                        )
                    )
                lines.append(indent + "}")
            elif roll < 0.85 and allow_loop:
                loop_var = self._fresh("i")
                trips = rng.randint(1, 6)
                outer_mult = self._mult
                self._mult = outer_mult * trips
                body = self._block(
                    local_names + [loop_var], callables, rng.randint(1, 2),
                    indent + "  ", allow_loop=False,
                    protected=list(protected_set) + [loop_var],
                )
                self._mult = outer_mult
                self._body_cost += 3 * trips
                lines.append(
                    "{}for (int {} = 0; {} < {}; {}++) {{".format(
                        indent, loop_var, loop_var, trips, loop_var
                    )
                )
                lines.extend(body)
                lines.append(indent + "}")
            elif roll < 0.92 and self.globals:
                gname, _mod, is_array = rng.choice(self.globals)
                value = self._expr(local_names, 2, callables)
                if is_array:
                    index = self._expr(local_names, 1, callables)
                    lines.append(
                        "{}{}[({}) & {}] = {};".format(indent, gname, index, ARRAY_SIZE - 1, value)
                    )
                else:
                    lines.append("{}{} = {};".format(indent, gname, value))
            elif roll < 0.96:
                lines.append(
                    "{}print_int(({}) % 65536);".format(
                        indent, self._expr(local_names, 2, callables)
                    )
                )
            else:
                # A float computation, NaN-free by construction: bounded
                # non-negative terms combined with + and scaled by small
                # positive constants can never produce inf-inf or 0*inf.
                fname = self._fresh("fv")
                term1 = self._expr(local_names, 1, [])
                term2 = self._expr(local_names, 1, [])
                lines.append(
                    "{}float {} = (({}) % 256 + 256) * 0.5 + (({}) % 256 + 256) * 0.25;".format(
                        indent, fname, term1, term2
                    )
                )
                lines.append("{}print_flt({} * 2.0 + 1.5);".format(indent, fname))
        return lines

    # ------------------------------------------------------------------
    # Functions and modules
    # ------------------------------------------------------------------

    def _function(self, sig: _FuncSig, callables: Sequence[_FuncSig]) -> str:
        rng = self.rng
        params = ["int p{}".format(i) for i in range(sig.n_params)]
        names = ["p{}".format(i) for i in range(sig.n_params)]
        quals = "static " if sig.static else ""
        self._calls_left = 3
        self._body_cost = 40  # straight-line baseline
        self._mult = 1
        header_params = ", ".join(params) if params else ""
        if sig.varargs:
            header_params = header_params + ", ..." if header_params else "..."
        lines = ["{}int {}({}) {{".format(quals, sig.name, header_params)]

        if sig.kind == "recursive":
            # p0 is the decreasing depth counter: guaranteed termination.
            lines.append("  if (p0 <= 0) return {};".format(rng.randint(0, 9)))
            inner = self._expr(names, 2, callables)
            rest = ", ".join(
                self._expr(names, 1, callables) for _ in range(sig.n_params - 1)
            )
            rest = (", " + rest) if rest else ""
            lines.append("  int rec = {}(p0 - 1{});".format(sig.name, rest))
            names = names + ["rec"]
            lines.append("  int acc = rec + ({});".format(inner))
            names.append("acc")
        elif sig.kind == "dyn_alloca":
            lines.append("  int n = (p0 & 7) + 1;")
            lines.append("  int buf = alloca(n);")
            lines.append("  for (int k = 0; k < n; k++) buf[k] = k * 3 + p0;")
            lines.append("  int acc = buf[n - 1] + buf[0];")
            names = names + ["n", "acc"]
        elif sig.varargs:
            lines.append("  int acc = va_count();")
            lines.append("  for (int k = 0; k < va_count(); k++) acc += va_arg(k);")
            names = names + ["acc"]
        else:
            lines.append("  int acc = {};".format(self._expr(names, 2, callables)))
            names = names + ["acc"]

        lines.extend(self._block(list(names), callables, rng.randint(1, 3), "  "))
        lines.append("  return (acc + ({})) % 100003;".format(self._expr(names, 2, callables)))
        lines.append("}")
        sig.cost = self._body_cost
        return "\n".join(lines)

    def generate(
        self,
        n_modules: int = 2,
        funcs_per_module: int = 3,
        n_globals: int = 3,
        extern_window: "Optional[int]" = None,
    ) -> List[Tuple[str, str]]:
        """Produce [(module name, source)] for one random program.

        ``extern_window`` bounds cross-module visibility for mega
        programs: a non-static function or global is visible (and its
        extern proto emitted) only to the next ``extern_window`` modules
        after its own, so generation and program text stay O(modules)
        instead of the default all-to-all O(modules²) broadcast.
        ``None`` (the default) keeps the original unbounded behavior,
        byte-identical for existing seeds.
        """
        rng = self.rng
        self.funcs = []
        self.globals = []
        module_names = ["mod{}".format(i) for i in range(n_modules)]
        mod_index = {name: i for i, name in enumerate(module_names)}
        module_bodies: dict = {name: [] for name in module_names}
        module_protos: dict = {name: set() for name in module_names}
        all_globals: List[Tuple[str, str, bool]] = []

        def window_modules(mod: str) -> List[str]:
            start = mod_index[mod] + 1
            return module_names[start:start + (extern_window or 0)]

        # Globals scattered over modules.
        for g in range(n_globals):
            mod = rng.choice(module_names)
            name = self._fresh("g")
            is_array = rng.random() < 0.5
            static = rng.random() < 0.3
            decl = "static int" if static else "int"
            if is_array:
                init = ", ".join(str(rng.randint(0, 50)) for _ in range(4))
                module_bodies[mod].append(
                    "{} {}[{}] = {{{}}};".format(decl, name, ARRAY_SIZE, init)
                )
            else:
                module_bodies[mod].append("{} {} = {};".format(decl, name, rng.randint(0, 99)))
            if not static:
                self.globals.append((name, mod, is_array))
                all_globals.append((name, mod, is_array))
                receivers = (
                    [m for m in module_names if m != mod]
                    if extern_window is None else window_modules(mod)
                )
                for other in receivers:
                    if is_array:
                        module_protos[other].add(
                            "extern int {}[{}];".format(name, ARRAY_SIZE)
                        )
                    else:
                        module_protos[other].add("extern int {};".format(name))

        # Functions: build bottom-up so the call graph is a DAG.  Each
        # function sees at most two earlier functions, bounding dynamic
        # call-tree fan-out (the generator must terminate *quickly*, not
        # merely eventually).
        prev_spine: Optional[str] = None
        for mod in module_names:
            if extern_window is not None:
                # Scope the expression generator's global pool to what
                # this module actually has protos for.
                here = mod_index[mod]
                self.globals = [
                    entry for entry in all_globals
                    if mod_index[entry[1]] <= here <= mod_index[entry[1]] + extern_window
                ]
            for _ in range(funcs_per_module):
                if extern_window is None:
                    visible = [f for f in self.funcs if not f.static or f.module == mod]
                else:
                    here = mod_index[mod]
                    visible = [
                        f for f in self.funcs
                        if (f.module == mod if f.static
                            else here - mod_index[f.module] <= extern_window)
                    ]
                callables = (
                    rng.sample(visible, min(len(visible), 2)) if visible else []
                )
                kind = "plain"
                roll = rng.random()
                varargs = False
                if roll < 0.12:
                    kind = "recursive"
                elif roll < 0.18:
                    kind = "dyn_alloca"
                elif roll < 0.24:
                    varargs = True
                n_params = rng.randint(1 if kind == "recursive" else 0, 3)
                if kind in ("recursive", "dyn_alloca"):
                    n_params = max(n_params, 1)
                static = rng.random() < 0.3
                sig = _FuncSig(self._fresh("f"), mod, n_params, static, varargs, kind)
                module_bodies[mod].append(self._function(sig, callables))
                self.funcs.append(sig)
                if not static:
                    proto_params = ", ".join(
                        "int p{}".format(i) for i in range(sig.n_params)
                    )
                    if varargs:
                        proto_params = proto_params + ", ..." if proto_params else "..."
                    receivers = (
                        [m for m in module_names if m != mod]
                        if extern_window is None else window_modules(mod)
                    )
                    for other in receivers:
                        module_protos[other].add(
                            "int {}({});".format(sig.name, proto_params)
                        )

            if extern_window is not None:
                # Reachability spine (mega programs): every module's
                # ``spineN`` links to the previous module's under a
                # ``depth > 0`` guard and anchors a couple of this
                # module's own routines, so the *whole* program stays
                # statically reachable from main while only the trailing
                # ``depth`` modules ever execute — reachable-but-cold
                # code at scale, which is exactly what a whole-program
                # inliner has to be able to skip cheaply.
                spine_name = "spine{}".format(mod_index[mod])
                pool = [
                    f for f in self.funcs
                    if f.module == mod and f.kind == "plain" and not f.varargs
                ]
                picks = rng.sample(pool, min(len(pool), 2))
                spine_lines = ["int {}(int p0) {{".format(spine_name),
                               "  int r = p0;"]
                if prev_spine is not None:
                    spine_lines.append("  if (p0 > 0) {")
                    spine_lines.append(
                        "    r = r + {}(p0 - 1);".format(prev_spine)
                    )
                    spine_lines.append("  }")
                for f in picks:
                    call_args = ", ".join(
                        str(rng.randint(0, 9)) for _ in range(f.n_params)
                    )
                    spine_lines.append("  r = r + {}({});".format(f.name, call_args))
                spine_lines.append("  return r % 65521;")
                spine_lines.append("}")
                module_bodies[mod].append("\n".join(spine_lines))
                for other in window_modules(mod):
                    module_protos[other].add("int {}(int p0);".format(spine_name))
                prev_spine = spine_name

        # main in the last module, calling into everything visible.
        main_mod = module_names[-1]
        if extern_window is None:
            callables = [f for f in self.funcs if not f.static or f.module == main_mod]
        else:
            last = mod_index[main_mod]
            callables = [
                f for f in self.funcs
                if (f.module == main_mod if f.static
                    else last - mod_index[f.module] <= extern_window)
            ]
        self._calls_left = 6
        self._body_cost = 40
        self._mult = 1
        main_lines = ["int main() {", "  int total = 0;"]
        body = self._block(["total"], callables, rng.randint(3, 6), "  ")
        main_lines.extend(body)
        if prev_spine is not None:
            # Walk the trailing `extern_window` spine links: the rest of
            # the spine (and everything it anchors) stays reachable but
            # never runs.
            main_lines.append(
                "  total = total + {}({});".format(prev_spine, extern_window)
            )
        main_lines.append("  print_int(total % 65536);")
        main_lines.append("  return total % 31;")
        main_lines.append("}")
        module_bodies[main_mod].append("\n".join(main_lines))

        sources = []
        for mod in module_names:
            chunks = sorted(module_protos[mod]) + module_bodies[mod]
            sources.append((mod, "\n\n".join(chunks) + "\n"))
        return sources


def generate_sources(seed: int, n_modules: int = 2, funcs_per_module: int = 3,
                     n_globals: int = 3,
                     extern_window: Optional[int] = None) -> List[Tuple[str, str]]:
    """Convenience: one seeded random program."""
    return ProgramGenerator(random.Random(seed)).generate(
        n_modules, funcs_per_module, n_globals, extern_window
    )
