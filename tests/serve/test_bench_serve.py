"""The load-generator bench, shrunk to suite size: gates must hold."""

from __future__ import annotations

import json

from repro.bench.serve import (
    check_serve_report,
    main,
    run_serve_bench,
    summary_lines,
)


def test_small_bench_passes_its_own_gates():
    report, failures = run_serve_bench(
        clients=8, workloads=("compress",), scope="c", concurrency=2
    )
    assert failures == []
    assert report["errors"] == 0
    # 8 clients x (stampede + warm + run + variant) = 32 requests.
    assert report["requests"] == 32
    # The stampede deduped: nowhere near one build per request.
    assert report["dedupe_hits"] >= 1
    assert report["builds"] < report["requests"]
    assert report["artifacts_identical"] is True
    assert report["warm_rebuild_ms"]["count"] >= 8
    assert summary_lines(report)  # renders without raising


def test_gate_catches_cold_warm_inversion():
    report = {
        "errors": 0,
        "dedupe_hits": 3,
        "artifacts_identical": True,
        "warm_rebuild_ms": {"count": 10, "p50": 40.0, "p95": 50.0},
        "cold_build_ms": {"count": 4, "p50": 9.0, "p95": 12.0},
    }
    failures = check_serve_report(report)
    assert len(failures) == 1
    assert "warm" in failures[0]

    report["warm_rebuild_ms"] = {"count": 10, "p50": 0.5, "p95": 1.0}
    assert check_serve_report(report) == []


def test_gate_catches_missing_dedupe_and_divergent_artifacts():
    report = {
        "errors": 2,
        "dedupe_hits": 0,
        "artifacts_identical": False,
        "warm_rebuild_ms": {"count": 0, "p50": 0.0, "p95": 0.0},
        "cold_build_ms": {"count": 0, "p50": 0.0, "p95": 0.0},
    }
    failures = check_serve_report(report)
    assert len(failures) == 3
    assert all(f.startswith("serve:") for f in failures)


def test_cli_writes_report(tmp_path, capsys):
    out = tmp_path / "BENCH_serve.json"
    rc = main([
        "--clients", "4",
        "--workloads", "compress",
        "--concurrency", "2",
        "--output", str(out),
    ])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["clients"] == 4
    assert report["errors"] == 0
    captured = capsys.readouterr()
    assert "serve bench: 4 clients" in captured.out
