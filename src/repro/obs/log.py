"""One stderr shim for the whole CLI (``--verbosity``).

Historically warnings, resilience summaries, and machine-metric lines
were each printed with bare ``print(..., file=sys.stderr)`` calls
scattered over the driver, so under ``--jobs N`` (or any buffered
stderr) they interleaved unpredictably with each other and with
stdout.  Every stderr line now goes through one :class:`CliLogger`:
a single lock, an explicit flush per line, and one place that knows
the verbosity level.

Levels: ``quiet`` shows only errors; ``normal`` (the default) adds
warnings, summaries, and informational lines — the pre-existing
output, unchanged; ``debug`` adds the observability layer's own
chatter (per-stage notes, ledger/trace accounting).
"""

from __future__ import annotations

import sys
import threading
from typing import Optional, TextIO

VERBOSITY_LEVELS = ("quiet", "normal", "debug")

_RANK = {"quiet": 0, "normal": 1, "debug": 2}


class CliLogger:
    """Leveled, locked, line-buffered stderr writer."""

    def __init__(self, verbosity: str = "normal", stream: Optional[TextIO] = None):
        if verbosity not in _RANK:
            raise ValueError(
                "unknown verbosity {!r}; expected one of {}".format(
                    verbosity, VERBOSITY_LEVELS
                )
            )
        self.verbosity = verbosity
        self._stream = stream
        self._lock = threading.Lock()

    def _emit(self, message: str) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(message + "\n")
            stream.flush()

    def error(self, message: str) -> None:
        """Always shown, even under ``quiet``."""
        self._emit("error: " + message)

    def warn(self, message: str) -> None:
        if _RANK[self.verbosity] >= 1:
            self._emit("warning: " + message)

    def info(self, message: str) -> None:
        """Summaries and metric lines: shown at ``normal`` and above."""
        if _RANK[self.verbosity] >= 1:
            self._emit(message)

    def debug(self, message: str) -> None:
        if _RANK[self.verbosity] >= 2:
            self._emit("debug: " + message)
