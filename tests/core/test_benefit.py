"""Inline-site ranking: frequency priority and the cold-site penalty."""

from repro.analysis import CallGraph, entry_counts
from repro.core import HLOConfig, rank_site
from repro.frontend import compile_program
from repro.ir import ATTR_ALWAYS_INLINE


SOURCES = [
    (
        "m",
        """
        int callee(int x) { return x + 1; }
        inline int eager(int x) { return x; }
        int main() {
          int total = 0;
          for (int i = 0; i < 100; i++) total += callee(i);   // hot site
          if (total == -1) total += callee(0);                 // cold site
          total += eager(total);
          print_int(total);
          return 0;
        }
        """,
    )
]


def ranked_sites(site_counts=None, config=None):
    program = compile_program(SOURCES)
    graph = CallGraph(program)
    config = config or HLOConfig()
    counts = site_counts
    entry = entry_counts(program, graph, counts)
    sites = [
        s for s in graph.sites if s.callee is not None and s.callee.name == "callee"
    ]
    return [rank_site(s, entry, config, counts) for s in sites], graph


class TestRanking:
    def test_hot_site_outranks_cold(self):
        ranked, _ = ranked_sites()
        ranked.sort(key=lambda r: r.sort_key)
        assert ranked[0].rel_freq > ranked[1].rel_freq
        assert ranked[0].benefit > ranked[1].benefit

    def test_cold_penalty_applied(self):
        ranked, _ = ranked_sites()
        cold = min(ranked, key=lambda r: r.rel_freq)
        assert cold.rel_freq < 1.0
        # benefit = weight * penalty for colder-than-entry sites
        assert cold.benefit < cold.weight

    def test_penalty_disabled_by_config(self):
        ranked, _ = ranked_sites(config=HLOConfig(cold_penalty=1.0))
        cold = min(ranked, key=lambda r: r.rel_freq)
        assert cold.benefit == cold.weight

    def test_measured_counts_override_estimates(self):
        program = compile_program(SOURCES)
        graph = CallGraph(program)
        sites = [s for s in graph.sites if s.callee and s.callee.name == "callee"]
        counts = {sites[0].key: 12345, sites[1].key: 1}
        entry = entry_counts(program, graph, counts)
        ranked = rank_site(sites[0], entry, HLOConfig(), counts)
        assert ranked.weight == 12345.0

    def test_always_inline_flag(self):
        program = compile_program(SOURCES)
        graph = CallGraph(program)
        eager_site = next(
            s for s in graph.sites if s.callee and s.callee.name == "eager"
        )
        assert ATTR_ALWAYS_INLINE in eager_site.callee.attrs
        entry = entry_counts(program, graph, None)
        ranked = rank_site(eager_site, entry, HLOConfig(), None)
        assert ranked.always_inline
        # Always-inline sites sort before everything else.
        others, _ = ranked_sites()
        assert ranked.sort_key < min(r.sort_key for r in others)
