"""The sampling sink and sampled-profile collection."""

import pytest

from repro.analysis.dominators import control_equivalent_classes
from repro.frontend.driver import compile_program
from repro.interp.interpreter import run_program
from repro.ir.instructions import CALL_INSTRS, Ret
from repro.profile.database import ProfileDatabase
from repro.profile.pgo import train
from repro.sampling import (
    SampledProfile,
    SamplingSink,
    sample_run,
    sample_train,
)

NESTED = """
int leaf(int x) { return x * 3 + 1; }
int mid(int x) { return leaf(x) + leaf(x + 2); }
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 50; i = i + 1) {
    s = s + mid(i);
  }
  print_int(s);
  return 0;
}
"""

DIAMOND = """
int main() {
  int a = input(0);
  int s = 0;
  if (a > 0) {
    s = a * 2;
  } else {
    s = a - 7;
  }
  print_int(s);
  return 0;
}
"""


def _compile(src, name="m"):
    return compile_program([(name, src)])


class TestSamplingSink:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SamplingSink(rate=0)
        with pytest.raises(ValueError):
            SamplingSink(context_depth=-1)

    def test_same_seed_is_deterministic(self):
        tallies = []
        for _ in range(2):
            sink = SamplingSink(rate=10, context_depth=2, seed=3)
            run_program(_compile(NESTED), sink=sink)
            tallies.append(
                (sink.events, sink.samples, sink.block_samples,
                 sink.context_samples, sink.site_hits)
            )
        assert tallies[0] == tallies[1]

    def test_jitter_varies_the_gap(self):
        sink = SamplingSink(rate=100, context_depth=0, seed=1)
        gaps = {sink._next_gap() for _ in range(50)}
        assert len(gaps) > 1
        assert all(80 <= g <= 120 for g in gaps)

    def test_effective_rate_tracks_nominal(self):
        sink = SamplingSink(rate=20, seed=0)
        run_program(_compile(NESTED), sink=sink)
        assert sink.samples > 10
        assert sink.effective_rate == pytest.approx(20, rel=0.25)

    def test_shadow_stack_records_nearest_first_contexts(self):
        sink = SamplingSink(rate=5, context_depth=2, seed=0)
        run_program(_compile(NESTED), sink=sink)
        assert sink._stack == []  # balanced: every call returned
        leaf_contexts = set()
        mid_contexts = set()
        for (proc, _label), per in sink.context_samples.items():
            if proc == "leaf":
                leaf_contexts.update(per)
            elif proc == "mid":
                mid_contexts.update(per)
        assert leaf_contexts == {("mid", "main")}
        assert mid_contexts == {("main",)}

    def test_builtin_calls_do_not_grow_the_stack(self):
        # print_int is a builtin: no frame, no on_return.  A depth-1
        # context taken inside main right after a builtin call must
        # still be empty, not ("main",).
        sink = SamplingSink(rate=1, context_depth=1, seed=0)
        run_program(_compile(DIAMOND), [5], sink=sink)
        main_contexts = {
            ctx
            for (proc, _label), per in sink.context_samples.items()
            if proc == "main"
            for ctx in per
        }
        assert main_contexts == {()}

    def test_call_sites_are_tallied_exactly(self):
        # Every executed call instruction passes through on_instr, so
        # the site tally is exact — identical for every seed and rate,
        # and equal to the true execution counts: the mid site and each
        # of the two leaf sites run once per loop iteration (50), the
        # print_int builtin once.
        tallies = []
        for seed in (0, 1, 99):
            sink = SamplingSink(rate=37, context_depth=0, seed=seed)
            run_program(_compile(NESTED), sink=sink)
            tallies.append(sink.site_hits)
        assert tallies[0] == tallies[1] == tallies[2]
        assert sorted(tallies[0].values()) == [1, 50, 50, 50]


class TestSampledProfile:
    def test_accumulates_runs_with_advancing_seed(self):
        program = _compile(NESTED)
        acc = SampledProfile(rate=10, context_depth=2, seed=0)
        sample_run(program, profile=acc)
        first = dict(acc.block_samples)
        sample_run(program, profile=acc)
        assert acc.runs == 2
        assert sum(acc.block_samples.values()) > sum(first.values())
        # Two runs of identical work, different seeds: not the exact
        # same sample points twice.
        assert acc.block_samples != {k: 2 * v for k, v in first.items()}

    def test_site_counts_match_instrumented_training(self):
        sources = [("m", NESTED)]
        sampled = sample_train(sources, [()], rate=25, seed=0)
        exact = train(sources, [()])
        assert sampled.site_counts == exact.site_counts

    def test_length_bias_is_corrected(self):
        # A straight-line block's estimated count must track the true
        # count, not the block's instruction length.
        sources = [("m", NESTED)]
        db = sample_train(sources, [()], rate=10, seed=0)
        exact = train(sources, [()])
        loop_keys = [
            k for k, v in exact.block_counts.items() if v >= 50
        ]
        assert loop_keys
        for key in loop_keys:
            assert db.block_counts[key] == pytest.approx(
                exact.block_counts[key], rel=0.5
            )

    def test_flow_smoothing_equalizes_control_equivalent_blocks(self):
        sources = [("m", DIAMOND)]
        db = sample_train(sources, [(4,)] * 30, rate=3, seed=0)
        program = compile_program(sources)
        proc = program.proc("main")
        for cls in control_equivalent_classes(proc):
            counts = {
                db.block_counts.get(("main", label)) for label in cls
            }
            counts.discard(None)
            assert len(counts) <= 1, cls

    def test_database_is_sampled_v3_with_fingerprints(self):
        db = sample_train([("m", DIAMOND)], [(3,)] * 20, rate=5, seed=0)
        assert db.sampled
        assert db.context_depth == 2
        assert 0.0 < db.overall_confidence() < 1.0
        assert "main" in db.fingerprints
        assert db.to_text().startswith("profiledb 3 crc32 ")

    def test_rate_one_sampling_reproduces_exact_counts(self):
        # Sampling every instruction leaves no estimation error beyond
        # rounding: the smoothed block counts must match instrumented
        # training.  This is the soundness check on flow smoothing — a
        # pooling step that merged blocks with genuinely different
        # counts would diverge here.
        sources = [("m", NESTED)]
        exact = train(sources, [()])
        sam = sample_train(sources, [()], rate=1, seed=0)
        for key, count in exact.block_counts.items():
            assert abs(sam.block_counts.get(key, 0) - count) <= max(
                2, 0.05 * count
            ), key

    def test_unexecuted_sites_recorded_as_zero(self):
        # The else arm never runs; its sites (if any) and every program
        # site must still be present so consumers can tell "observed
        # cold" from "never measured".
        program = _compile(NESTED)
        db = sample_train([("m", NESTED)], [()], rate=25, seed=0)
        program_sites = {
            ("m", instr.site_id)
            for proc in program.all_procs()
            for block in proc.blocks.values()
            for instr in block.instrs
            if isinstance(instr, CALL_INSTRS)
        }
        assert program_sites <= set(db.site_counts)


class TestControlEquivalence:
    def test_diamond_partition(self):
        proc = _compile(DIAMOND).proc("main")
        classes = control_equivalent_classes(proc)
        by_label = {
            label: i for i, cls in enumerate(classes) for label in cls
        }
        labels = set(proc.rpo_labels())
        assert set(by_label) == labels
        arms = set(proc.blocks[proc.entry].successors())
        assert len(arms) == 2
        left, right = sorted(arms)
        assert by_label[left] != by_label[right]
        ret_label = next(
            label
            for label, block in proc.blocks.items()
            if block.instrs and isinstance(block.instrs[-1], Ret)
        )
        assert by_label[proc.entry] == by_label[ret_label]

    def test_loop_body_not_equivalent_to_entry(self):
        proc = _compile(NESTED).proc("main")
        classes = control_equivalent_classes(proc)
        by_label = {
            label: i for i, cls in enumerate(classes) for label in cls
        }
        from repro.analysis.loops import loop_depths

        depths = loop_depths(proc)
        looped = [label for label, d in depths.items() if d > 0]
        assert looped
        for label in looped:
            assert by_label[label] != by_label[proc.entry]


class TestRoundTrip:
    def test_v3_round_trip_preserves_everything(self, tmp_path):
        db = sample_train([("m", NESTED)], [()], rate=10, seed=2)
        path = tmp_path / "p.db"
        db.save(str(path))
        back = ProfileDatabase.load(str(path))
        assert back.sampled
        assert back.sample_rate == pytest.approx(db.sample_rate, abs=1e-4)
        assert back.context_depth == db.context_depth
        assert back.block_counts == db.block_counts
        assert back.block_samples == db.block_samples
        assert back.context_counts == db.context_counts
        assert back.site_counts == db.site_counts
        assert back.fingerprints == db.fingerprints
        assert back.overall_confidence() == pytest.approx(
            db.overall_confidence()
        )

    def test_exact_database_still_writes_v3_with_fingerprints(self):
        db = train([("m", DIAMOND)], [(1,)])
        text = db.to_text()
        assert text.startswith("profiledb 3 crc32 ")
        assert "\nfp main " in text
        assert not db.sampled
        assert db.overall_confidence() == 1.0

    def test_legacy_v1_payload_loads(self):
        text = (
            "profiledb 1\n"
            "runs 1 steps 40\n"
            "block main entry 7\n"
            "site m 0 7\n"
        )
        db = ProfileDatabase.from_text(text)
        assert not db.sampled
        assert db.block_counts == {("main", "entry"): 7}
        assert db.site_counts == {("m", 0): 7}
        assert db.overall_confidence() == 1.0
        assert db.context_view() is None
