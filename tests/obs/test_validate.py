"""Schema validator: accepts real artifacts, rejects malformed ones."""

import json

from repro.obs.ledger import InliningLedger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.obs.validate import (
    main,
    validate_ledger_jsonl,
    validate_metrics,
    validate_trace,
)


class TestTrace:
    def test_rejects_non_object(self):
        assert validate_trace([1, 2]) != []

    def test_rejects_empty_events(self):
        assert validate_trace({"traceEvents": []}) != []

    def test_rejects_missing_fields(self):
        errors = validate_trace({"traceEvents": [{"ph": "X"}]})
        assert any("missing 'name'" in e for e in errors)
        assert any("ts" in e for e in errors)

    def test_rejects_unknown_phase(self):
        errors = validate_trace(
            {"traceEvents": [
                {"name": "x", "ph": "Z", "pid": 1, "tid": 0},
            ]}
        )
        assert any("unknown ph" in e for e in errors)

    def test_accepts_real_tracer_output(self):
        tracer = Tracer()
        with tracer.span("build"):
            pass
        assert validate_trace(tracer.to_dict()) == []


class TestMetrics:
    def test_rejects_missing_sections(self):
        errors = validate_metrics({"schema": 1})
        assert any("counters" in e for e in errors)
        assert any("histograms" in e for e in errors)

    def test_rejects_non_numeric_counter(self):
        errors = validate_metrics(
            {"schema": 1, "counters": {"x": "NaN?"}, "gauges": {},
             "histograms": {}}
        )
        assert any("not a number" in e for e in errors)

    def test_rejects_incomplete_histogram(self):
        errors = validate_metrics(
            {"schema": 1, "counters": {}, "gauges": {},
             "histograms": {"h": {"count": 1}}}
        )
        assert any("p95" in e for e in errors)

    def test_accepts_real_registry_output(self):
        reg = MetricsRegistry()
        reg.count("a", 1)
        reg.observe("b", 0.5)
        assert validate_metrics(reg.to_dict()) == []


class TestLedger:
    def test_rejects_empty(self):
        assert validate_ledger_jsonl("") != []

    def test_rejects_count_mismatch(self):
        ledger = InliningLedger()
        ledger.record("inline", 0, "a", "b", 1, "inlined", "r", "accepted")
        lines = ledger.to_jsonl().strip().split("\n")
        truncated = lines[0] + "\n"  # header claims 1 entry, file has 0
        errors = validate_ledger_jsonl(truncated)
        assert any("considered" in e for e in errors)

    def test_rejects_unknown_decision(self):
        header = json.dumps({"schema": 1, "considered": 1, "decisions": {},
                             "rejection_classes": {}})
        bad = json.dumps({"phase": "inline", "pass": 0, "caller": "a",
                          "callee": "b", "site_id": 1, "decision": "maybe",
                          "reason": "r", "reason_class": "c"})
        errors = validate_ledger_jsonl(header + "\n" + bad + "\n")
        assert any("unknown decision" in e for e in errors)


class TestCli:
    def test_main_valid_artifacts(self, tmp_path, capsys):
        tracer = Tracer()
        with tracer.span("build"):
            pass
        trace = tmp_path / "t.json"
        tracer.write(str(trace))
        reg = MetricsRegistry()
        reg.count("x")
        metrics = tmp_path / "m.json"
        reg.write(str(metrics))
        assert main(["--trace", str(trace), "--metrics", str(metrics)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_main_flags_broken_artifact(self, tmp_path, capsys):
        bad = tmp_path / "t.json"
        bad.write_text('{"traceEvents": []}')
        assert main(["--trace", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().err
