"""Basic blocks: straight-line instruction sequences ending in a terminator."""

from __future__ import annotations

from typing import Iterator, List, Optional

from .instructions import Instr


class BasicBlock:
    """A labelled basic block.

    ``profile_count`` is the number of times the block executed in the
    training run (``None`` when no profile has been applied).  The
    inliner and cloner read these counts to rank sites and scale them
    when bodies are duplicated.
    """

    __slots__ = ("label", "instrs", "profile_count")

    def __init__(self, label: str, instrs: Optional[List[Instr]] = None):
        self.label = label
        self.instrs: List[Instr] = list(instrs) if instrs else []
        self.profile_count: Optional[int] = None

    @property
    def terminator(self) -> Optional[Instr]:
        """The block's final instruction, if it is a terminator."""
        if self.instrs and self.instrs[-1].is_terminator:
            return self.instrs[-1]
        return None

    def successors(self) -> List[str]:
        term = self.terminator
        return term.targets() if term is not None else []

    def append(self, instr: Instr) -> Instr:
        if self.terminator is not None:
            raise ValueError(
                "block {} already terminated by {!r}".format(self.label, self.terminator)
            )
        self.instrs.append(instr)
        return instr

    def body(self) -> List[Instr]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instrs[:-1]
        return list(self.instrs)

    def __iter__(self) -> Iterator[Instr]:
        return iter(self.instrs)

    def __len__(self) -> int:
        return len(self.instrs)

    def __str__(self) -> str:
        lines = ["{}:".format(self.label)]
        lines += ["  {}".format(i) for i in self.instrs]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<BasicBlock {} ({} instrs)>".format(self.label, len(self.instrs))
