"""Aggressive outlining — the paper's future-work complement to inlining.

Section 5: "We are also contemplating using aggressive outlining as a
complement to aggressive inlining, to help further focus the global
optimizer on the truly important stretches of code."

This pass extracts *cold* basic blocks out of procedures into fresh
procedures, replacing each with a call.  Two effects make it a
complement to inlining under HLO's quadratic budget:

- the hot body shrinks, so the back end optimizes a smaller routine and
  the code the I-cache sees on the hot path is denser;
- ``Σ size(R)²`` drops (splitting a routine strictly reduces the sum of
  squares), so the same budget percentage buys *more hot-path inlining*
  afterwards.  When enabled, outlining therefore runs before the
  clone/inline loop and the budget is measured on the outlined program.

A block is outlinable when:

- it is cold: annotated profile count is 0 (or below ``cold_ratio`` of
  the procedure entry count), or — without profile data — its static
  frequency estimate is below ``cold_ratio``;
- it is big enough to be worth a call (``min_block_size``);
- it has at most one live-out register (our calls return one value);
- its live-ins fit the parameter budget (``max_params``);
- it contains no ``alloca`` (outlining would change the allocation's
  frame and lifetime) and no probes;
- the enclosing procedure is not varargs (``va_arg``/``va_count`` read
  the *current* frame) and the block is not the entry block.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.freq import static_block_freqs
from ..ir.basicblock import BasicBlock
from ..ir.instructions import Alloca, Call, Jump, Probe, Ret
from ..ir.procedure import ATTR_VARARGS, LINK_GLOBAL, Procedure
from ..ir.program import Program
from ..ir.types import Type
from ..ir.values import Reg
from ..opt.dce import liveness
from .report import HLOReport

DEFAULT_COLD_RATIO = 0.05
DEFAULT_MIN_BLOCK_SIZE = 4
DEFAULT_MAX_PARAMS = 6


class OutlineCandidate:
    __slots__ = ("proc", "label", "live_in", "live_out")

    def __init__(self, proc: Procedure, label: str, live_in: List[str], live_out: Optional[str]):
        self.proc = proc
        self.label = label
        self.live_in = live_in
        self.live_out = live_out


def _block_uses_and_defs(block: BasicBlock) -> Tuple[Set[str], Set[str]]:
    uses: Set[str] = set()
    defs: Set[str] = set()
    for instr in block.instrs:
        for op in instr.uses():
            if isinstance(op, Reg) and op.name not in defs:
                uses.add(op.name)
        if instr.dest is not None:
            defs.add(instr.dest.name)
    return uses, defs


def find_outline_candidates(
    proc: Procedure,
    cold_ratio: float = DEFAULT_COLD_RATIO,
    min_block_size: int = DEFAULT_MIN_BLOCK_SIZE,
    max_params: int = DEFAULT_MAX_PARAMS,
) -> List[OutlineCandidate]:
    """Cold, extractable blocks of one procedure."""
    if ATTR_VARARGS in proc.attrs or proc.entry is None:
        return []
    entry_block = proc.blocks.get(proc.entry)
    entry_count = entry_block.profile_count if entry_block else None

    static_freqs: Optional[Dict[str, float]] = None
    if entry_count is None or entry_count <= 0:
        static_freqs = static_block_freqs(proc)

    live_out_sets = liveness(proc)
    reachable = proc.reachable_labels()
    candidates: List[OutlineCandidate] = []

    for label, block in proc.blocks.items():
        if label == proc.entry or label not in reachable:
            continue
        if len(block.instrs) < min_block_size:
            continue
        if not _is_cold(block, entry_count, cold_ratio, static_freqs, label):
            continue
        if any(isinstance(i, (Alloca, Probe)) for i in block.instrs):
            continue
        term = block.terminator
        if term is None or not isinstance(term, (Jump, Ret)):
            continue  # conditional exits would need a return code path

        uses, defs = _block_uses_and_defs(block)
        if len(uses) > max_params:
            continue
        live_after = live_out_sets[label]
        escaping = sorted(defs & live_after)
        if isinstance(term, Ret):
            if escaping:
                continue  # the return value is the only thing escaping
            live_out = None
        else:
            if len(escaping) > 1:
                continue
            live_out = escaping[0] if escaping else None
        candidates.append(OutlineCandidate(proc, label, sorted(uses), live_out))
    return candidates


def _is_cold(
    block: BasicBlock,
    entry_count: Optional[int],
    cold_ratio: float,
    static_freqs: Optional[Dict[str, float]],
    label: str,
) -> bool:
    if entry_count is not None and entry_count > 0:
        count = block.profile_count or 0
        return count <= entry_count * cold_ratio
    if static_freqs is not None:
        return static_freqs.get(label, 1.0) < cold_ratio
    return False


def outline_block(
    program: Program, candidate: OutlineCandidate, report: Optional[HLOReport] = None
) -> Procedure:
    """Extract one candidate block into a fresh procedure."""
    proc = candidate.proc
    block = proc.blocks[candidate.label]
    module = program.modules[proc.module]

    name = _fresh_outline_name(program, proc.name)
    # Parameter types are untracked at the register level; the IR is
    # word-typed at runtime, so INT stands in (floats travel fine —
    # only the verifier's signature arity matters).
    outlined = Procedure(
        name,
        [(reg, Type.INT) for reg in candidate.live_in],
        ret_type=Type.INT if _returns_value(block, candidate) else Type.VOID,
        module=proc.module,
        linkage=LINK_GLOBAL,
    )
    body = BasicBlock("entry")
    term = block.terminator
    for instr in block.body():
        body.instrs.append(instr)
    if isinstance(term, Ret):
        body.instrs.append(term)
        outlined.ret_type = proc.ret_type
    elif candidate.live_out is not None:
        body.instrs.append(Ret(Reg(candidate.live_out)))
    else:
        body.instrs.append(Ret(None))
    body.profile_count = block.profile_count
    outlined.add_block(body, entry=True)
    module.add_proc(outlined)

    # Replace the block's contents with a call (plus the original jump).
    args = [Reg(reg) for reg in candidate.live_in]
    site = module.new_site_id()
    if isinstance(term, Ret):
        if proc.ret_type is Type.VOID:
            call = Call(None, name, args, site)
            block.instrs = [call, Ret(None)]
        else:
            result = proc.new_reg("out")
            call = Call(result, name, args, site)
            block.instrs = [call, Ret(result)]
    else:
        dest = Reg(candidate.live_out) if candidate.live_out is not None else None
        call = Call(dest, name, args, site)
        block.instrs = [call, Jump(term.target)]

    if report is not None:
        report.outlines += 1
        report.outlined_procs.append(name)
    return outlined


def _returns_value(block: BasicBlock, candidate: OutlineCandidate) -> bool:
    term = block.terminator
    if isinstance(term, Ret):
        return term.value is not None
    return candidate.live_out is not None


def _fresh_outline_name(program: Program, base: str) -> str:
    counter = 1
    while True:
        name = "{}.o{}".format(base, counter)
        if program.proc(name) is None:
            return name
        counter += 1


def outline_pass(
    program: Program,
    report: Optional[HLOReport] = None,
    cold_ratio: float = DEFAULT_COLD_RATIO,
    min_block_size: int = DEFAULT_MIN_BLOCK_SIZE,
    max_params: int = DEFAULT_MAX_PARAMS,
) -> int:
    """Outline every qualifying cold block; returns the number extracted."""
    performed = 0
    for proc in list(program.all_procs()):
        if proc.name.count(".o"):  # do not re-outline outlined bodies
            continue
        candidates = find_outline_candidates(
            proc, cold_ratio, min_block_size, max_params
        )
        for candidate in candidates:
            outline_block(program, candidate, report)
            performed += 1
    return performed
