"""The clone pass (Figure 3): specs, groups, database, retargeting."""

import pytest

from repro.core import (
    Budget,
    CloneDatabase,
    HLOConfig,
    HLOReport,
    build_clone_groups,
    calling_context,
    clone_pass,
    context_matches,
    make_clone_spec,
    param_usage_weights,
    spec_key,
)
from repro.analysis import CallGraph
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import Call, FuncRef, Imm, verify_program


DISPATCH = [
    (
        "m",
        """
        int compute(int mode, int x) {
          if (mode == 0) return x + 1;
          if (mode == 1) return x * 2;
          return x - 3;
        }
        int main() {
          int total = 0;
          for (int i = 0; i < 10; i++) {
            total += compute(0, i);
            total += compute(0, i + 1);
            total += compute(1, i);
          }
          print_int(total);
          return total % 31;
        }
        """,
    )
]


class TestDescriptors:
    def test_calling_context_collects_constants(self):
        program = compile_program(DISPATCH)
        graph = CallGraph(program)
        site = next(s for s in graph.sites if s.callee and s.callee.name == "compute")
        context = calling_context(site.instr)
        assert 0 in context and context[0] == Imm(0)
        assert 1 not in context  # x is a register

    def test_param_usage_weights_branchy_param_highest(self):
        program = compile_program(DISPATCH)
        weights = param_usage_weights(program.proc("compute"), HLOConfig())
        assert weights[0] > weights[1]  # mode steers branches

    def test_indirect_call_position_bonus(self):
        program = compile_program(
            [
                (
                    "m",
                    """
                    int apply(int f, int x) { return f(x) + x; }
                    int id(int v) { return v; }
                    int main() { return apply(&id, 1); }
                    """,
                )
            ]
        )
        weights = param_usage_weights(program.proc("apply"), HLOConfig())
        assert weights[0] > weights[1]

    def test_spec_intersects_context_and_usage(self):
        program = compile_program(DISPATCH)
        graph = CallGraph(program)
        site = next(s for s in graph.sites if s.callee and s.callee.name == "compute")
        usage = param_usage_weights(site.callee, HLOConfig())
        spec = make_clone_spec(site, usage)
        assert list(spec) == [0]

    def test_context_matches(self):
        call = Call(None, "f", [Imm(0), Imm(5)], 0)
        assert context_matches(call, {0: Imm(0)})
        assert not context_matches(call, {0: Imm(1)})
        assert not context_matches(call, {2: Imm(1)})
        assert context_matches(call, {0: Imm(0), 1: Imm(5)})

    def test_spec_key_stable(self):
        a = spec_key("f", {0: Imm(1), 2: FuncRef("g")})
        b = spec_key("f", {2: FuncRef("g"), 0: Imm(1)})
        assert a == b


class TestGroups:
    def test_compatible_sites_grouped(self):
        program = compile_program(DISPATCH)
        graph = CallGraph(program)
        groups = build_clone_groups(program, graph, HLOConfig(), None)
        mode0 = next(g for g in groups if g.spec.get(0) == Imm(0))
        assert len(mode0.sites) == 2  # both compute(0, ...) sites

    def test_groups_disabled_yields_singletons(self):
        program = compile_program(DISPATCH)
        graph = CallGraph(program)
        config = HLOConfig(clone_groups=False)
        groups = build_clone_groups(program, graph, config, None)
        assert all(len(g.sites) == 1 for g in groups)

    def test_full_coverage_marks_deletable(self):
        sources = [
            (
                "m",
                """
                int only(int mode, int x) { if (mode) return x; return -x; }
                int main() { return only(1, input(0)) + only(1, input(1)); }
                """,
            )
        ]
        program = compile_program(sources)
        graph = CallGraph(program)
        groups = build_clone_groups(program, graph, HLOConfig(), None)
        assert groups and groups[0].deletes_clonee

    def test_address_taken_never_deletable(self):
        sources = [
            (
                "m",
                """
                int only(int mode, int x) { if (mode) return x; return -x; }
                int main() { int f = &only; return only(1, input(0)) + f(0, 1); }
                """,
            )
        ]
        program = compile_program(sources)
        graph = CallGraph(program)
        groups = build_clone_groups(program, graph, HLOConfig(), None)
        assert groups and not groups[0].deletes_clonee


class TestClonePass:
    def run_pass(self, program, config=None, budget_percent=2000):
        config = config or HLOConfig(budget_percent=budget_percent)
        budget = Budget(program, budget_percent)
        report = HLOReport()
        db = CloneDatabase()
        replaced = clone_pass(program, config, budget, report, 3, db)
        return replaced, report, db

    def test_semantics_preserved(self):
        program = compile_program(DISPATCH)
        before = run_program(program).behavior()
        replaced, report, _db = self.run_pass(program)
        assert replaced >= 2
        assert report.clones >= 1
        verify_program(program)
        assert run_program(program).behavior() == before

    def test_arguments_edited_from_call_sites(self):
        program = compile_program(DISPATCH)
        self.run_pass(program)
        clones = [p for p in program.all_procs() if ".c" in p.name]
        assert clones
        for clone in clones:
            assert len(clone.params) == 1  # mode was edited out
        for site in CallGraph(program).sites:
            if site.callee is not None and ".c" in site.callee.name:
                assert len(site.instr.args) == 1

    def test_database_reuses_clones(self):
        program = compile_program(DISPATCH)
        config = HLOConfig(budget_percent=2000)
        budget = Budget(program, 2000)
        report = HLOReport()
        db = CloneDatabase()
        clone_pass(program, config, budget, report, 3, db)
        first_clones = report.clones
        # A second pass with the same database must not recreate them.
        clone_pass(program, config, budget, report, 3, db)
        assert report.clones == first_clones

    def test_zero_budget_blocks_cloning(self):
        program = compile_program(DISPATCH)
        replaced, report, _db = self.run_pass(
            program, HLOConfig(budget_percent=0), budget_percent=0
        )
        # Deletable groups cost nothing, so only those may proceed; for
        # this program the mode=0 group does not cover all sites, so it
        # has a real cost and is rejected.
        clones = [p for p in program.all_procs() if ".c" in p.name]
        non_deletable = [c for c in clones]
        assert report.clones <= 1

    def test_recursive_pass_through(self):
        # The paper's recursive pass-through-parameter case: n varies at
        # run time, mode is the cloned-in constant; the clone's own
        # recursive call must end up calling the clone.
        sources = [
            (
                "m",
                """
                int walk(int n, int mode) {
                  if (n <= 0) return 0;
                  if (mode) print_int(n);
                  return n + walk(n - 1, mode);
                }
                int main() { return walk(input(0), 0) % 31; }
                """,
            )
        ]
        program = compile_program(sources)
        before = run_program(program, [5]).behavior()
        replaced, report, _db = self.run_pass(program)
        verify_program(program)
        assert run_program(program, [5]).behavior() == before
        clones = [p for p in program.all_procs() if p.name.startswith("walk.c")]
        assert clones
        self_calls = [
            i.callee for _b, _i, i in clones[0].call_sites() if isinstance(i, Call)
        ]
        assert self_calls and all(c == clones[0].name for c in self_calls)


class TestCloneNameRecycling:
    """Regression: a deleted clone's name must never be recycled for a
    clone with a different spec — a stale database entry would then
    retarget sites to a wrong-signature procedure (found by the PGO
    property test, seed 375968)."""

    def test_fresh_name_never_recycled(self):
        program = compile_program(DISPATCH)
        db = CloneDatabase()
        name1 = db.fresh_name(program, "compute")
        # Even though the program never gained `name1`, the run did.
        name2 = db.fresh_name(program, "compute")
        assert name1 != name2

    def test_seed_375968_pipeline(self):
        from repro.core import run_hlo
        from repro.profile import ProfileDatabase, annotate_program, instrument_program
        from repro.workloads.generator import generate_sources

        sources = generate_sources(375968)
        reference = run_program(compile_program(sources), max_steps=500_000)

        instrumented = compile_program(sources)
        probe_map = instrument_program(instrumented)
        trained = run_program(instrumented, max_steps=2_000_000)
        db = ProfileDatabase.from_training_run(
            instrumented, probe_map, trained.probe_counts, trained.steps
        )
        final = compile_program(sources)
        annotate_program(final, db)
        run_hlo(final, HLOConfig(budget_percent=400), site_counts=db.site_counts)
        verify_program(final)
        # Every direct call's arity matches its callee's signature.
        for proc in final.all_procs():
            for _b, _i, instr in proc.call_sites():
                if isinstance(instr, Call):
                    callee = final.proc(instr.callee)
                    if callee is not None:
                        assert len(instr.args) == len(callee.params), instr
        result = run_program(final, max_steps=2_000_000)
        assert result.behavior() == reference.behavior()
