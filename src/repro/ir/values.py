"""Operand values for the IR.

Instructions consume *operands* and produce values into *virtual
registers*.  The IR is register-based and non-SSA (like ucode's virtual
registers): a register may be assigned more than once, and the optimizer
passes use classic dataflow rather than SSA form.

Operand kinds:

``Reg``
    A procedure-local virtual register (``%name``).
``Imm``
    An immediate constant, integer or float.
``FuncRef``
    The address of a procedure, by its program-unique IR name.  These
    are the values that flow into indirect call sites; constant
    propagation of a ``FuncRef`` into an ``ICall`` is what lets HLO turn
    an indirect call into a direct one across cloning passes (Section
    3.1 of the paper).
``GlobalRef``
    The address of a module-level global variable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .types import Type


@dataclass(frozen=True)
class Reg:
    """A virtual register, identified by name within one procedure."""

    name: str

    def __str__(self) -> str:
        return "%" + self.name


@dataclass(frozen=True)
class Imm:
    """An immediate constant operand."""

    value: Union[int, float]
    type: Type = Type.INT

    def __post_init__(self) -> None:
        if self.type is Type.INT and not isinstance(self.value, int):
            raise TypeError("integer immediate requires an int value")
        if self.type is Type.FLT and not isinstance(self.value, float):
            raise TypeError("float immediate requires a float value")

    def __str__(self) -> str:
        if self.type is Type.FLT:
            return repr(float(self.value))
        return str(self.value)


@dataclass(frozen=True)
class FuncRef:
    """The address of a procedure (a code pointer constant)."""

    name: str

    def __str__(self) -> str:
        return "@" + self.name


@dataclass(frozen=True)
class GlobalRef:
    """The address of a global variable."""

    name: str

    def __str__(self) -> str:
        return "$" + self.name


Operand = Union[Reg, Imm, FuncRef, GlobalRef]


def is_constant(op: Operand) -> bool:
    """True for operands whose value is known at compile time."""
    return isinstance(op, (Imm, FuncRef, GlobalRef))
