"""Aggressive outlining (the paper's Section 5 extension)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    HLOConfig,
    HLOReport,
    find_outline_candidates,
    outline_block,
    outline_pass,
    run_hlo,
)
from repro.core.budget import program_cost
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import verify_program
from repro.profile import annotate_program, instrument_program, ProfileDatabase
from repro.workloads.generator import generate_sources

# A hot loop with a big cold error path: the outlining poster child.
COLDPATH = [
    (
        "m",
        """
        int g_err = 0;

        int process(int v) {
          if (v < 0) {
            // Cold error handling: big, rarely executed.
            int code = v * v + 7;
            code = code % 1000;
            g_err = g_err + code;
            g_err = g_err % 100003;
            code = code + g_err;
            print_int(code);
            return -code;
          }
          return v * 2 + 1;
        }

        int main() {
          int total = 0;
          for (int i = 0; i < 40; i++) total += process(i);
          print_int(total);
          return total % 31;
        }
        """,
    )
]


def trained_program():
    """COLDPATH with measured counts (the cold arm has count 0)."""
    program = compile_program(COLDPATH)
    probe_map = instrument_program(program)
    result = run_program(program)
    db = ProfileDatabase.from_training_run(program, probe_map, result.probe_counts)
    fresh = compile_program(COLDPATH)
    annotate_program(fresh, db)
    return fresh


class TestCandidates:
    def test_cold_block_found_with_profile(self):
        program = trained_program()
        candidates = find_outline_candidates(program.proc("process"))
        assert candidates
        labels = {c.label for c in candidates}
        assert any("then" in l for l in labels)

    def test_hot_blocks_not_candidates(self):
        program = trained_program()
        candidates = find_outline_candidates(program.proc("main"))
        hot_labels = {c.label for c in candidates}
        body_labels = {l for l in program.proc("main").blocks if "body" in l}
        assert not (hot_labels & body_labels)

    def test_static_coldness_without_profile(self):
        program = compile_program(COLDPATH)
        candidates = find_outline_candidates(
            program.proc("process"), cold_ratio=0.6
        )
        assert candidates  # the branch arm is statically colder than entry

    def test_min_size_respected(self):
        program = trained_program()
        candidates = find_outline_candidates(
            program.proc("process"), min_block_size=10_000
        )
        assert candidates == []

    def test_entry_never_outlined(self):
        program = trained_program()
        for proc in program.all_procs():
            for c in find_outline_candidates(proc, cold_ratio=1.0, min_block_size=0):
                assert c.label != proc.entry

    def test_varargs_procs_skipped(self):
        program = compile_program(
            [
                (
                    "m",
                    """
                    int v(int n, ...) {
                      if (n < 0) {
                        int a = va_arg(0); int b = va_arg(1);
                        int c = a + b; int d = c * 3;
                        return d;
                      }
                      return n;
                    }
                    int main() { return v(1, 2, 3); }
                    """,
                )
            ]
        )
        assert find_outline_candidates(program.proc("v"), cold_ratio=1.0) == []

    def test_alloca_blocks_skipped(self):
        program = compile_program(
            [
                (
                    "m",
                    """
                    int f(int n) {
                      if (n < 0) {
                        int buf[4];
                        buf[0] = n; buf[1] = n * 2;
                        return buf[0] + buf[1];
                      }
                      return n;
                    }
                    int main() { return f(5); }
                    """,
                )
            ]
        )
        # The alloca is hoisted to the entry (never a candidate), and the
        # cold arm itself has no alloca, so this just documents the rule:
        for c in find_outline_candidates(program.proc("f"), cold_ratio=1.0, min_block_size=0):
            block = program.proc("f").blocks[c.label]
            from repro.ir import Alloca

            assert not any(isinstance(i, Alloca) for i in block.instrs)


class TestTransform:
    def test_outline_preserves_behavior(self):
        program = trained_program()
        reference = run_program(program).behavior()
        report = HLOReport()
        performed = outline_pass(program, report)
        assert performed >= 1
        assert report.outlines == performed
        verify_program(program)
        assert run_program(program).behavior() == reference

    def test_cold_path_still_works_when_taken(self):
        sources = [
            (
                "m",
                """
                int process(int v) {
                  if (v < 0) {
                    int code = v * v + 7;
                    code = code % 1000;
                    code = code * 3 + 1;
                    print_int(code);
                    return -code;
                  }
                  return v * 2 + 1;
                }
                int main() {
                  print_int(process(input(0)));
                  return 0;
                }
                """,
            )
        ]
        program = compile_program(sources)
        cold_ref = run_program(program, [-5]).behavior()
        hot_ref = run_program(program, [5]).behavior()
        outline_pass(program, HLOReport(), cold_ratio=0.6)
        verify_program(program)
        assert run_program(program, [-5]).behavior() == cold_ref
        assert run_program(program, [5]).behavior() == hot_ref

    def test_outlining_reduces_quadratic_cost(self):
        program = trained_program()
        before = program_cost(program)
        performed = outline_pass(program, HLOReport())
        assert performed >= 1
        assert program_cost(program) < before

    def test_outlined_names_fresh(self):
        program = trained_program()
        outline_pass(program, report := HLOReport())
        names = [p.name for p in program.all_procs()]
        assert len(names) == len(set(names))
        assert all(program.proc(n) is not None for n in report.outlined_procs)


class TestHLOIntegration:
    def test_hlo_with_outlining_preserves_behavior(self):
        program = trained_program()
        reference = run_program(program).behavior()
        report = run_hlo(
            program,
            HLOConfig(budget_percent=400, enable_outlining=True),
        )
        verify_program(program)
        assert run_program(program).behavior() == reference
        assert report.outlines >= 1

    def test_outlining_off_by_default(self):
        program = trained_program()
        report = run_hlo(program, HLOConfig(budget_percent=400))
        assert report.outlines == 0

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_property_outline_then_hlo_preserves_behavior(self, seed):
        sources = generate_sources(seed)
        reference = run_program(compile_program(sources), max_steps=500_000)
        program = compile_program(sources)
        run_hlo(
            program,
            HLOConfig(budget_percent=400, enable_outlining=True,
                      outline_cold_ratio=0.6, outline_min_block_size=2),
        )
        verify_program(program)
        result = run_program(program, max_steps=3_000_000)
        assert result.behavior() == reference.behavior()
