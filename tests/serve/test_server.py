"""End-to-end daemon behavior: protocol ops, isolation, drain, metrics."""

from __future__ import annotations

import asyncio

import pytest

from repro.obs import BuildObserver, MetricsRegistry
from repro.obs import names
from repro.serve.client import AsyncServeClient, ServeRequestError
from repro.serve.protocol import decode_frame
from repro.serve.server import ReproServer
from repro.serve.state import ServerState

from .conftest import BROKEN_SOURCES, REF_INPUT, SOURCES, TRAIN_INPUTS


async def _with_server(test_body, **server_kwargs):
    """Run ``test_body(server, client)`` against a live in-loop daemon."""
    server = ReproServer(**server_kwargs)
    await server.start()
    serving = asyncio.create_task(server.serve_until_shutdown())
    client = await AsyncServeClient.connect(server.host, server.port)
    try:
        result = await test_body(server, client)
    finally:
        await client.close()
        server.request_shutdown()
        await asyncio.wait_for(serving, timeout=30)
    return result


def test_ping_build_run_stats():
    async def body(server, client):
        pong = await client.ping()
        assert pong["op"] == "ping"

        built = await client.build(SOURCES, scope="c")
        assert built["cached"] is False
        assert set(built["isoms"]) == {"util", "mid", "main"}
        assert built["module_order"]
        assert built["checksum"]

        ran = await client.run(SOURCES, inputs=REF_INPUT, scope="c")
        assert ran["exit_code"] == 0
        assert ran["output"] == [42]
        assert ran["cached"] is True  # the build op warmed the LRU
        assert ran["checksum"] == built["checksum"]

        stats = await client.stats()
        assert stats["state"]["builds"] == 1
        assert stats["state"]["result_hits"] == 1
        assert stats["requests"] >= 4
        return stats

    asyncio.run(_with_server(body))


def test_wire_dedupe_builds_once_counter_asserted():
    """Two identical concurrent wire requests compile exactly once."""
    metrics = MetricsRegistry()

    async def body(server, client):
        other = await AsyncServeClient.connect(server.host, server.port)
        try:
            results = await asyncio.gather(
                client.build(SOURCES, scope="cp", train_inputs=TRAIN_INPUTS),
                other.build(SOURCES, scope="cp", train_inputs=TRAIN_INPUTS),
            )
        finally:
            await other.close()
        assert results[0]["checksum"] == results[1]["checksum"]
        assert server.state.builds == 1
        assert server.scheduler.dedupe_hits == 1
        assert metrics.value(names.SERVE_DEDUPE_HITS) == 1
        assert metrics.value(names.SERVE_BUILDS) == 1
        assert metrics.value(names.SERVE_REQUESTS_OK) >= 2

    # The CLI wires the observer through ServerState; the server then
    # inherits it, so scheduler and state counters land in one registry.
    state = ServerState(observer=BuildObserver(metrics=metrics))
    asyncio.run(_with_server(body, state=state))


def test_bad_source_is_bad_request_and_daemon_survives():
    async def body(server, client):
        with pytest.raises(ServeRequestError) as excinfo:
            await client.build(BROKEN_SOURCES, scope="c")
        assert excinfo.value.status == "bad-request"
        assert excinfo.value.error_type == "CompileError"
        # Crash-of-one-request isolation: the daemon keeps serving.
        built = await client.build(SOURCES, scope="c")
        assert built["checksum"]

    asyncio.run(_with_server(body))


def test_internal_failure_is_isolated():
    async def body(server, client):
        real_execute = server.state.execute

        def boom(request):
            raise RuntimeError("injected fault")

        server.state.execute = boom
        try:
            with pytest.raises(ServeRequestError) as excinfo:
                await client.build(SOURCES, scope="c")
        finally:
            server.state.execute = real_execute
        assert excinfo.value.status == "error"
        assert excinfo.value.error_type == "RuntimeError"
        assert (await client.ping())["status"] == "ok"

    asyncio.run(_with_server(body))


def test_unsupported_op_and_bad_frame_resync():
    async def body(server, client):
        with pytest.raises(ServeRequestError) as excinfo:
            await client.request({"op": "teapot"})
        assert excinfo.value.status == "bad-request"

        # A garbage line gets a typed reply and the connection
        # re-synchronizes on the next newline.
        client._writer.write(b"rpc 1 nonsense\n")
        await client._writer.drain()
        line = await client._reader.readline()
        response = decode_frame(line)
        assert response["status"] == "bad-request"
        assert response["error_type"] == "FrameFormatError"
        assert server.protocol_errors == 1

        assert (await client.ping())["status"] == "ok"

    asyncio.run(_with_server(body))


def test_per_request_timeout_is_a_typed_reply():
    async def body(server, client):
        with pytest.raises(ServeRequestError) as excinfo:
            await client.build(SOURCES, scope="c", timeout=0.000001)
        assert excinfo.value.status == "timeout"
        assert server.scheduler.timeouts == 1
        # The abandoned build still finished and warmed the LRU.
        await server.scheduler.drain()
        built = await client.build(SOURCES, scope="c")
        assert built["cached"] is True

    asyncio.run(_with_server(body))


def test_shutdown_request_drains(daemon, client):
    """The sync client against the threaded daemon: full lifecycle."""
    assert client.ping()["status"] == "ok"
    built = client.build(SOURCES, scope="c")
    assert built["checksum"]
    stats = client.stats()
    assert stats["state"]["builds"] == 1
    reply = client.shutdown()
    assert reply["draining"] is True
    daemon.thread.join(timeout=30)
    assert not daemon.thread.is_alive()
    assert daemon.server.drained is True
