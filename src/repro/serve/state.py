"""Request state for the build daemon: the other half of the split.

:class:`~repro.linker.toolchain.ToolchainState` holds what persists
across requests (module cache, worker pool, build policy).  This
module holds what must *not* persist:

- :class:`BuildRequest` — a frozen, validated form of one wire
  request, with the dedupe key (:meth:`BuildRequest.key`) derived from
  ``HLOConfig.fingerprint()`` plus a source-tree digest, so two
  requests collide exactly when their builds would be byte-identical;
- :class:`BuildSession` — one request's private ``Toolchain`` over the
  shared state, producing a wire-ready result payload;
- :class:`ServerState` — the daemon's composition of both, plus a
  bounded LRU of finished build payloads (keeping linked programs —
  and therefore interpreter plan caches — warm for repeat run/rebuild
  traffic).

``ServerState.execute`` runs on scheduler worker threads; everything
it touches is either request-private, internally locked (the module
cache), or guarded by the state's own lock (the result LRU and the
shared metrics registry).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..core.config import HLOConfig
from ..core.report import HLOReport, PassFailure, TransformEvent
from ..interp.interpreter import (
    DEFAULT_ENGINE,
    DEFAULT_MAX_STEPS,
    ENGINES,
    run_program,
)
from ..linker.isom import to_isom_text
from ..linker.toolchain import SCOPES, BuildResult, Toolchain, ToolchainState
from ..obs import NULL_OBSERVER, BuildObserver, InliningLedger
from ..obs import names
from ..profile.database import ProfileDatabase

# Everything a build reply's ``report`` object carries verbatim.
_REPORT_SCALARS = (
    "inlines",
    "clones",
    "clone_replacements",
    "deletions",
    "promotions",
    "devirtualized",
    "outlines",
    "clone_db_hits",
    "passes_run",
    "analysis_hits",
    "analysis_misses",
    "analysis_invalidations",
    "sites_considered",
    "initial_cost",
    "final_cost",
    "budget_limit",
)
_REPORT_LISTS = (
    "deleted_procs",
    "promoted_symbols",
    "outlined_procs",
    "quarantined_passes",
)


def serialize_report(report: HLOReport) -> dict:
    """An HLOReport as a JSON-safe object (wire twin of the dataclass).

    Events ride along in full — the fleet's convergence measure is a
    Jaccard over (kind, caller, callee, site_id) decision sets, so a
    remote build must carry the same evidence a local one would.
    ``pass_failures`` travels as a count: enough to preserve the
    ``degraded`` verdict without shipping tracebacks.
    """
    obj = {name: getattr(report, name) for name in _REPORT_SCALARS}
    for name in _REPORT_LISTS:
        obj[name] = list(getattr(report, name))
    obj["events"] = [
        [e.kind, e.pass_number, e.caller, e.callee, e.site_id, e.detail]
        for e in report.events
    ]
    obj["pass_failures"] = len(report.pass_failures)
    return obj


def deserialize_report(obj: dict) -> HLOReport:
    report = HLOReport()
    for name in _REPORT_SCALARS:
        setattr(report, name, obj.get(name, 0))
    for name in _REPORT_LISTS:
        setattr(report, name, list(obj.get(name, ())))
    report.events = [
        TransformEvent(kind, pass_number, caller, callee, site_id, detail)
        for kind, pass_number, caller, callee, site_id, detail in obj.get(
            "events", ()
        )
    ]
    for _ in range(int(obj.get("pass_failures", 0))):
        # Placeholders: the remote side kept the tracebacks; what
        # matters here is that ``report.degraded`` stays true.
        report.pass_failures.append(
            PassFailure(
                pass_name="remote", proc="", pass_number=0,
                phase="output", error_type="remote", error="see server log",
            )
        )
    return report


def artifact_checksum(isoms: Dict[str, str]) -> str:
    """One digest over a build's per-module isom texts.

    Because the parallel pipeline routes every module through its isom
    text, this digest is the byte-identity check between a daemon
    build and a cold CLI build of the same sources and config.
    """
    digest = hashlib.sha256()
    for name in sorted(isoms):
        digest.update(name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(isoms[name].encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


@dataclass(frozen=True)
class BuildRequest:
    """One wire request, validated and normalized.

    Frozen so a request can serve as a dict key and be shared between
    the scheduler and any number of waiters without copy-on-read
    paranoia.
    """

    op: str  # "build" | "run"
    sources: Tuple[Tuple[str, str], ...]
    scope: str = "c"
    engine: str = ""  # empty = the server's default engine
    budget_percent: Optional[float] = None
    strategy: str = "global"
    train_inputs: Tuple[Tuple[float, ...], ...] = ()
    profile_text: Optional[str] = None
    inputs: Tuple[float, ...] = ()  # run op only
    max_steps: int = DEFAULT_MAX_STEPS
    want_ledger: bool = False
    timeout: Optional[float] = None  # per-request scheduler deadline

    @classmethod
    def from_payload(cls, payload: dict) -> "BuildRequest":
        """Validate a decoded wire payload; raises ValueError when bad."""
        op = payload.get("op")
        if op not in ("build", "run"):
            raise ValueError("unsupported op {!r}".format(op))
        raw_sources = payload.get("sources")
        if not isinstance(raw_sources, list) or not raw_sources:
            raise ValueError("'sources' must be a non-empty list")
        sources = []
        for entry in raw_sources:
            if (
                not isinstance(entry, (list, tuple))
                or len(entry) != 2
                or not all(isinstance(part, str) for part in entry)
            ):
                raise ValueError(
                    "each source must be a [name, text] pair of strings"
                )
            sources.append((entry[0], entry[1]))
        scope = payload.get("scope", "c")
        if scope not in SCOPES:
            raise ValueError(
                "unknown scope {!r}; expected one of {}".format(scope, SCOPES)
            )
        engine = payload.get("engine", "")
        if engine and engine not in ENGINES:
            raise ValueError(
                "unknown engine {!r}; expected one of {}".format(
                    engine, sorted(ENGINES)
                )
            )
        budget = payload.get("budget_percent")
        if budget is not None and not isinstance(budget, (int, float)):
            raise ValueError("'budget_percent' must be a number")
        strategy = payload.get("strategy", "global")
        if strategy not in ("global", "demand"):
            raise ValueError(
                "unknown strategy {!r}; expected 'global' or "
                "'demand'".format(strategy)
            )
        train = tuple(
            tuple(run) for run in payload.get("train_inputs", ())
        )
        profile_text = payload.get("profile")
        if profile_text is not None and not isinstance(profile_text, str):
            raise ValueError("'profile' must be profiledb text")
        inputs = tuple(payload.get("inputs", ()))
        if op == "run" and not all(
            isinstance(v, (int, float)) for v in inputs
        ):
            raise ValueError("'inputs' must be numbers")
        max_steps = payload.get("max_steps", DEFAULT_MAX_STEPS)
        if not isinstance(max_steps, int) or max_steps <= 0:
            raise ValueError("'max_steps' must be a positive integer")
        timeout = payload.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ValueError("'timeout' must be a number of seconds")
        return cls(
            op=op,
            sources=tuple(sources),
            scope=scope,
            engine=engine,
            budget_percent=budget,
            strategy=strategy,
            train_inputs=train,
            profile_text=profile_text,
            inputs=inputs,
            max_steps=max_steps,
            want_ledger=bool(payload.get("ledger", False)),
            timeout=timeout,
        )

    def config(self) -> HLOConfig:
        config = HLOConfig(strategy=self.strategy)
        if self.budget_percent is not None:
            config = replace(config, budget_percent=float(self.budget_percent))
        return config

    def build_key(self) -> str:
        """The dedupe key of the underlying *build*.

        ``HLOConfig.fingerprint()`` + a source-tree digest + everything
        else that feeds the artifact (scope, engine, training inputs,
        profile override) — and nothing that doesn't, so a ``run``
        request shares its build with the ``build`` that warmed it.
        """
        digest = hashlib.sha256()
        for part in (
            "repro-serve-build",
            self.config().fingerprint(),
            self.scope,
            self.engine,
            repr(self.train_inputs),
            self.profile_text or "",
        ):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        for name, text in sorted(self.sources):
            digest.update(name.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(text.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    def key(self) -> str:
        """The in-flight dedupe key (build identity + op + run inputs)."""
        if self.op == "build":
            return self.build_key()
        return "{}|run|{}|{}".format(
            self.build_key(), repr(self.inputs), self.max_steps
        )


@dataclass
class BuildOutcome:
    """One finished build, retained by the server's result LRU."""

    result: BuildResult
    payload: dict  # the wire-ready "ok" reply fields
    key: str
    wall_s: float


class BuildSession:
    """One request's private build state over the shared toolchain state.

    The session owns everything mutable about its build — the
    ``Toolchain`` (profile caches, diagnostics), the optional inlining
    ledger — and shares only the locked pieces (module cache, worker
    pool) through ``ToolchainState``.  A session is created, executed
    on a worker thread, and discarded; nothing about it outlives the
    request, which is what makes one request's crash isolated.
    """

    def __init__(self, state: ToolchainState, request: BuildRequest):
        self.request = request
        self.toolchain: Toolchain = state.session(
            list(request.sources),
            train_inputs=[list(v) for v in request.train_inputs],
            config=request.config(),
            engine=request.engine or state.engine,
        )

    def execute(self) -> BuildOutcome:
        request = self.request
        started = time.perf_counter()
        ledger = InliningLedger() if request.want_ledger else None
        observer = (
            BuildObserver(ledger=ledger) if ledger is not None else NULL_OBSERVER
        )
        if request.profile_text is not None:
            # May raise ProfileFormatError (a ValueError): bad request.
            database = ProfileDatabase.from_text(request.profile_text)
            result = self.toolchain.rebuild_with_profile(
                database, scope=request.scope, observer=observer
            )
        else:
            result = self.toolchain.build(request.scope, observer=observer)
        wall_s = time.perf_counter() - started

        isoms = {
            module.name: to_isom_text(module)
            for module in result.program.modules.values()
        }
        diagnostics = result.diagnostics
        payload = {
            "op": "build",
            "scope": request.scope,
            "engine": result.engine,
            "isoms": isoms,
            # JSON frames sort object keys; the link order must survive
            # the trip for the client-side program to be identical.
            "module_order": [m.name for m in result.program.modules.values()],
            "checksum": artifact_checksum(isoms),
            "report": serialize_report(result.report),
            "ledger_considered": ledger.considered if ledger else None,
            "stats": {
                "compile_units": result.stats.compile_units,
                "train_steps": result.stats.train_steps,
                "train_runs": result.stats.train_runs,
                "code_size_instrs": result.stats.code_size_instrs,
                "annotated_blocks": result.stats.annotated_blocks,
            },
            "diagnostics": {
                "degraded": result.degraded,
                "module_fallbacks": list(diagnostics.module_fallbacks),
                "profile_fallback": diagnostics.profile_fallback,
                "modules_compiled": diagnostics.modules_compiled,
                "modules_from_cache": diagnostics.modules_from_cache,
                "cache_hits": diagnostics.cache_hits,
                "cache_misses": diagnostics.cache_misses,
                "warnings": len(diagnostics.warnings),
            },
            "build_wall_s": round(wall_s, 6),
            "cached": False,
        }
        return BuildOutcome(
            result=result, payload=payload, key=request.build_key(), wall_s=wall_s
        )


class ServerState:
    """Everything the daemon keeps warm, composed for the scheduler.

    ``execute`` is the thunk the request scheduler runs on a worker
    thread; it consults the finished-build LRU first (a warm rebuild
    is a dictionary hit), then runs a fresh :class:`BuildSession`.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_max_mb: Optional[float] = None,
        engine: str = "",
        compile_timeout: Optional[float] = None,
        observer=NULL_OBSERVER,
        results_capacity: int = 32,
        max_tasks_per_child: Optional[int] = None,
    ):
        self.toolchain_state = ToolchainState.create(
            jobs=jobs,
            cache_dir=cache_dir,
            cache_max_mb=cache_max_mb,
            engine=engine or DEFAULT_ENGINE,
            compile_timeout=compile_timeout,
            max_tasks_per_child=max_tasks_per_child,
        )
        self.observer = observer
        self.results_capacity = max(1, results_capacity)
        self._results: "OrderedDict[str, BuildOutcome]" = OrderedDict()
        self._lock = threading.Lock()
        self.builds = 0  # builds actually executed
        self.result_hits = 0  # served from the finished-build LRU

    # ------------------------------------------------------------------
    # Request execution (scheduler worker threads)
    # ------------------------------------------------------------------

    def execute(self, request: BuildRequest) -> dict:
        """One request, start to finish; returns the "ok" reply fields."""
        outcome = self._build_outcome(request)
        if request.op == "build":
            return outcome.payload
        return self._run(request, outcome)

    def _build_outcome(self, request: BuildRequest) -> BuildOutcome:
        key = request.build_key()
        with self._lock:
            cached = self._results.get(key)
            if cached is not None:
                self._results.move_to_end(key)
                self.result_hits += 1
        if cached is not None:
            self._count(names.SERVE_RESULT_HITS)
            payload = dict(cached.payload)
            payload["cached"] = True
            return BuildOutcome(
                result=cached.result, payload=payload, key=key, wall_s=cached.wall_s
            )
        session = BuildSession(self.toolchain_state, request)
        outcome = session.execute()
        with self._lock:
            self.builds += 1
            self._results[key] = outcome
            self._results.move_to_end(key)
            while len(self._results) > self.results_capacity:
                self._results.popitem(last=False)
        self._count(names.SERVE_BUILDS)
        self._collect_build_metrics(outcome)
        return outcome

    def _run(self, request: BuildRequest, outcome: BuildOutcome) -> dict:
        result = run_program(
            outcome.result.program,
            list(request.inputs),
            max_steps=request.max_steps,
            engine=outcome.result.engine,
        )
        return {
            "op": "run",
            "exit_code": result.exit_code,
            "output": list(result.output),
            "steps": result.steps,
            "checksum": outcome.payload["checksum"],
            "cached": outcome.payload["cached"],
        }

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _count(self, name: str, delta: int = 1) -> None:
        metrics = self.observer.metrics
        if metrics.enabled:
            with self._lock:
                metrics.count(name, delta)

    def _collect_build_metrics(self, outcome: BuildOutcome) -> None:
        metrics = self.observer.metrics
        if not metrics.enabled:
            return
        from ..obs.metrics import collect_build_metrics

        with self._lock:
            collect_build_metrics(
                outcome.result.diagnostics,
                outcome.result.report,
                outcome.result.stats,
                registry=metrics,
            )
            metrics.observe(names.BUILD_WALL_S_HIST, outcome.wall_s)

    def snapshot(self) -> dict:
        """Counters for the ``stats`` op and the drain summary."""
        cache = self.toolchain_state.cache
        pool = self.toolchain_state.pool
        with self._lock:
            retained = len(self._results)
        out = {
            "builds": self.builds,
            "result_hits": self.result_hits,
            "results_retained": retained,
            "cache": {
                "hits": cache.stats.hits,
                "misses": cache.stats.misses,
                "invalidations": cache.stats.invalidations,
                "stores": cache.stats.stores,
                "size_evictions": cache.stats.size_evictions,
                "disk_bytes": cache.disk_bytes(),
            },
        }
        if pool is not None:
            out["pool"] = {
                "jobs": pool.jobs,
                "max_tasks_per_child": pool.max_tasks_per_child,
                "submitted": pool.submitted,
                "generations": pool.generations,
                "discards": pool.discards,
            }
        return out

    def close(self) -> None:
        self.toolchain_state.close()
