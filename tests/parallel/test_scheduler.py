"""Heaviest-first scheduling: profile traffic, then length, then name."""

from __future__ import annotations

from repro.parallel import heaviest_first, module_weights


class _FakeProfile:
    def __init__(self, site_counts):
        self.site_counts = site_counts


def test_weights_sum_profile_traffic_per_module():
    sources = [("a", "xx"), ("b", "yyyy")]
    profile = _FakeProfile({("a", 0): 10, ("a", 1): 5, ("b", 0): 2})
    weights = module_weights(sources, profile)
    assert weights == {"a": (15.0, 2), "b": (2.0, 4)}


def test_profile_traffic_dominates_length():
    sources = [("long_cold", "x" * 500), ("short_hot", "y" * 10)]
    profile = _FakeProfile({("short_hot", 0): 1000})
    ordered = [name for name, _text in heaviest_first(sources, profile)]
    assert ordered == ["short_hot", "long_cold"]


def test_length_breaks_ties_without_profile():
    sources = [("small", "x"), ("big", "x" * 100), ("medium", "x" * 10)]
    ordered = [name for name, _text in heaviest_first(sources)]
    assert ordered == ["big", "medium", "small"]


def test_name_tiebreak_is_deterministic():
    sources = [("b", "xx"), ("a", "yy"), ("c", "zz")]
    assert [n for n, _ in heaviest_first(sources)] == ["a", "b", "c"]
    assert [n for n, _ in heaviest_first(list(reversed(sources)))] == ["a", "b", "c"]
