"""The profile database: block and call-site execution counts.

Keys are stable across recompiles because the front end is
deterministic: block counts key on ``(procedure name, block label)``
and call-site counts on ``(module name, site id)``.  Call-site counts
are derived from block counts — a call executes exactly as often as
its containing block — which mirrors how arc profiles are recovered
from basic-block profiles in practice.

The database serializes to a small text format so the isom workflow can
keep profiles on disk between the training and final compiles.  The
on-disk format is versioned and checksummed::

    profiledb 2 crc32 5d41402a
    runs 1 steps 8842
    block main entry 1
    site app 0 12

"From Profiling to Optimization" calls stale and corrupted profiles the
dominant failure mode of deployed PGO, so ``from_text``/``load`` treat
their input as hostile: truncation, corruption, version skew, malformed
integers, and short lines all raise a typed
:class:`~repro.resilience.ProfileFormatError` carrying the offending
line number — the signal the driver uses to fall back to static
frequency estimation instead of crashing.  Version-1 databases (no
checksum) are still read.
"""

from __future__ import annotations

import zlib
from typing import Dict, Optional, Tuple

from ..ir.instructions import CALL_INSTRS
from ..ir.program import Program
from ..resilience.errors import ProfileFormatError
from .instrument import ProbeMap

PROFILEDB_VERSION = 2

BlockKey = Tuple[str, str]  # (proc name, block label)
SiteKey = Tuple[str, int]  # (module name, site id)


class ProfileDatabase:
    """Counts harvested from one or more training runs."""

    def __init__(self) -> None:
        self.block_counts: Dict[BlockKey, int] = {}
        self.site_counts: Dict[SiteKey, int] = {}
        self.training_runs = 0
        self.training_steps = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_training_run(
        cls,
        program: Program,
        probe_map: ProbeMap,
        probe_counts: Dict[int, int],
        steps: int = 0,
    ) -> "ProfileDatabase":
        db = cls()
        db.merge_run(program, probe_map, probe_counts, steps)
        return db

    def merge_run(
        self,
        program: Program,
        probe_map: ProbeMap,
        probe_counts: Dict[int, int],
        steps: int = 0,
    ) -> None:
        """Fold one training run's probe counters into the database.

        Multiple runs accumulate, supporting the paper's future-work
        idea of "incorporating profile information from a variety of
        sources".
        """
        for counter_id, (proc, label) in probe_map.items():
            count = probe_counts.get(counter_id, 0)
            key = (proc, label)
            self.block_counts[key] = self.block_counts.get(key, 0) + count
        self._derive_site_counts(program)
        self.training_runs += 1
        self.training_steps += steps

    def _derive_site_counts(self, program: Program) -> None:
        self.site_counts = {}
        for mod in program.modules.values():
            for proc in mod.procs.values():
                for label, block in proc.blocks.items():
                    count = self.block_counts.get((proc.name, label))
                    if count is None:
                        continue
                    for instr in block.instrs:
                        if isinstance(instr, CALL_INSTRS):
                            key = (mod.name, instr.site_id)
                            self.site_counts[key] = (
                                self.site_counts.get(key, 0) + count
                            )

    # ------------------------------------------------------------------
    # Combination (Section 5: "incorporating profile information from a
    # variety of sources")
    # ------------------------------------------------------------------

    def scaled(self, factor: float) -> "ProfileDatabase":
        """A copy with every count scaled by ``factor`` (>= 0).

        Scaling lets differently sized training runs contribute equal
        (or deliberately unequal) influence when combined.
        """
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        out = ProfileDatabase()
        out.block_counts = {
            k: int(round(v * factor)) for k, v in self.block_counts.items()
        }
        out.site_counts = {
            k: int(round(v * factor)) for k, v in self.site_counts.items()
        }
        out.training_runs = self.training_runs
        out.training_steps = int(round(self.training_steps * factor))
        return out

    @classmethod
    def combine(
        cls,
        databases: "list[ProfileDatabase]",
        weights: Optional["list[float]"] = None,
    ) -> "ProfileDatabase":
        """Merge profiles from several sources, optionally weighted.

        With no weights, counts add directly (larger runs dominate).
        With weights, each database is normalized by its total steps
        first, so a short synthetic run and a long production trace can
        contribute in the stated proportion.
        """
        if not databases:
            return cls()
        if weights is not None:
            if len(weights) != len(databases):
                raise ValueError("one weight per database required")
            scaled = []
            for db, weight in zip(databases, weights):
                norm = weight / db.training_steps if db.training_steps else 0.0
                # Keep counts in a useful integer range after normalizing.
                scaled.append(db.scaled(norm * 1_000_000))
            databases = scaled
        out = cls()
        for db in databases:
            for key, count in db.block_counts.items():
                out.block_counts[key] = out.block_counts.get(key, 0) + count
            for key, count in db.site_counts.items():
                out.site_counts[key] = out.site_counts.get(key, 0) + count
            out.training_runs += db.training_runs
            out.training_steps += db.training_steps
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def block_count(self, proc: str, label: str) -> Optional[int]:
        return self.block_counts.get((proc, label))

    def site_count(self, module: str, site_id: int) -> Optional[int]:
        return self.site_counts.get((module, site_id))

    def is_empty(self) -> bool:
        return not self.block_counts

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_text(self) -> str:
        lines = ["runs {} steps {}".format(self.training_runs, self.training_steps)]
        for (proc, label), count in sorted(self.block_counts.items()):
            lines.append("block {} {} {}".format(proc, label, count))
        for (module, site), count in sorted(self.site_counts.items()):
            lines.append("site {} {} {}".format(module, site, count))
        payload = "\n".join(lines) + "\n"
        checksum = format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")
        return "profiledb {} crc32 {}\n{}".format(
            PROFILEDB_VERSION, checksum, payload
        )

    @classmethod
    def from_text(cls, text: str) -> "ProfileDatabase":
        header, _, payload = text.lstrip("\n").partition("\n")
        if not header.startswith("profiledb"):
            raise ProfileFormatError("not a profile database", "not-profile")
        fields = header.split()
        try:
            version = int(fields[1]) if len(fields) > 1 else 0
        except ValueError:
            raise ProfileFormatError(
                "malformed version field", "malformed", 1, header
            ) from None
        if version == PROFILEDB_VERSION:
            if len(fields) != 4 or fields[2] != "crc32":
                raise ProfileFormatError(
                    "malformed profiledb header", "malformed", 1, header
                )
            computed = format(
                zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x"
            )
            if computed != fields[3]:
                raise ProfileFormatError(
                    "checksum mismatch (stated {}, computed {}): "
                    "database is truncated or corrupted".format(fields[3], computed),
                    "corrupted",
                )
        elif version != 1:  # version 1 predates the checksum; still read it
            raise ProfileFormatError(
                "version skew: file is v{}, toolchain reads v{}".format(
                    version, PROFILEDB_VERSION
                ),
                "version-skew",
                1,
                header,
            )

        db = cls()
        for lineno, line in enumerate(payload.splitlines(), 2):
            if not line.strip():
                continue
            parts = line.split()
            kind = parts[0]
            try:
                if kind == "runs":
                    if len(parts) != 4 or parts[2] != "steps":
                        raise ProfileFormatError(
                            "expected 'runs <n> steps <n>'", "malformed", lineno, line
                        )
                    db.training_runs = int(parts[1])
                    db.training_steps = int(parts[3])
                elif kind == "block":
                    if len(parts) != 4:
                        raise ProfileFormatError(
                            "block line needs 'block <proc> <label> <count>'",
                            "malformed", lineno, line,
                        )
                    db.block_counts[(parts[1], parts[2])] = int(parts[3])
                elif kind == "site":
                    if len(parts) != 4:
                        raise ProfileFormatError(
                            "site line needs 'site <module> <id> <count>'",
                            "malformed", lineno, line,
                        )
                    db.site_counts[(parts[1], int(parts[2]))] = int(parts[3])
                else:
                    raise ProfileFormatError(
                        "unknown record kind {!r}".format(kind), "malformed",
                        lineno, line,
                    )
            except ValueError as exc:
                if isinstance(exc, ProfileFormatError):
                    raise
                raise ProfileFormatError(
                    "malformed integer field: {}".format(exc), "malformed",
                    lineno, line,
                ) from None
        return db

    # ------------------------------------------------------------------
    # Staleness (degradation ladder input)
    # ------------------------------------------------------------------

    def match_ratio(self, program: Program) -> float:
        """Fraction of recorded block keys that resolve in ``program``.

        The front end is deterministic, so a profile trained from the
        same sources matches ~1.0; a profile from different or heavily
        edited sources matches near 0.0.  The driver treats a
        low ratio as *stale* and degrades to static estimation.
        """
        if not self.block_counts:
            return 0.0
        live = {
            (proc.name, label)
            for proc in program.all_procs()
            for label in proc.blocks
        }
        hits = sum(1 for key in self.block_counts if key in live)
        return hits / len(self.block_counts)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_text())

    @classmethod
    def load(cls, path: str) -> "ProfileDatabase":
        with open(path) as handle:
            return cls.from_text(handle.read())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<ProfileDatabase {} blocks, {} sites, {} runs>".format(
            len(self.block_counts), len(self.site_counts), self.training_runs
        )
