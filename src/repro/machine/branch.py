"""Branch prediction model.

A PC-indexed table of two-bit saturating counters predicts conditional
branch direction.  Following the paper's observation that "the PA8000
always mispredicts procedure return branches", returns are charged a
misprediction unconditionally; direct calls and unconditional jumps
predict correctly; indirect calls mispredict (no BTB)."""

from __future__ import annotations

TAKEN_THRESHOLD = 2  # counter values 2,3 predict taken
INITIAL_COUNTER = 1  # weakly not-taken


class TwoBitPredictor:
    """Bimodal predictor over ``entries`` two-bit counters."""

    __slots__ = ("entries", "counters", "predictions", "mispredictions")

    def __init__(self, entries: int = 256):
        if entries <= 0 or entries & (entries - 1):
            raise ValueError("entries must be a positive power of two")
        self.entries = entries
        self.counters = [INITIAL_COUNTER] * entries
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc``, then train; returns correctness.

        Two branches mapping to the same slot collide, which is the
        effect the paper warns about: more static branches can raise
        "the rate of branch collision in a branch prediction cache".
        """
        index = (pc >> 2) % self.entries
        counter = self.counters[index]
        predicted_taken = counter >= TAKEN_THRESHOLD
        correct = predicted_taken == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken and counter < 3:
            self.counters[index] = counter + 1
        elif not taken and counter > 0:
            self.counters[index] = counter - 1
        return correct

    def force_mispredict(self) -> None:
        """Charge an unconditional misprediction (procedure returns)."""
        self.predictions += 1
        self.mispredictions += 1

    def force_correct(self) -> None:
        """Charge a correctly predicted control transfer."""
        self.predictions += 1

    @property
    def miss_rate(self) -> float:
        return self.mispredictions / self.predictions if self.predictions else 0.0
