"""Caches and branch prediction components."""

import pytest

from repro.machine import DirectMappedCache, TwoBitPredictor


class TestCache:
    def test_cold_miss_then_hit(self):
        cache = DirectMappedCache(1024, 32)
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.access(31)  # same line
        assert not cache.access(32)  # next line

    def test_conflict_eviction(self):
        cache = DirectMappedCache(1024, 32)  # 32 lines
        cache.access(0)
        cache.access(1024)  # maps to the same index, evicts
        assert not cache.access(0)

    def test_distinct_sets_coexist(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        cache.access(32)
        assert cache.access(0)
        assert cache.access(32)

    def test_miss_rate(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.25

    def test_reset(self):
        cache = DirectMappedCache(1024, 32)
        cache.access(0)
        cache.reset()
        assert cache.accesses == 0
        assert not cache.access(0)

    def test_capacity_behavior(self):
        # A working set larger than the cache always misses when swept.
        cache = DirectMappedCache(256, 32)  # 8 lines
        for _sweep in range(3):
            for addr in range(0, 512, 32):  # 16 lines
                cache.access(addr)
        assert cache.miss_rate == 1.0

    @pytest.mark.parametrize("size,line", [(0, 32), (100, 32), (128, 24), (-8, 8)])
    def test_invalid_geometry(self, size, line):
        with pytest.raises(ValueError):
            DirectMappedCache(size, line)


class TestPredictor:
    def test_learns_taken_loop(self):
        pred = TwoBitPredictor(16)
        outcomes = [pred.predict_and_update(0x100, True) for _ in range(10)]
        # Initial weakly-not-taken mispredicts once, then it learns.
        assert outcomes[0] is False
        assert all(outcomes[2:])

    def test_hysteresis_survives_one_exit(self):
        pred = TwoBitPredictor(16)
        for _ in range(5):
            pred.predict_and_update(0x100, True)
        pred.predict_and_update(0x100, False)  # loop exit: one miss
        assert pred.predict_and_update(0x100, True)  # still predicts taken

    def test_alternating_pattern_hurts(self):
        pred = TwoBitPredictor(16)
        correct = sum(
            pred.predict_and_update(0x40, i % 2 == 0) for i in range(20)
        )
        assert correct <= 10  # a bimodal predictor can't learn alternation

    def test_collision_between_branches(self):
        pred = TwoBitPredictor(2)  # tiny table: guaranteed collisions
        pred.predict_and_update(0x0, True)
        pred.predict_and_update(0x0, True)
        # A different branch mapping to the same counter inherits bias.
        assert pred.predict_and_update(0x8 * 2 * 4, True) in (True, False)
        assert pred.predictions == 3

    def test_forced_outcomes(self):
        pred = TwoBitPredictor(16)
        pred.force_mispredict()  # a return on the PA8000
        pred.force_correct()  # a direct call
        assert pred.predictions == 2
        assert pred.mispredictions == 1
        assert pred.miss_rate == 0.5

    def test_invalid_entries(self):
        with pytest.raises(ValueError):
            TwoBitPredictor(0)
        with pytest.raises(ValueError):
            TwoBitPredictor(100)
