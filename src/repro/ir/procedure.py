"""Procedures: named CFGs with parameters, attributes, and linkage.

Procedure names are unique program-wide.  The front end mangles
file-static functions to ``name@module`` so that the flat program symbol
table never collides; *linkage* records whether the symbol is visible
outside its module.  When HLO moves code between modules it may need to
flip a static's linkage to global ("promotion", Section 2.3).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .basicblock import BasicBlock
from .instructions import CALL_INSTRS, Alloca, Call, ICall, Instr
from .types import Signature, Type
from .values import Reg

# Linkage kinds.
LINK_GLOBAL = "global"  # visible to every module
LINK_STATIC = "static"  # file-scope; callable only from its own module
LINK_EXTERN = "extern"  # declared but defined outside the program

# Recognised procedure attributes.
ATTR_VARARGS = "varargs"
ATTR_NOINLINE = "noinline"  # user directive: never inline this callee
ATTR_ALWAYS_INLINE = "always_inline"  # user directive: inline when legal
ATTR_FP_REASSOC = "fp_reassoc"  # float reassociation permitted in this body
ATTR_NOCLONE = "noclone"  # user directive: never clone this callee

KNOWN_ATTRS = frozenset(
    [ATTR_VARARGS, ATTR_NOINLINE, ATTR_ALWAYS_INLINE, ATTR_FP_REASSOC, ATTR_NOCLONE]
)


class Procedure:
    """One procedure: an ordered mapping of labelled basic blocks."""

    def __init__(
        self,
        name: str,
        params: List[Tuple[str, Type]],
        ret_type: Type = Type.INT,
        module: str = "",
        linkage: str = LINK_GLOBAL,
        attrs: Optional[Set[str]] = None,
    ):
        self.name = name
        self.params = list(params)  # [(register name, type)]
        self.ret_type = ret_type
        self.module = module
        self.linkage = linkage
        self.attrs: Set[str] = set(attrs) if attrs else set()
        unknown = self.attrs - KNOWN_ATTRS
        if unknown:
            raise ValueError("unknown attrs: {}".format(sorted(unknown)))
        self.blocks: Dict[str, BasicBlock] = {}
        self.entry: Optional[str] = None
        self._reg_counter = itertools.count()
        self._label_counter = itertools.count()

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def signature(self) -> Signature:
        return Signature(
            tuple(ty for _, ty in self.params),
            self.ret_type,
            ATTR_VARARGS in self.attrs,
        )

    def param_regs(self) -> List[Reg]:
        return [Reg(name) for name, _ in self.params]

    def add_block(self, block: BasicBlock, entry: bool = False) -> BasicBlock:
        if block.label in self.blocks:
            raise ValueError("duplicate block label: {}".format(block.label))
        self.blocks[block.label] = block
        if entry or self.entry is None:
            self.entry = block.label
        return block

    def new_block(self, hint: str = "b") -> BasicBlock:
        return self.add_block(BasicBlock(self.new_label(hint)))

    def remove_block(self, label: str) -> None:
        if label == self.entry:
            raise ValueError("cannot remove entry block {}".format(label))
        del self.blocks[label]

    def entry_block(self) -> BasicBlock:
        if self.entry is None:
            raise ValueError("procedure {} has no entry block".format(self.name))
        return self.blocks[self.entry]

    def new_reg(self, hint: str = "t") -> Reg:
        """A register name unused anywhere in this procedure."""
        existing = self.reg_names()
        while True:
            name = "{}{}".format(hint, next(self._reg_counter))
            if name not in existing:
                return Reg(name)

    def new_label(self, hint: str = "b") -> str:
        while True:
            label = "{}{}".format(hint, next(self._label_counter))
            if label not in self.blocks:
                return label

    def reg_names(self) -> Set[str]:
        names = {name for name, _ in self.params}
        for instr in self.instructions():
            if instr.dest is not None:
                names.add(instr.dest.name)
        return names

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------

    def instructions(self) -> Iterator[Instr]:
        for block in self.blocks.values():
            for instr in block:
                yield instr

    def size(self) -> int:
        """Instruction count — the size metric in HLO's cost model."""
        return sum(len(b) for b in self.blocks.values())

    def call_sites(self) -> List[Tuple[BasicBlock, int, Instr]]:
        """All (block, index, call instruction) triples, direct and indirect."""
        sites = []
        for block in self.blocks.values():
            for idx, instr in enumerate(block.instrs):
                if isinstance(instr, CALL_INSTRS):
                    sites.append((block, idx, instr))
        return sites

    def direct_callees(self) -> List[str]:
        return [
            instr.callee
            for _, _, instr in self.call_sites()
            if isinstance(instr, Call)
        ]

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {label: [] for label in self.blocks}
        for label, block in self.blocks.items():
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(label)
        return preds

    def reachable_labels(self) -> Set[str]:
        if self.entry is None:
            return set()
        seen: Set[str] = set()
        work = [self.entry]
        while work:
            label = work.pop()
            if label in seen or label not in self.blocks:
                continue
            seen.add(label)
            work.extend(self.blocks[label].successors())
        return seen

    def rpo_labels(self) -> List[str]:
        """Reachable block labels in reverse postorder from the entry."""
        seen: Set[str] = set()
        order: List[str] = []

        def visit(label: str) -> None:
            stack = [(label, iter(self.blocks[label].successors()))]
            seen.add(label)
            while stack:
                cur, succs = stack[-1]
                advanced = False
                for succ in succs:
                    if succ in self.blocks and succ not in seen:
                        seen.add(succ)
                        stack.append((succ, iter(self.blocks[succ].successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(cur)
                    stack.pop()

        if self.entry is not None:
            visit(self.entry)
        order.reverse()
        return order

    @property
    def uses_dynamic_alloca(self) -> bool:
        return any(
            isinstance(i, Alloca) and i.is_dynamic for i in self.instructions()
        )

    def has_indirect_calls(self) -> bool:
        return any(isinstance(i, ICall) for i in self.instructions())

    def __str__(self) -> str:
        params = ", ".join("%{}: {}".format(n, t) for n, t in self.params)
        attrs = " [{}]".format(", ".join(sorted(self.attrs))) if self.attrs else ""
        head = "proc @{}({}) -> {} {}{}".format(
            self.name, params, self.ret_type, self.linkage, attrs
        )
        labels = self.rpo_labels()
        rest = [l for l in self.blocks if l not in set(labels)]
        body = "\n".join(str(self.blocks[l]) for l in labels + rest)
        return "{} {{\n{}\n}}".format(head, body)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Procedure @{} ({} blocks, {} instrs)>".format(
            self.name, len(self.blocks), self.size()
        )
