"""Frequency estimation: static heuristics, profile data, entry counts."""

from repro.analysis import (
    CallGraph,
    block_freqs,
    entry_counts,
    profile_block_freqs,
    site_weight,
    static_block_freqs,
)
from repro.frontend import compile_module, compile_program


def proc_of(source, name="f"):
    return compile_module(source, "m").procs[name]


class TestStaticFreqs:
    def test_entry_is_one(self):
        proc = proc_of("int f() { return 0; }")
        assert static_block_freqs(proc)[proc.entry] == 1.0

    def test_loop_body_hotter_than_entry(self):
        proc = proc_of("int f(int n) { int s = 0; while (n) { s++; n--; } return s; }")
        freqs = static_block_freqs(proc)
        body = [l for l in proc.blocks if l.startswith("while.body")][0]
        assert freqs[body] > freqs[proc.entry]

    def test_nested_loops_multiply(self):
        proc = proc_of(
            "int f(int n) { int s=0; for (int i=0;i<n;i++) for (int j=0;j<n;j++) s++; return s; }"
        )
        freqs = static_block_freqs(proc)
        assert max(freqs.values()) >= 100.0  # two levels of 10x

    def test_branch_arm_colder_than_entry(self):
        proc = proc_of("int f(int x) { if (x) return 1; return 0; }")
        freqs = static_block_freqs(proc)
        then_block = [l for l in proc.blocks if l.startswith("if.then")][0]
        assert freqs[then_block] < 1.0


class TestProfileFreqs:
    def test_none_without_annotation(self):
        proc = proc_of("int f() { return 0; }")
        assert profile_block_freqs(proc) is None

    def test_measured_ratios(self):
        proc = proc_of("int f(int x) { if (x) return 1; return 0; }")
        proc.blocks[proc.entry].profile_count = 10
        then_block = [l for l in proc.blocks if l.startswith("if.then")][0]
        proc.blocks[then_block].profile_count = 3
        freqs = profile_block_freqs(proc)
        assert freqs[proc.entry] == 1.0
        assert freqs[then_block] == 0.3

    def test_block_freqs_prefers_profile(self):
        proc = proc_of("int f(int x) { if (x) return 1; return 0; }")
        proc.blocks[proc.entry].profile_count = 10
        assert block_freqs(proc, use_profile=True)[proc.entry] == 1.0
        static = block_freqs(proc, use_profile=False)
        assert static[proc.entry] == 1.0  # same value, different path


class TestEntryCounts:
    SOURCES = [
        (
            "m",
            """
            int leaf(int x) { return x + 1; }
            int mid(int x) { int s = 0; for (int i = 0; i < 4; i++) s += leaf(i); return s; }
            int main() { return mid(1); }
            """,
        )
    ]

    def test_static_propagation(self):
        program = compile_program(self.SOURCES)
        graph = CallGraph(program)
        counts = entry_counts(program, graph)
        assert counts["main"] == 1.0
        assert counts["mid"] >= 0.5
        # leaf is called from a loop in mid: much hotter.
        assert counts["leaf"] > counts["mid"]

    def test_measured_site_counts_win(self):
        program = compile_program(self.SOURCES)
        graph = CallGraph(program)
        leaf_site = next(s for s in graph.sites if s.callee and s.callee.name == "leaf")
        counts = entry_counts(program, graph, {leaf_site.key: 400})
        assert counts["leaf"] == 400.0

    def test_site_weight_uses_measurement(self):
        program = compile_program(self.SOURCES)
        graph = CallGraph(program)
        site = next(s for s in graph.sites if s.callee and s.callee.name == "leaf")
        entry = entry_counts(program, graph, {site.key: 400})
        assert site_weight(site, entry, {site.key: 400}) == 400.0
        # Without profile permission, the estimate path is used instead.
        est = site_weight(site, entry, {site.key: 400}, use_profile=False)
        assert est != 400.0
