"""Semantic analysis: module symbol tables and declaration checking.

Collects every function and global declared in a translation unit,
mangles file statics to program-unique IR names (``name$module`` — the
IR uses a flat namespace, and this mangling is what HLO's promotion
machinery later renames when static code moves across modules), checks
redefinitions and prototype agreement, and registers the runtime
builtins so calls to them type-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..ir.procedure import (
    ATTR_ALWAYS_INLINE,
    ATTR_FP_REASSOC,
    ATTR_NOCLONE,
    ATTR_NOINLINE,
)
from ..ir.program import RUNTIME_BUILTINS
from ..ir.types import Signature, Type
from . import ast
from .errors import CompileError

_QUAL_TO_ATTR = {
    "inline": ATTR_ALWAYS_INLINE,
    "noinline": ATTR_NOINLINE,
    "noclone": ATTR_NOCLONE,
    "reassoc": ATTR_FP_REASSOC,
}

# ``alloca`` is a special form lowered to the Alloca instruction, not a
# call; it appears in the function table so name resolution finds it.
ALLOCA_NAME = "alloca"


@dataclass
class FuncInfo:
    source_name: str
    ir_name: str
    sig: Signature
    attrs: Tuple[str, ...]
    static: bool
    defined: bool
    builtin: bool = False
    line: int = 0


@dataclass
class GlobalInfo:
    source_name: str
    ir_name: str
    type: Type
    array_size: Optional[int]  # None: scalar
    static: bool
    extern: bool
    line: int = 0

    @property
    def is_array(self) -> bool:
        return self.array_size is not None


class ModuleSymbols:
    """Symbol tables for one translation unit."""

    def __init__(self, module_name: str):
        self.module_name = module_name
        self.funcs: Dict[str, FuncInfo] = {}
        self.globals: Dict[str, GlobalInfo] = {}
        for name, sig in RUNTIME_BUILTINS.items():
            self.funcs[name] = FuncInfo(name, name, sig, (), False, False, builtin=True)
        self.funcs[ALLOCA_NAME] = FuncInfo(
            ALLOCA_NAME, ALLOCA_NAME, Signature((Type.INT,), Type.INT), (), False, False,
            builtin=True,
        )

    def mangle(self, name: str, static: bool) -> str:
        if static:
            return "{}${}".format(name, self.module_name)
        return name

    def lookup_func(self, name: str) -> Optional[FuncInfo]:
        return self.funcs.get(name)

    def lookup_global(self, name: str) -> Optional[GlobalInfo]:
        return self.globals.get(name)


def analyze_unit(unit: ast.TranslationUnit, module_name: str) -> ModuleSymbols:
    """Build and check the symbol tables for ``unit``."""
    syms = ModuleSymbols(module_name)

    for decl in unit.decls:
        if isinstance(decl, ast.FuncDef):
            _declare_func(syms, decl, module_name)
        else:
            _declare_global(syms, decl, module_name)

    # A second look: every *defined* function must not collide with a
    # global, and vice versa.
    for name in syms.funcs:
        if name in syms.globals:
            info = syms.funcs[name]
            raise CompileError(
                "{!r} declared as both function and variable".format(name),
                info.line,
                module_name,
            )
    return syms


def _declare_func(syms: ModuleSymbols, decl: ast.FuncDef, module_name: str) -> None:
    existing = syms.funcs.get(decl.name)
    if existing is not None and existing.builtin:
        raise CompileError(
            "cannot redeclare builtin {!r}".format(decl.name), decl.line, module_name
        )

    static = "static" in decl.quals
    attrs = tuple(sorted({_QUAL_TO_ATTR[q] for q in decl.quals if q in _QUAL_TO_ATTR}))
    if ATTR_NOINLINE in attrs and ATTR_ALWAYS_INLINE in attrs:
        raise CompileError(
            "{!r} is both inline and noinline".format(decl.name), decl.line, module_name
        )
    sig = Signature(
        tuple(p.type for p in decl.params), decl.ret_type, decl.varargs
    )

    if existing is not None:
        if existing.sig != sig:
            raise CompileError(
                "conflicting declarations of {!r}: {} vs {}".format(
                    decl.name, existing.sig, sig
                ),
                decl.line,
                module_name,
            )
        if decl.is_proto:
            return
        if existing.defined:
            raise CompileError(
                "redefinition of {!r}".format(decl.name), decl.line, module_name
            )
        if existing.static != static:
            raise CompileError(
                "static/extern mismatch for {!r}".format(decl.name),
                decl.line,
                module_name,
            )
        existing.defined = True
        existing.attrs = tuple(sorted(set(existing.attrs) | set(attrs)))
        return

    syms.funcs[decl.name] = FuncInfo(
        decl.name,
        syms.mangle(decl.name, static),
        sig,
        attrs,
        static,
        defined=not decl.is_proto,
        line=decl.line,
    )


def _declare_global(syms: ModuleSymbols, decl: ast.GlobalDecl, module_name: str) -> None:
    existing = syms.globals.get(decl.name)
    if decl.name in syms.funcs and not syms.funcs[decl.name].builtin:
        raise CompileError(
            "{!r} declared as both function and variable".format(decl.name),
            decl.line,
            module_name,
        )
    if existing is not None:
        # Allow an extern declaration to coexist with a definition.
        if existing.extern and not decl.extern:
            syms.globals[decl.name] = _global_info(syms, decl)
            return
        if decl.extern:
            return
        raise CompileError(
            "redefinition of global {!r}".format(decl.name), decl.line, module_name
        )
    syms.globals[decl.name] = _global_info(syms, decl)


def _global_info(syms: ModuleSymbols, decl: ast.GlobalDecl) -> GlobalInfo:
    return GlobalInfo(
        decl.name,
        syms.mangle(decl.name, decl.static),
        decl.type,
        decl.array_size,
        decl.static,
        decl.extern,
        decl.line,
    )
