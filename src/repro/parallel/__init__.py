"""Parallel + incremental compilation: the build-latency subsystem.

Three cooperating pieces (docs/performance.md):

- :mod:`repro.parallel.executor` — per-module compile jobs fanned out
  over a process pool, merged deterministically;
- :mod:`repro.parallel.cache` — a content-addressed store of compiled
  isoms keyed on (source, config fingerprint, format version);
- :mod:`repro.parallel.scheduler` — profile-weight-aware job ordering
  (heaviest modules first).
"""

from .cache import CACHE_FORMAT_VERSION, CacheStats, ModuleCache
from .executor import (
    DEFAULT_MAX_TASKS_PER_CHILD,
    CompileStats,
    MapOutcome,
    PersistentPool,
    compile_sources,
    default_jobs,
    parallel_map,
)
from .scheduler import heaviest_first, module_weights

__all__ = [
    "CACHE_FORMAT_VERSION",
    "DEFAULT_MAX_TASKS_PER_CHILD",
    "CacheStats",
    "CompileStats",
    "MapOutcome",
    "ModuleCache",
    "PersistentPool",
    "compile_sources",
    "default_jobs",
    "heaviest_first",
    "module_weights",
    "parallel_map",
]
