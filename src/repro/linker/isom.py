"""Isom files: object files that still contain intermediate code.

Section 2.1: "An alternative compile path allows the ucode to be stored
into special object files known as isoms.  These files remain
unoptimized until link time.  When the linker is invoked and discovers
isoms, it passes them en masse to HLO..."  Our isoms are the textual IR
serialization; this module writes, reads, and sniffs them.

On-disk isoms carry a one-line versioned header with a CRC-32 of the
payload::

    isom 1 crc32 9f3a01c2
    module "lib"
    ...

``from_isom_text``/``read_isom`` verify the header and raise a typed
:class:`~repro.resilience.IsomError` on truncation, corruption, or
version skew — the signal :class:`~repro.linker.toolchain.Toolchain`
uses to degrade that module to module-at-a-time compilation instead of
aborting the build.  Headerless payloads (the pre-versioning format)
are still accepted.
"""

from __future__ import annotations

import os
import zlib
from typing import Iterable, List

from ..ir.module import Module
from ..ir.parser import ParseError, parse_module
from ..ir.printer import print_module
from ..resilience.errors import IsomError

ISOM_EXTENSION = ".isom"
ISOM_VERSION = 1
_MAGIC = "module "
_HEADER_MAGIC = "isom"


def _checksum(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def to_isom_text(module: Module) -> str:
    """Serialize one module to isom text (versioned, checksummed)."""
    payload = print_module(module)
    return "{} {} crc32 {}\n{}".format(
        _HEADER_MAGIC, ISOM_VERSION, _checksum(payload), payload
    )


def from_isom_text(text: str, path: str = "") -> Module:
    """Reconstruct a module from isom text, verifying the header.

    Raises :class:`IsomError` (kinds ``not-isom``, ``version-skew``,
    ``truncated``/``corrupted``, ``malformed``) instead of leaking bare
    parser crashes.  Headerless legacy text is parsed directly.
    """
    stripped = text.lstrip("\n")
    if stripped.startswith(_HEADER_MAGIC + " "):
        header, _, payload = stripped.partition("\n")
        fields = header.split()
        if len(fields) != 4 or fields[2] != "crc32":
            raise IsomError(
                "malformed isom header: {!r}".format(header), "malformed", path
            )
        try:
            version = int(fields[1])
        except ValueError:
            raise IsomError(
                "malformed isom version: {!r}".format(fields[1]), "malformed", path
            ) from None
        if version != ISOM_VERSION:
            raise IsomError(
                "isom version skew: file is v{}, toolchain reads v{}".format(
                    version, ISOM_VERSION
                ),
                "version-skew",
                path,
            )
        if _checksum(payload) != fields[3]:
            raise IsomError(
                "isom checksum mismatch (stated {}, computed {}): "
                "file is truncated or corrupted".format(fields[3], _checksum(payload)),
                "corrupted",
                path,
            )
    elif stripped.startswith(_MAGIC):
        payload = stripped  # legacy headerless isom
    else:
        raise IsomError("not an isom (no isom/module header)", "not-isom", path)
    try:
        return parse_module(payload)
    except ParseError as exc:
        raise IsomError(
            "unparseable isom payload: {}".format(exc), "malformed", path
        ) from exc


def is_isom_text(text: str) -> bool:
    """Cheap sniff used by the linker to spot isoms among objects."""
    for line in text.splitlines():
        if line.strip():
            return line.startswith(_MAGIC) or line.startswith(_HEADER_MAGIC + " ")
    return False


def write_isom(module: Module, directory: str) -> str:
    """Write ``module`` to ``<directory>/<name>.isom``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, module.name + ISOM_EXTENSION)
    with open(path, "w") as handle:
        handle.write(to_isom_text(module))
    return path


def read_isom(path: str) -> Module:
    with open(path) as handle:
        return from_isom_text(handle.read(), path=path)


def read_isoms(paths: Iterable[str]) -> List[Module]:
    return [read_isom(path) for path in paths]


def roundtrip_modules(modules: Iterable[Module]) -> List[Module]:
    """Serialize and re-parse modules (the in-memory isom path).

    The cross-module build pipeline routes every module through isom
    text even when nothing touches disk; this keeps the on-disk and
    in-memory paths byte-identical and continuously exercises the
    printer/parser round-trip.
    """
    return [from_isom_text(to_isom_text(m)) for m in modules]
