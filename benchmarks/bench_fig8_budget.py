"""Figure 8: incremental benefit of inlines/clones at various budgets.

Paper: compile 022.li at budgets 25..1000, artificially stopping the
inliner after N transforms; plot run time against N.  The claims the
figure supports:

- "very few inlines or clones have an adverse impact on performance"
  (the curves fall essentially monotonically);
- "once the budget has reached a sufficiently large value, there is no
  additional performance increase with extra inlining" (the curves
  flatten — performance reaches an asymptote with increasing budget).

Our routines are one to two orders of magnitude smaller than SPEC's, so
under the quadratic cost model the knee sits at a higher percentage and
varies by workload shape: ``li`` (recursion-dominated, the paper's
subject) keeps improving slowly far past 1000% because each budget
doubling buys another level of recursion unrolling, while ``compress``
(loop-dominated) hits a hard asymptote at ~400%.  We measure both: li
carries the few-adverse-steps claim, compress the asymptote claim.
"""

from __future__ import annotations

from repro.bench import fig8_budget_curves, format_table
from repro.bench.plots import ascii_curves

BUDGETS = (25.0, 100.0, 200.0, 400.0, 1000.0)


def test_fig8_li_monotone_benefit(benchmark, archive):
    headers, rows, series = benchmark.pedantic(
        fig8_budget_curves,
        kwargs={"workload": "li", "budgets": BUDGETS, "max_points": 8},
        rounds=1,
        iterations=1,
    )
    text = format_table(headers, rows, "Figure 8: run cycles vs transforms (li)")
    text += "\n\n" + ascii_curves(series)
    archive("fig8_budget_li", text)

    for budget, curve in series.items():
        start = curve[0][1]
        end = curve[-1][1]
        # Very few adverse steps: no point on the curve is meaningfully
        # above the start, and the endpoint is at or below it.
        assert end <= start * 1.02, budget
        assert all(c <= start * 1.05 for _n, c in curve), budget
    # Larger budgets reach lower endpoints on this recursive workload.
    finals = {b: c[-1][1] for b, c in series.items()}
    assert finals[1000.0] < finals[25.0]
    assert finals[400.0] <= finals[100.0] * 1.02

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]


def test_fig8_compress_asymptote(benchmark, archive):
    headers, rows, series = benchmark.pedantic(
        fig8_budget_curves,
        kwargs={"workload": "compress", "budgets": BUDGETS, "max_points": 6},
        rounds=1,
        iterations=1,
    )
    text = format_table(
        headers, rows, "Figure 8 (asymptote): run cycles vs transforms (compress)"
    )
    text += "\n\n" + ascii_curves(series)
    archive("fig8_budget_compress", text)

    finals = {b: c[-1][1] for b, c in series.items()}
    # The knee: going from 25 to 400 helps a lot ...
    assert finals[400.0] < finals[25.0] * 0.9
    # ... but past the knee extra budget buys nothing (the asymptote).
    assert abs(finals[1000.0] - finals[400.0]) <= finals[400.0] * 0.02

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]
