"""Constant propagation: folding, branch collapse, devirtualization."""

from repro.frontend import compile_module
from repro.interp import run_program
from repro.ir import Branch, Call, ICall, Imm, Jump, Mov, Program
from repro.opt import constant_propagation, simplify_cfg

from ..conftest import single_proc_program


def optimize(program):
    for proc in program.all_procs():
        for _ in range(4):
            changed = constant_propagation(program, proc)
            changed |= simplify_cfg(program, proc)
            if not changed:
                break
    return program


def instrs_of(program, name="main"):
    return list(program.proc(name).instructions())


class TestFolding:
    def test_arith_chain_folds(self):
        def body(b):
            x = b.mov(7)
            y = b.add(x, 3)
            z = b.mul(y, 2)
            b.ret(z)

        program = optimize(single_proc_program(body))
        ret = program.proc("main").entry_block().terminator
        assert ret.value == Imm(20)

    def test_division_by_zero_not_folded(self):
        def body(b):
            z = b.div(10, 0)
            b.ret(z)

        program = optimize(single_proc_program(body))
        ops = [i for i in instrs_of(program) if getattr(i, "op", None) == "div"]
        assert ops, "trapping division must be preserved"

    def test_constant_branch_becomes_jump(self):
        def body(b):
            t = b.lt(1, 2)
            yes, no = b.new_block(), b.new_block()
            b.branch(t, yes, no)
            b.set_block(yes)
            b.ret(1)
            b.set_block(no)
            b.ret(0)

        program = optimize(single_proc_program(body))
        assert not any(isinstance(i, Branch) for i in instrs_of(program))
        assert run_program(program).exit_code == 1

    def test_state_merges_to_nac(self):
        def body(b):
            x = b.reg("x")
            yes, no, join = b.new_block(), b.new_block(), b.new_block()
            c = b.call("input", [0])
            b.branch(c, yes, no)
            b.set_block(yes)
            b.mov(1, x)
            b.jump(join)
            b.set_block(no)
            b.mov(2, x)
            b.jump(join)
            b.set_block(join)
            b.ret(b.add(x, 0))

        program = optimize(single_proc_program(body))
        # x is 1 or 2 depending on input: must not fold to a constant.
        assert run_program(program, [0]).exit_code == 2
        assert run_program(program, [1]).exit_code == 1

    def test_same_constant_on_both_paths_folds(self):
        def body(b):
            x = b.reg("x")
            yes, no, join = b.new_block(), b.new_block(), b.new_block()
            c = b.call("input", [0])
            b.branch(c, yes, no)
            b.set_block(yes)
            b.mov(5, x)
            b.jump(join)
            b.set_block(no)
            b.mov(5, x)
            b.jump(join)
            b.set_block(join)
            b.ret(x)

        program = optimize(single_proc_program(body))
        ret = [i for i in instrs_of(program) if i.is_terminator and hasattr(i, "value")]
        assert any(getattr(r, "value", None) == Imm(5) for r in ret)

    def test_funcref_comparison_folds(self):
        mod = compile_module(
            """
            int f(int x) { return x; }
            int main() {
              int a = &f;
              if (a == &f) return 1;
              return 0;
            }
            """,
            "m",
        )
        program = optimize(Program([mod]))
        assert run_program(program).exit_code == 1


class TestDevirtualization:
    def test_constant_icall_becomes_direct(self):
        mod = compile_module(
            """
            int target(int x) { return x + 1; }
            int main() {
              int f = &target;
              return f(41);
            }
            """,
            "m",
        )
        program = Program([mod])
        before = sum(isinstance(i, ICall) for i in instrs_of(program))
        assert before == 1
        optimize(program)
        assert sum(isinstance(i, ICall) for i in instrs_of(program)) == 0
        assert any(
            isinstance(i, Call) and i.callee == "target" for i in instrs_of(program)
        )
        assert run_program(program).exit_code == 42

    def test_site_id_survives_devirtualization(self):
        mod = compile_module(
            """
            int target(int x) { return x; }
            int main() { int f = &target; return f(1); }
            """,
            "m",
        )
        program = Program([mod])
        original = [i.site_id for i in instrs_of(program) if isinstance(i, ICall)]
        optimize(program)
        direct = [
            i.site_id
            for i in instrs_of(program)
            if isinstance(i, Call) and i.callee == "target"
        ]
        assert direct == original
