"""Dominator computation (iterative Cooper–Harvey–Kennedy).

Used by the loop finder, which in turn feeds the static frequency
heuristics the inliner falls back to when no profile is present.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.procedure import Procedure


def immediate_dominators(proc: Procedure) -> Dict[str, Optional[str]]:
    """Map each reachable block label to its immediate dominator.

    The entry maps to ``None``.  Unreachable blocks are absent.
    """
    rpo = proc.rpo_labels()
    if not rpo:
        return {}
    order_index = {label: i for i, label in enumerate(rpo)}
    preds = proc.predecessors()
    idom: Dict[str, Optional[str]] = {rpo[0]: rpo[0]}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while order_index[a] > order_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_index[b] > order_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            candidates = [p for p in preds[label] if p in idom and p in order_index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {}
    for label in rpo:
        if label == rpo[0]:
            result[label] = None
        elif label in idom:
            result[label] = idom[label]
    return result


def dominates(idom: Dict[str, Optional[str]], a: str, b: str) -> bool:
    """True when block ``a`` dominates block ``b`` (reflexive)."""
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


def dominator_tree_children(idom: Dict[str, Optional[str]]) -> Dict[str, List[str]]:
    children: Dict[str, List[str]] = {label: [] for label in idom}
    for label, parent in idom.items():
        if parent is not None:
            children[parent].append(label)
    return children


def control_equivalent_classes(proc: Procedure) -> List[List[str]]:
    """Partition reachable blocks into control-equivalence classes.

    Blocks ``a`` and ``b`` are control equivalent when they sit in the
    same innermost loop (or both in none) and ``a`` dominates ``b``
    while ``b`` postdominates ``a`` (or the other way around): every
    terminating execution reaches both the same number of times, so
    their true execution counts are provably equal.  The same-loop
    restriction is load-bearing — a loop *header* is dominated by the
    procedure entry and postdominates it, yet runs once per iteration,
    so dominance alone would merge blocks whose counts differ by the
    trip count.  The sampled profiler uses the partition to pool
    sample evidence across a class: counts a basic-block-counting
    instrumentation would measure as identical must not diverge
    through sampling noise, because downstream consumers compare them
    (the inliner's cold-path penalty triggers on
    ``count(site block) < count(entry)``).

    Classes are returned in reverse-post-order of their first member;
    members keep RPO order.  A procedure with no exit block (an
    infinite loop) degenerates to singleton classes — postdominance is
    undefined without an exit, and such procedures never terminate a
    training run normally anyway.
    """
    rpo = proc.rpo_labels()
    if not rpo:
        return []
    labels = set(rpo)
    succs: Dict[str, List[str]] = {
        label: sorted(
            {s for s in proc.blocks[label].successors() if s in labels}
        )
        for label in rpo
    }
    preds: Dict[str, List[str]] = {label: [] for label in rpo}
    for label, targets in succs.items():
        for target in targets:
            preds[target].append(label)

    def solve(order: List[str], incoming: Dict[str, List[str]], roots: set):
        """Iterative all-(post)dominators: sets, not trees — the graphs
        here are a handful of blocks, clarity beats the fast algorithm."""
        sets = {
            label: ({label} if label in roots else set(order))
            for label in order
        }
        changed = True
        while changed:
            changed = False
            for label in order:
                if label in roots:
                    continue
                flows = [sets[p] for p in incoming[label]]
                new = (set.intersection(*flows) if flows else set())
                new.add(label)
                if new != sets[label]:
                    sets[label] = new
                    changed = True
        return sets

    exits = {label for label in rpo if not succs[label]}
    if not exits:
        return [[label] for label in rpo]
    dom = solve(rpo, preds, {rpo[0]})
    # Seeding every exit as its own root is the virtual-exit
    # formulation of postdominance for multi-exit procedures.
    pdom = solve(list(reversed(rpo)), succs, exits)

    # Innermost-loop membership: the header of the smallest natural
    # loop containing each block (None outside any loop).
    from .loops import find_loops

    innermost: Dict[str, Optional[str]] = {label: None for label in rpo}
    smallest: Dict[str, int] = {}
    for loop in find_loops(proc):
        for label in loop.body:
            if label in innermost and (
                label not in smallest or len(loop.body) < smallest[label]
            ):
                innermost[label] = loop.header
                smallest[label] = len(loop.body)

    parent = {label: label for label in rpo}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for i, a in enumerate(rpo):
        for b in rpo[i + 1:]:
            if innermost[a] != innermost[b]:
                continue
            equivalent = (a in dom[b] and b in pdom[a]) or (
                b in dom[a] and a in pdom[b]
            )
            if equivalent and find(a) != find(b):
                parent[find(b)] = find(a)

    grouped: Dict[str, List[str]] = {}
    for label in rpo:
        grouped.setdefault(find(label), []).append(label)
    return list(grouped.values())
