"""Tests for the sampling profiler and profile lifecycle subsystem."""
