"""Per-procedure source fingerprints for staleness detection.

"From Profiling to Optimization" identifies profile *staleness* — a
profile trained against yesterday's sources applied to today's — as the
dominant production failure mode of deployed PGO.  The whole-database
``match_ratio`` catches the catastrophic case (nothing matches), but a
real edit usually touches a handful of procedures and leaves the rest
byte-identical; dropping the entire database over one edited routine
throws away almost-entirely-fresh data.

A *fingerprint* is a short digest of one procedure's printed IR.  The
front end is deterministic, so recompiling unchanged source reproduces
the identical IR text and therefore the identical fingerprint, while
any edit that changes the procedure's shape changes it.  The profile
database records one fingerprint per procedure at training time; the
lifecycle layer (:mod:`repro.sampling.lifecycle`) compares them against
a fresh compile to classify each procedure as *fresh*, *remapped*
(label-level salvage of a changed body), or *missing*.
"""

from __future__ import annotations

import hashlib
from typing import Dict

from ..ir.printer import print_proc
from ..ir.procedure import Procedure
from ..ir.program import Program

FINGERPRINT_HEX_DIGITS = 12


def fingerprint_procedure(proc: Procedure) -> str:
    """A stable short digest of one procedure's IR shape."""
    digest = hashlib.sha256(print_proc(proc).encode("utf-8"))
    return digest.hexdigest()[:FINGERPRINT_HEX_DIGITS]


def fingerprint_program(program: Program) -> Dict[str, str]:
    """Fingerprints for every procedure, keyed by procedure name."""
    return {proc.name: fingerprint_procedure(proc) for proc in program.all_procs()}
