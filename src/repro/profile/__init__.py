"""Profile-based optimization support: instrumentation, database, PGO."""

from .annotate import annotate_program, clear_annotations
from .database import ProfileDatabase
from .instrument import ProbeMap, instrument_program, strip_probes
from .pgo import train

__all__ = [
    "ProbeMap",
    "ProfileDatabase",
    "annotate_program",
    "clear_annotations",
    "instrument_program",
    "strip_probes",
    "train",
]
