"""Golden outputs for every workload on both input sets.

These pin the workloads' observable behaviour: any change to a
workload's source, the front end, or the interpreter that alters a
checksum shows up here first.  (If a change is *intentional*, regen
with the snippet in this file's docstring history — but remember the
EXPERIMENTS.md numbers are tied to these programs.)
"""

import pytest

from repro.interp import run_program
from repro.workloads import get_workload

GOLDEN = {
    "compress": {
        "train": (62, (256, 295223)),
        "ref": (57, (833, 71270)),
    },
    "eqntott": {
        "train": (19, (341168, 32)),
        "ref": (4, (632250, 128)),
    },
    "espresso": {
        "train": (41, (526, 209)),
        "ref": (82, (1052, 393)),
    },
    "go": {
        "train": (53, (344,)),
        "ref": (71, (750,)),
    },
    "ijpeg": {
        "train": (55, (83281,)),
        "ref": (45, (247298,)),
    },
    "li": {
        "train": (6, (19212, 206, 155, 738695)),
        "ref": (63, (146824, 744, 504, 103203)),
    },
    "m88ksim": {
        "train": (39, (1300, 20, 863, 863)),
        "ref": (74, (5700, 60, 3543, 3543)),
    },
    "perl": {
        "train": (9, (9, 3708)),
        "ref": (45, (45, 16470)),
    },
    "sc": {
        "train": (48, (79200,)),
        "ref": (23, (48911,)),
    },
    "vortex": {
        "train": (3, (157725, 63, 0)),
        "ref": (74, (665397, 169, 0)),
    },
}


@pytest.mark.parametrize("name", sorted(GOLDEN))
class TestGoldenOutputs:
    def test_train_behavior(self, name):
        w = get_workload(name)
        result = run_program(w.compile(), w.train_inputs[0], max_steps=4_000_000)
        assert result.behavior() == GOLDEN[name]["train"]

    def test_ref_behavior(self, name):
        w = get_workload(name)
        result = run_program(w.compile(), w.ref_input, max_steps=4_000_000)
        assert result.behavior() == GOLDEN[name]["ref"]
