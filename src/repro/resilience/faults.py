"""Deterministic fault injection for the resilience test matrix.

Every recovery path in the degradation ladder must be *provably* live —
a fallback that is never exercised is a fallback that has silently
rotted.  The injector manufactures the four failure classes the ladder
handles, all driven by one seeded :class:`random.Random` so a failing
test reproduces from its seed:

- a pass that raises (:func:`FaultInjector.failing_pass`);
- a pass that mutates IR into something the verifier rejects
  (:func:`FaultInjector.corrupting_pass`);
- truncated / garbled isom text (:func:`FaultInjector.corrupt_text`);
- garbled profile-database lines (same entry point), including the
  profiledb **v3** record kinds (``sampling``/``obs``/``ctx``/``fp``)
  whose ``v3-*`` modes re-frame the header checksum so the malformed
  record reaches the record parser rather than the CRC gate;
- the continuous-profiling loop's failure matrix (:mod:`repro.fleet`):
  shard transit faults (drop / corrupt / truncate / duplicate / delay),
  a poisoned source that frames garbage payloads correctly, WAL-tail
  corruption, a crash in the middle of a fleet-wide hot swap, an
  injected canary trap, and a flapping instance.

Wired into :class:`~repro.linker.toolchain.Toolchain` via its
``fault_injector`` hook, which calls :meth:`corrupt_isom` /
:meth:`corrupt_profile` at the exact points real corruption would
enter: between serialization and parse.  The fleet loop threads the
same injector through its transport, collector, and controller seams.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence

from ..ir.instructions import Jump
from ..ir.procedure import Procedure
from ..ir.program import Program
from .errors import InjectedFault

CORRUPTION_MODES = (
    "truncate", "garble", "bitflip-checksum", "version-skew",
    "v3-sampling", "v3-obs", "v3-ctx", "v3-fp",
)

# Transit faults the shard transport can suffer (docs/resilience.md).
SHARD_FAULTS = ("drop", "corrupt", "truncate", "duplicate", "delay")

# The v3-* corruption modes target one record kind each.  When the
# database carries no such record (an exact profile, say) the injector
# appends a malformed record of that kind instead — the fault must
# actually fire, every time, from any seed.
_V3_RECORD_MODES = {
    "v3-sampling": "sampling",
    "v3-obs": "obs",
    "v3-ctx": "ctx",
    "v3-fp": "fp",
}
_MALFORMED_RECORDS = {
    "sampling": "sampling rate 1.0 depth",  # arity: keywords cut short
    "obs": "obs __injected entry not-a-count",  # integer parse fails
    "ctx": "ctx __injected entry",  # context column missing
    "fp": "fp __injected",  # digest missing
}


class FaultInjector:
    """Seeded source of deterministic faults.

    ``crash_pass`` / ``corrupt_pass`` name a scalar pass to sabotage
    (see :meth:`wrap_pipeline`); ``isom_modules`` lists module names
    whose isom text to corrupt; ``corrupt_profile_db`` garbles the
    profile database text.  ``mode`` picks the text-corruption flavour.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_pass: Optional[str] = None,
        corrupt_pass: Optional[str] = None,
        isom_modules: Sequence[str] = (),
        corrupt_profile_db: bool = False,
        mode: str = "truncate",
        shard_faults: Sequence[str] = (),
        shard_fault_rate: float = 0.0,
        poison_sources: Sequence[str] = (),
        wal_tail_rounds: Sequence[int] = (),
        kill_mid_swap_epochs: Sequence[int] = (),
        canary_trap_epochs: Sequence[int] = (),
        flap_sources: Sequence[str] = (),
    ):
        if mode not in CORRUPTION_MODES:
            raise ValueError(
                "unknown corruption mode {!r}; expected one of {}".format(
                    mode, CORRUPTION_MODES
                )
            )
        for fault in shard_faults:
            if fault not in SHARD_FAULTS:
                raise ValueError(
                    "unknown shard fault {!r}; expected one of {}".format(
                        fault, SHARD_FAULTS
                    )
                )
        self.seed = seed
        self.rng = random.Random(seed)
        self.crash_pass = crash_pass
        self.corrupt_pass = corrupt_pass
        self.isom_modules = tuple(isom_modules)
        self.corrupt_profile_db = corrupt_profile_db
        self.mode = mode
        # Fleet-loop fault plan (all off by default; see docs/resilience.md).
        self.shard_faults = tuple(shard_faults)
        self.shard_fault_rate = shard_fault_rate
        self.poison_sources = frozenset(poison_sources)
        self.wal_tail_rounds = frozenset(wal_tail_rounds)
        self.kill_mid_swap_epochs = frozenset(kill_mid_swap_epochs)
        self.canary_trap_epochs = frozenset(canary_trap_epochs)
        self.flap_sources = frozenset(flap_sources)
        self.injected: List[str] = []  # log of every fault actually fired

    # ------------------------------------------------------------------
    # Pass-level faults
    # ------------------------------------------------------------------

    def failing_pass(self, name: str = "injected-crash"):
        """A scalar pass that always raises :class:`InjectedFault`."""

        def run(program: Program, proc: Procedure) -> bool:
            self.injected.append("crash:{}:{}".format(name, proc.name))
            raise InjectedFault(
                "injected crash in pass {!r} on @{} (seed {})".format(
                    name, proc.name, self.seed
                )
            )

        return run

    def corrupting_pass(self, name: str = "injected-corrupt"):
        """A scalar pass that breaks the IR instead of raising.

        Appends a jump to a label that does not exist, which the
        verifier rejects — modelling a pass whose output is wrong
        rather than one that crashes.
        """

        def run(program: Program, proc: Procedure) -> bool:
            blocks = [b for b in proc.blocks.values() if b.terminator is not None]
            if not blocks:
                return False
            block = blocks[self.rng.randrange(len(blocks))]
            bogus = "__injected_missing_{}".format(self.rng.randrange(1 << 16))
            block.instrs[-1] = Jump(bogus)
            self.injected.append("corrupt:{}:{}".format(name, proc.name))
            return True

        return run

    def wrap_pipeline(self, pipeline):
        """Sabotage the configured pass of a ``(name, fn)`` pipeline.

        The named pass keeps its position so bisection and quarantine
        report the pass a user would recognize.
        """
        wrapped = []
        for name, run in pipeline:
            if name == self.crash_pass:
                wrapped.append((name, self.failing_pass(name)))
            elif name == self.corrupt_pass:
                wrapped.append((name, self.corrupting_pass(name)))
            else:
                wrapped.append((name, run))
        return wrapped

    # ------------------------------------------------------------------
    # Text-level faults
    # ------------------------------------------------------------------

    def corrupt_text(self, text: str) -> str:
        """Damage serialized text per ``mode``, deterministically."""
        if self.mode in _V3_RECORD_MODES:
            return self._corrupt_v3_record(text)
        if self.mode == "truncate":
            # Cut mid-line somewhere in the back half of the payload.
            cut = self.rng.randrange(len(text) // 2, max(len(text) - 1, 1))
            return text[:cut]
        if self.mode == "garble":
            lines = text.splitlines()
            # Only lines with something to garble are candidates — the
            # fault must actually fire, every time, from any seed.
            victims = [
                i for i in range(1, len(lines))
                if any(ch.isalnum() for ch in lines[i])
            ]
            if victims:
                victim = self.rng.choice(victims)
                lines[victim] = "".join(
                    self.rng.choice("#!?~") if ch.isalnum() else ch
                    for ch in lines[victim]
                )
            return "\n".join(lines) + "\n"
        if self.mode == "bitflip-checksum":
            # Flip one hex digit of the header checksum, leaving the
            # payload intact: pure checksum-mismatch corruption.
            head, _, rest = text.partition("\n")
            fields = head.split()
            if fields and all(c in "0123456789abcdef" for c in fields[-1]):
                digits = list(fields[-1])
                pos = self.rng.randrange(len(digits))
                digits[pos] = "0" if digits[pos] != "0" else "f"
                fields[-1] = "".join(digits)
            return " ".join(fields) + "\n" + rest
        # version-skew: claim a far-future format version.
        head, _, rest = text.partition("\n")
        fields = head.split()
        if len(fields) >= 2:
            fields[1] = "999"
        return " ".join(fields) + "\n" + rest

    def _corrupt_v3_record(self, text: str) -> str:
        """Malform one v3 record, then re-frame the header checksum.

        Naive garbling dies at the CRC gate before any record is read;
        these modes model a *writer* bug (or a bit flip that slipped
        past an end-to-end checksum): the damaged payload is re-framed
        with a freshly computed CRC so the malformed record reaches the
        v3 record parser itself.
        """
        kind = _V3_RECORD_MODES[self.mode]
        head, _, payload = text.partition("\n")
        lines = [line for line in payload.splitlines()]
        victims = [
            i for i, line in enumerate(lines)
            if line.split() and line.split()[0] == kind
        ]
        if victims:
            victim = self.rng.choice(victims)
            lines[victim] = self._malform_record(lines[victim], kind)
        else:
            lines.append(_MALFORMED_RECORDS[kind])
        body = "\n".join(lines) + "\n"
        return self._reframe(head, body)

    def _malform_record(self, line: str, kind: str) -> str:
        fields = line.split()
        if kind == "obs":
            fields[-1] = "not-a-count"  # integer parse must fail
            return " ".join(fields)
        if kind == "ctx":
            return " ".join(fields[:3])  # context column gone
        if kind == "fp":
            return fields[0]  # bare keyword, digest gone
        return " ".join(fields[:5])  # sampling: events/samples pair gone

    @staticmethod
    def _reframe(header: str, payload: str) -> str:
        """Rebuild a ``profiledb N crc32 X`` header over a new payload."""
        fields = header.split()
        checksum = format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")
        version = fields[1] if len(fields) > 1 else "3"
        return "profiledb {} crc32 {}\n{}".format(version, checksum, payload)

    def corrupt_isom(self, text: str, module_name: str) -> str:
        if module_name not in self.isom_modules:
            return text
        self.injected.append("isom:{}:{}".format(self.mode, module_name))
        return self.corrupt_text(text)

    def corrupt_profile(self, text: str) -> str:
        if not self.corrupt_profile_db:
            return text
        self.injected.append("profile:{}".format(self.mode))
        return self.corrupt_text(text)

    # ------------------------------------------------------------------
    # Fleet-loop faults (repro.fleet)
    # ------------------------------------------------------------------

    def _derived_rng(self, *key) -> random.Random:
        """A generator keyed on (seed, *key): stable under call order.

        The fleet loop retries and replays; deriving per-decision
        generators keeps every fault decision a pure function of the
        seed and the shard's identity, not of how many other faults
        fired first.
        """
        return random.Random("{}|{}".format(self.seed, "|".join(str(k) for k in key)))

    def shard_fault(self, source: str, seq: int, attempt: int = 0) -> Optional[str]:
        """Transit-fault decision for one shard send (or ``None``)."""
        if not self.shard_faults or self.shard_fault_rate <= 0.0:
            return None
        rng = self._derived_rng("shard", source, seq, attempt)
        if rng.random() >= self.shard_fault_rate:
            return None
        fault = self.shard_faults[rng.randrange(len(self.shard_faults))]
        self.injected.append(
            "shard:{}:{}:{}#{}".format(fault, source, seq, attempt)
        )
        return fault

    def damage_shard(
        self, wire: str, fault: str, source: str, seq: int, attempt: int = 0
    ) -> str:
        """Apply a ``corrupt``/``truncate`` transit fault to wire text."""
        rng = self._derived_rng("shard-damage", source, seq, attempt)
        if fault == "truncate":
            cut = rng.randrange(len(wire) // 2, max(len(wire) - 1, 1))
            return wire[:cut]
        chars = list(wire)
        start = len(chars) // 2
        for _ in range(3):
            pos = rng.randrange(start, len(chars))
            chars[pos] = rng.choice("#!?~")
        return "".join(chars)

    def delay_ticks(self, source: str, seq: int, attempt: int = 0) -> int:
        """How many ticks a ``delay`` transit fault holds a shard."""
        return self._derived_rng("shard-delay", source, seq, attempt).randrange(1, 4)

    def poison_payload(self, payload: str, source: str, seq: int) -> str:
        """Garble a poisoned source's payload *before* framing.

        The frame checksum is computed over the damaged payload, so the
        shard passes transit validation and fails profiledb parsing at
        the collector — the sick-instance signature the per-source
        circuit breaker exists for.
        """
        if source not in self.poison_sources:
            return payload
        self.injected.append("poison:{}:{}".format(source, seq))
        rng = self._derived_rng("poison", source, seq)
        head, _, body = payload.partition("\n")
        chars = list(body)
        for _ in range(max(3, len(chars) // 16)):
            pos = rng.randrange(len(chars))
            chars[pos] = rng.choice("#!?~")
        return head + "\n" + "".join(chars)

    def wal_tail_fault(self, round_index: int) -> bool:
        """Whether this round's collector restart finds a damaged WAL."""
        return round_index in self.wal_tail_rounds

    def corrupt_wal_tail(self, text: str) -> str:
        """Damage the spool's tail: a torn final write plus garbling."""
        self.injected.append("wal-tail:{}".format(len(text)))
        rng = self._derived_rng("wal-tail", len(text))
        cut = rng.randrange(3 * len(text) // 4, max(len(text) - 1, 1))
        kept = list(text[:cut])
        if kept:
            for _ in range(2):
                pos = rng.randrange(max(len(kept) // 2, 1), len(kept))
                kept[pos] = rng.choice("#!?~")
        return "".join(kept)

    def kill_mid_swap(self, epoch: int) -> bool:
        """Whether an instance dies partway through this epoch's swap."""
        if epoch in self.kill_mid_swap_epochs:
            self.injected.append("mid-swap-kill:{}".format(epoch))
            return True
        return False

    def canary_trap(self, epoch: int) -> bool:
        """Whether this epoch's canary run is sabotaged into a trap."""
        if epoch in self.canary_trap_epochs:
            self.injected.append("canary-trap:{}".format(epoch))
            return True
        return False

    def flap(self, source: str, round_index: int) -> bool:
        """Whether a flapping instance crashes this round (p=0.5)."""
        if source not in self.flap_sources:
            return False
        if self._derived_rng("flap", source, round_index).random() < 0.5:
            self.injected.append("flap:{}:{}".format(source, round_index))
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FaultInjector seed={} mode={} fired={}>".format(
            self.seed, self.mode, len(self.injected)
        )
