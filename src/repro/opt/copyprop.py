"""Copy propagation.

Two flavours, both sound in this non-SSA IR without dominance queries:

- **Single-definition forwarding**: when register ``b`` is defined by
  exactly one instruction ``b = mov a`` and ``a`` is itself defined
  exactly once (or is a parameter that is never redefined), every
  dynamic use of ``b`` must follow its unique definition, which follows
  the unique definition of ``a`` — so uses of ``b`` can read ``a``
  directly.  This is the pattern inlining produces in bulk (parameter-
  binding movs at the inlined entry).
- **Local forwarding**: within one block, a ``mov`` destination can be
  forwarded until either side is redefined.
"""

from __future__ import annotations

from typing import Dict

from ..ir.instructions import Mov
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import Operand, Reg


def _definition_counts(proc: Procedure) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for instr in proc.instructions():
        if instr.dest is not None:
            counts[instr.dest.name] = counts.get(instr.dest.name, 0) + 1
    return counts


def copy_propagation(program: Program, proc: Procedure) -> bool:
    changed = False
    def_counts = _definition_counts(proc)
    params = {name for name, _ in proc.params}

    # Parameters with no redefinition behave like single-def registers.
    def stable(reg: Reg) -> bool:
        if reg.name in params:
            return def_counts.get(reg.name, 0) == 0
        return def_counts.get(reg.name, 0) == 1

    # Pass 1: single-definition forwarding across the whole procedure.
    forward: Dict[str, Reg] = {}
    for instr in proc.instructions():
        if (
            isinstance(instr, Mov)
            and isinstance(instr.src, Reg)
            and instr.dest is not None
            and def_counts.get(instr.dest.name, 0) == 1
            and stable(instr.src)
            and instr.dest.name not in params
        ):
            forward[instr.dest.name] = instr.src

    # Resolve chains a <- b <- c to their root.
    def root(reg: Reg, depth: int = 0) -> Reg:
        while reg.name in forward and depth < 64:
            reg = forward[reg.name]
            depth += 1
        return reg

    if forward:
        for instr in proc.instructions():
            def subst(op: Operand) -> Operand:
                nonlocal changed
                if isinstance(op, Reg) and op.name in forward:
                    changed = True
                    return root(op)
                return op

            instr.map_operands(subst)

    # Pass 2: local forwarding within each block.
    for block in proc.blocks.values():
        available: Dict[str, Operand] = {}
        for instr in block.instrs:
            def subst_local(op: Operand) -> Operand:
                nonlocal changed
                if isinstance(op, Reg) and op.name in available:
                    changed = True
                    return available[op.name]
                return op

            instr.map_operands(subst_local)
            if instr.dest is not None:
                dest = instr.dest.name
                # Redefinition kills copies in both directions.
                available.pop(dest, None)
                for key in [k for k, v in available.items() if isinstance(v, Reg) and v.name == dest]:
                    del available[key]
                if isinstance(instr, Mov):
                    src = instr.src
                    if not (isinstance(src, Reg) and src.name == dest):
                        available[dest] = src
    return changed
