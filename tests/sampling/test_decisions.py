"""Acceptance gates: sampled decisions track exact ones; contexts matter.

Two properties anchor the subsystem:

1. At the default 1/100 rate, the inlining/cloning decisions a build
   makes from a sampled profile overlap >= 90% (Jaccard) with the
   decisions an instrumented (exact) profile produces, on every bench
   workload.  (The bench smoke harness enforces the same floor in CI.)
2. A k>=2 calling-context profile changes at least one *cloning*
   decision versus a context-insensitive profile on a workload built to
   expose the difference: a callee whose hot loop only spins for one of
   its callers.
"""

import pytest

from repro.core.config import HLOConfig
from repro.linker.toolchain import Toolchain
from repro.bench.smoke import DEFAULT_WORKLOADS
from repro.workloads.suite import get_workload

MIN_DECISION_OVERLAP = 0.9
SAMPLING_RATE = 100


def _decisions(result):
    return {
        (e.kind, e.caller, e.callee, e.site_id) for e in result.report.events
    }


class TestDecisionOverlap:
    @pytest.mark.parametrize("name", DEFAULT_WORKLOADS)
    def test_sampled_decisions_overlap_exact(self, name):
        workload = get_workload(name)
        sources = list(workload.sources)
        inputs = [list(t) for t in workload.train_inputs]
        exact = _decisions(
            Toolchain(sources, train_inputs=inputs, jobs=1).build("cp")
        )
        sampled = _decisions(
            Toolchain(
                sources,
                train_inputs=inputs,
                jobs=1,
                sample_rate=SAMPLING_RATE,
            ).build("cp")
        )
        union = exact | sampled
        overlap = len(exact & sampled) / len(union) if union else 1.0
        assert overlap >= MIN_DECISION_OVERLAP, (
            "decision overlap {:.3f} below floor {:.2f}: "
            "exact-only {}, sampled-only {}".format(
                overlap,
                MIN_DECISION_OVERLAP,
                sorted(exact - sampled),
                sorted(sampled - exact),
            )
        )


# The dedicated context workload: ``work``'s loop only spins when
# ``mode`` is positive, so under ``hot_caller`` (mode=1, n=64) the
# parameters are hot loop fodder while under ``cold_caller`` (mode=0)
# the same parameters feed three straight-line instructions.  The
# cold site runs twice as often, so a context-*insensitive* profile
# ranks its clone group first; the k-deep context attribution sees the
# loop spinning only under hot_caller and flips the ranking.  With a
# budget that affords exactly one clone, which caller gets the clone
# is the decision.
KERNEL = """
int work(int mode, int n) {
  int s = 0;
  int i;
  if (mode > 0) {
    for (i = 0; i < n; i = i + 1) {
      s = s + i * n + mode;
    }
  } else {
    s = s + n * 3 + mode * 5;
  }
  return s;
}
"""

DRIVER = """
extern int work(int mode, int n);

int hot_caller(int reps) {
  int i;
  int acc = 0;
  for (i = 0; i < reps; i = i + 1) {
    acc = acc + work(1, 64);
  }
  return acc;
}

int cold_caller(int reps) {
  int i;
  int acc = 0;
  for (i = 0; i < reps; i = i + 1) {
    acc = acc + work(0, 9);
  }
  return acc;
}

int main() {
  int t = input(0);
  int acc = hot_caller(t);
  acc = acc + cold_caller(t + t);
  print_int(acc);
  return 0;
}
"""

CONTEXT_SOURCES = [("kern", KERNEL), ("driver", DRIVER)]


class TestContextSensitivity:
    def _build(self, context_depth):
        config = HLOConfig(
            enable_inlining=False, pass_limit=1, budget_percent=60.0
        )
        return Toolchain(
            CONTEXT_SOURCES,
            train_inputs=[[30]],
            jobs=1,
            config=config,
            sample_rate=25,
            context_depth=context_depth,
        ).build("cp")

    def test_k2_context_profile_flips_a_cloning_decision(self):
        with_context = self._build(context_depth=2)
        without = self._build(context_depth=0)
        clones_ctx = {
            (e.kind, e.caller, e.site_id)
            for e in with_context.report.events
            if "clone" in e.kind
        }
        clones_blind = {
            (e.kind, e.caller, e.site_id)
            for e in without.report.events
            if "clone" in e.kind
        }
        assert clones_ctx != clones_blind
        # The context-aware build spends the clone budget on the caller
        # under which the callee's loop actually spins; the blind build
        # follows raw site frequency to the cold caller.
        assert any(c[1] == "hot_caller" for c in clones_ctx)
        assert not any(c[1] == "hot_caller" for c in clones_blind)
        assert any(c[1] == "cold_caller" for c in clones_blind)

    def test_behavior_preserved_under_both_profiles(self):
        with_context = self._build(context_depth=2)
        without = self._build(context_depth=0)
        ref = [9]
        _, out_ctx = with_context.run(ref)
        _, out_blind = without.run(ref)
        assert out_ctx.behavior() == out_blind.behavior()
