"""Instruction set of the ucode-like IR.

Every instruction is a small mutable object with an optional destination
register and a list of operand *uses*.  Transform passes traverse and
rewrite operands through :meth:`Instr.map_operands`, and block-level
transforms retarget control flow through :meth:`Instr.retarget`; keeping
those two entry points uniform is what makes the inliner/cloner body
transplant (Section 2.3/2.4) a single generic renaming walk.

Call sites carry a ``site_id`` that is unique within their module as
produced by the front end.  The profile database keys call-site counts
by ``(module, site_id)``; inlining and cloning assign fresh ids to the
call sites they copy, recording the original id as ``origin`` so reports
can attribute transformed sites to source sites.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from .values import FuncRef, Imm, Operand, Reg

OperandMap = Callable[[Operand], Operand]


class Instr:
    """Base class for all IR instructions."""

    __slots__ = ()

    dest: Optional[Reg] = None
    is_terminator = False

    def uses(self) -> List[Operand]:
        """Operands read by this instruction (no labels)."""
        return []

    def map_operands(self, fn: OperandMap) -> None:
        """Rewrite every used operand in place through ``fn``."""

    def targets(self) -> List[str]:
        """Labels of successor blocks (terminators only)."""
        return []

    def retarget(self, mapping: Dict[str, str]) -> None:
        """Rewrite successor labels through ``mapping`` (missing = keep)."""

    def copy(self) -> "Instr":
        """A copy suitable for transplanting into another body.

        Operand values (``Reg``/``Imm``/``FuncRef``/``GlobalRef``) are
        frozen dataclasses, so only the instruction object itself and
        its operand *lists* need duplicating; ``map_operands`` replaces
        references, never mutates operands.  This sits on the hot path
        of inlining, cloning, and every guarded-pass snapshot — a full
        ``copy.deepcopy`` here dominated compile time.
        """
        cls = self.__class__
        new = cls.__new__(cls)
        for klass in cls.__mro__:
            for slot in getattr(klass, "__slots__", ()):
                value = getattr(self, slot)
                if type(value) is list:
                    value = list(value)
                setattr(new, slot, value)
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<{}>".format(self)


class Mov(Instr):
    """``dest = src`` — register copy or constant materialization."""

    __slots__ = ("dest", "src")

    def __init__(self, dest: Reg, src: Operand):
        self.dest = dest
        self.src = src

    def uses(self) -> List[Operand]:
        return [self.src]

    def map_operands(self, fn: OperandMap) -> None:
        self.src = fn(self.src)

    def __str__(self) -> str:
        return "{} = mov {}".format(self.dest, self.src)


class UnOp(Instr):
    """``dest = op src`` for op in neg/not/lnot/itof/ftoi."""

    __slots__ = ("dest", "op", "src")

    def __init__(self, dest: Reg, op: str, src: Operand):
        self.dest = dest
        self.op = op
        self.src = src

    def uses(self) -> List[Operand]:
        return [self.src]

    def map_operands(self, fn: OperandMap) -> None:
        self.src = fn(self.src)

    def __str__(self) -> str:
        return "{} = {} {}".format(self.dest, self.op, self.src)


class BinOp(Instr):
    """``dest = op lhs, rhs`` for the arithmetic/logic/compare opcodes."""

    __slots__ = ("dest", "op", "lhs", "rhs")

    def __init__(self, dest: Reg, op: str, lhs: Operand, rhs: Operand):
        self.dest = dest
        self.op = op
        self.lhs = lhs
        self.rhs = rhs

    def uses(self) -> List[Operand]:
        return [self.lhs, self.rhs]

    def map_operands(self, fn: OperandMap) -> None:
        self.lhs = fn(self.lhs)
        self.rhs = fn(self.rhs)

    def __str__(self) -> str:
        return "{} = {} {}, {}".format(self.dest, self.op, self.lhs, self.rhs)


class Load(Instr):
    """``dest = load [addr]`` — read one memory word."""

    __slots__ = ("dest", "addr")

    def __init__(self, dest: Reg, addr: Operand):
        self.dest = dest
        self.addr = addr

    def uses(self) -> List[Operand]:
        return [self.addr]

    def map_operands(self, fn: OperandMap) -> None:
        self.addr = fn(self.addr)

    def __str__(self) -> str:
        return "{} = load [{}]".format(self.dest, self.addr)


class Store(Instr):
    """``store [addr], value`` — write one memory word."""

    __slots__ = ("addr", "value")

    dest = None

    def __init__(self, addr: Operand, value: Operand):
        self.addr = addr
        self.value = value

    def uses(self) -> List[Operand]:
        return [self.addr, self.value]

    def map_operands(self, fn: OperandMap) -> None:
        self.addr = fn(self.addr)
        self.value = fn(self.value)

    def __str__(self) -> str:
        return "store [{}], {}".format(self.addr, self.value)


class Alloca(Instr):
    """``dest = alloca size`` — reserve ``size`` words of stack space.

    A non-immediate ``size`` is a *dynamic* alloca; procedures containing
    one are flagged, because the paper lists dynamic stack allocation as
    a pragmatic restriction on inlining (the callee's frame lifetime
    would change under naive inlining).
    """

    __slots__ = ("dest", "size")

    def __init__(self, dest: Reg, size: Operand):
        self.dest = dest
        self.size = size

    @property
    def is_dynamic(self) -> bool:
        return not isinstance(self.size, Imm)

    def uses(self) -> List[Operand]:
        return [self.size]

    def map_operands(self, fn: OperandMap) -> None:
        self.size = fn(self.size)

    def __str__(self) -> str:
        return "{} = alloca {}".format(self.dest, self.size)


class Call(Instr):
    """``dest = call @callee(args...)`` — direct call by IR symbol name."""

    __slots__ = ("dest", "callee", "args", "site_id", "origin")

    def __init__(
        self,
        dest: Optional[Reg],
        callee: str,
        args: List[Operand],
        site_id: int = -1,
        origin: int = -1,
    ):
        self.dest = dest
        self.callee = callee
        self.args = list(args)
        self.site_id = site_id
        self.origin = origin if origin >= 0 else site_id

    def uses(self) -> List[Operand]:
        return list(self.args)

    def map_operands(self, fn: OperandMap) -> None:
        self.args = [fn(a) for a in self.args]

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        head = "{} = ".format(self.dest) if self.dest is not None else ""
        return "{}call @{}({}) #{}".format(head, self.callee, args, self.site_id)


class ICall(Instr):
    """``dest = icall func(args...)`` — call through a code pointer."""

    __slots__ = ("dest", "func", "args", "site_id", "origin")

    def __init__(
        self,
        dest: Optional[Reg],
        func: Operand,
        args: List[Operand],
        site_id: int = -1,
        origin: int = -1,
    ):
        self.dest = dest
        self.func = func
        self.args = list(args)
        self.site_id = site_id
        self.origin = origin if origin >= 0 else site_id

    def uses(self) -> List[Operand]:
        return [self.func] + list(self.args)

    def map_operands(self, fn: OperandMap) -> None:
        self.func = fn(self.func)
        self.args = [fn(a) for a in self.args]

    def to_direct(self) -> "Call":
        """Devirtualize: requires ``func`` to be a constant ``FuncRef``."""
        if not isinstance(self.func, FuncRef):
            raise ValueError("icall target is not a known FuncRef")
        return Call(self.dest, self.func.name, self.args, self.site_id, self.origin)

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        head = "{} = ".format(self.dest) if self.dest is not None else ""
        return "{}icall {}({}) #{}".format(head, self.func, args, self.site_id)


class Jump(Instr):
    """Unconditional branch to ``target``."""

    __slots__ = ("target",)

    dest = None
    is_terminator = True

    def __init__(self, target: str):
        self.target = target

    def targets(self) -> List[str]:
        return [self.target]

    def retarget(self, mapping: Dict[str, str]) -> None:
        self.target = mapping.get(self.target, self.target)

    def __str__(self) -> str:
        return "jmp {}".format(self.target)


class Branch(Instr):
    """Conditional branch: nonzero ``cond`` goes to ``then_target``."""

    __slots__ = ("cond", "then_target", "else_target")

    dest = None
    is_terminator = True

    def __init__(self, cond: Operand, then_target: str, else_target: str):
        self.cond = cond
        self.then_target = then_target
        self.else_target = else_target

    def uses(self) -> List[Operand]:
        return [self.cond]

    def map_operands(self, fn: OperandMap) -> None:
        self.cond = fn(self.cond)

    def targets(self) -> List[str]:
        return [self.then_target, self.else_target]

    def retarget(self, mapping: Dict[str, str]) -> None:
        self.then_target = mapping.get(self.then_target, self.then_target)
        self.else_target = mapping.get(self.else_target, self.else_target)

    def __str__(self) -> str:
        return "br {}, {}, {}".format(self.cond, self.then_target, self.else_target)


class Ret(Instr):
    """Return from the procedure, optionally with a value."""

    __slots__ = ("value",)

    dest = None
    is_terminator = True

    def __init__(self, value: Optional[Operand] = None):
        self.value = value

    def uses(self) -> List[Operand]:
        return [self.value] if self.value is not None else []

    def map_operands(self, fn: OperandMap) -> None:
        if self.value is not None:
            self.value = fn(self.value)

    def __str__(self) -> str:
        return "ret" if self.value is None else "ret {}".format(self.value)


class Probe(Instr):
    """Profiling probe: bump counter ``counter_id`` in the profile buffer.

    Inserted by the instrumentation pass (one per basic block); the
    interpreter executes it by incrementing a cell in the run's profile
    buffer.  Probes model the paper's instrumenting compile, including
    its run-time overhead.
    """

    __slots__ = ("counter_id",)

    dest = None

    def __init__(self, counter_id: int):
        self.counter_id = counter_id

    def __str__(self) -> str:
        return "probe {}".format(self.counter_id)


CALL_INSTRS = (Call, ICall)
