"""HLOConfig knob helpers and defaults."""

from repro.core import HLOConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = HLOConfig()
        # "By default the inliner will try to limit compile-time
        # increases to 100% over no inlining."
        assert cfg.budget_percent == 100.0
        assert cfg.pass_limit == 4
        assert cfg.enable_inlining and cfg.enable_cloning
        assert cfg.use_profile and cfg.cross_module
        assert not cfg.enable_outlining  # Section 5 future work: opt-in

    def test_with_scope_copies(self):
        cfg = HLOConfig()
        module_scope = cfg.with_scope(cross_module=False, use_profile=False)
        assert not module_scope.cross_module and not module_scope.use_profile
        # The original is untouched (dataclasses.replace semantics).
        assert cfg.cross_module and cfg.use_profile

    def test_variant_helpers(self):
        cfg = HLOConfig()
        assert not cfg.inline_only().enable_cloning
        assert cfg.inline_only().enable_inlining
        assert not cfg.clone_only().enable_inlining
        assert cfg.clone_only().enable_cloning
        neither = cfg.neither()
        assert not neither.enable_inlining and not neither.enable_cloning

    def test_helpers_preserve_other_knobs(self):
        cfg = HLOConfig(budget_percent=250.0, cold_penalty=0.5)
        for derived in (cfg.inline_only(), cfg.clone_only(), cfg.neither(),
                        cfg.with_scope(False, True)):
            assert derived.budget_percent == 250.0
            assert derived.cold_penalty == 0.5


class TestFingerprint:
    """The build-cache key must see every strategy-affecting knob.

    A knob that changes codegen but not the fingerprint makes warm
    cache hits serve artifacts built under a *different* configuration
    — the exact regression this class pins (a demand build must never
    reuse a global build's cache entry, and vice versa).
    """

    def test_same_config_same_fingerprint(self):
        assert HLOConfig().fingerprint() == HLOConfig().fingerprint()

    def test_strategy_changes_fingerprint(self):
        default = HLOConfig().fingerprint()
        assert HLOConfig(strategy="demand").fingerprint() != default
        # "global" IS the default; spelling it out must not miss cache.
        assert HLOConfig(strategy="global").fingerprint() == default

    def test_every_region_knob_changes_fingerprint(self):
        base = HLOConfig(strategy="demand")
        variants = (
            {"region_hot_fraction": 0.01},
            {"region_size_cap": 100},
            {"region_limit": 8},
            {"region_budget_percent": 150.0},
        )
        prints = {base.fingerprint()}
        for kwargs in variants:
            prints.add(HLOConfig(strategy="demand", **kwargs).fingerprint())
        assert len(prints) == 1 + len(variants)

    def test_with_strategy_copies(self):
        cfg = HLOConfig(budget_percent=250.0)
        demand = cfg.with_strategy("demand")
        assert demand.strategy == "demand"
        assert demand.budget_percent == 250.0
        assert cfg.strategy == "global"


class TestBuildStatsWallClock:
    def test_wall_seconds_recorded(self):
        from repro.linker import Toolchain

        tc = Toolchain([("m", "int main() { return 0; }")])
        result = tc.build("c")
        assert result.stats.wall_seconds > 0.0
