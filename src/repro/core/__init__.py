"""HLO: the paper's aggressive inliner and cloner."""

from .benefit import RankedSite, rank_site
from .budget import Budget, program_cost, routine_cost
from .cloner import (
    CloneDatabase,
    CloneGroup,
    build_clone_groups,
    calling_context,
    clone_pass,
    context_matches,
    make_clone_spec,
    param_usage_weights,
    spec_key,
)
from .config import HLOConfig
from .hlo import run_hlo
from .inliner import inline_pass, perform_inline
from .legality import clone_blocker, inline_blocker
from .outliner import (
    OutlineCandidate,
    find_outline_candidates,
    outline_block,
    outline_pass,
)
from .report import HLOReport, PassTrace, TransformEvent
from .transplant import (
    BlockSnapshot,
    copy_into_new_proc,
    promote_referenced_statics,
    splice_body,
    subtract_moved_counts,
    transfer_ratio,
)

__all__ = [
    "BlockSnapshot",
    "Budget",
    "CloneDatabase",
    "CloneGroup",
    "HLOConfig",
    "HLOReport",
    "PassTrace",
    "RankedSite",
    "TransformEvent",
    "build_clone_groups",
    "calling_context",
    "clone_blocker",
    "clone_pass",
    "context_matches",
    "copy_into_new_proc",
    "inline_blocker",
    "inline_pass",
    "make_clone_spec",
    "OutlineCandidate",
    "find_outline_candidates",
    "outline_block",
    "outline_pass",
    "param_usage_weights",
    "perform_inline",
    "program_cost",
    "promote_referenced_statics",
    "rank_site",
    "routine_cost",
    "run_hlo",
    "spec_key",
    "splice_body",
    "subtract_moved_counts",
    "transfer_ratio",
]
