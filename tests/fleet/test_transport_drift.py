"""Transport fault behaviour and the drift detector."""

from __future__ import annotations

import pytest

from repro.fleet import ProfileShard, ShardTransport
from repro.fleet.drift import DriftTracker, profile_drift
from repro.profile.database import ProfileDatabase
from repro.resilience import SHARD_FAULTS, FaultInjector


class _RecordingCollector:
    """Captures what deliver() hands over; ACKs everything."""

    def __init__(self):
        self.received = []

    def receive(self, wire, source, seq, tick):
        self.received.append((tick, source, seq, wire))

        class _Ack:
            pass

        ack = _Ack()
        ack.source, ack.seq, ack.accepted, ack.reason = source, seq, True, "ok"
        return ack


def shard(seq=0, source="inst0"):
    return ProfileShard(source, seq, 0, "profiledb 1\nruns 1 steps 10\n")


class TestTransport:
    def test_clean_delivery_next_tick(self):
        transport = ShardTransport()
        sink = _RecordingCollector()
        transport.send(shard(0), tick=0)
        assert transport.deliver(0, sink) == []  # not due yet
        acks = transport.deliver(1, sink)
        assert len(acks) == 1 and acks[0].accepted
        assert transport.in_flight == 0

    def test_drop_leaves_nothing_in_flight(self):
        injector = FaultInjector(
            seed=1, shard_faults=("drop",), shard_fault_rate=1.0
        )
        transport = ShardTransport(injector)
        transport.send(shard(0), tick=0)
        assert transport.dropped == 1 and transport.in_flight == 0

    def test_duplicate_arrives_twice_with_clean_second_copy(self):
        injector = FaultInjector(
            seed=1, shard_faults=("duplicate",), shard_fault_rate=1.0
        )
        transport = ShardTransport(injector)
        sink = _RecordingCollector()
        transport.send(shard(0), tick=0)
        transport.deliver(1, sink)
        transport.deliver(2, sink)
        assert len(sink.received) == 2
        assert sink.received[0][3] == sink.received[1][3] == shard(0).to_wire()

    def test_corrupt_damages_wire_but_keeps_envelope(self):
        injector = FaultInjector(
            seed=1, shard_faults=("corrupt",), shard_fault_rate=1.0
        )
        transport = ShardTransport(injector)
        sink = _RecordingCollector()
        transport.send(shard(3), tick=0)
        transport.deliver(1, sink)
        (tick, source, seq, wire) = sink.received[0]
        assert wire != shard(3).to_wire()  # damaged in transit
        assert (source, seq) == ("inst0", 3)  # envelope still attributes it

    def test_delay_slips_one_to_three_ticks(self):
        injector = FaultInjector(
            seed=1, shard_faults=("delay",), shard_fault_rate=1.0
        )
        transport = ShardTransport(injector)
        sink = _RecordingCollector()
        transport.send(shard(0), tick=0)
        assert transport.deliver(1, sink) == []  # definitely late
        for tick in range(2, 5):
            transport.deliver(tick, sink)
        assert len(sink.received) == 1

    def test_delivery_order_is_deterministic(self):
        def run():
            injector = FaultInjector(
                seed=5, shard_faults=SHARD_FAULTS, shard_fault_rate=0.5
            )
            transport = ShardTransport(injector)
            sink = _RecordingCollector()
            for seq in range(10):
                transport.send(shard(seq), tick=0)
                transport.send(shard(seq, source="inst1"), tick=0)
            for tick in range(8):
                transport.deliver(tick, sink)
            return [(t, s, q) for t, s, q, _ in sink.received]

        assert run() == run()


def _db(block_counts, site_counts=None):
    db = ProfileDatabase()
    db.training_runs = 1
    db.training_steps = 100
    db.block_counts = dict(block_counts)
    db.site_counts = dict(site_counts or {})
    return db


class TestDrift:
    def test_no_serving_profile_is_full_drift(self):
        assert profile_drift(None, _db({("m", "b"): 10})) == 1.0

    def test_no_merged_evidence_is_zero_drift(self):
        assert profile_drift(_db({("m", "b"): 10}), None) == 0.0

    def test_identical_distributions_zero(self):
        a = _db({("m", "b0"): 10, ("m", "b1"): 30})
        b = _db({("m", "b0"): 20, ("m", "b1"): 60})  # scaled: same shape
        assert profile_drift(a, b) == pytest.approx(0.0)

    def test_shifted_distribution_moves_the_needle(self):
        a = _db({("m", "b0"): 90, ("m", "b1"): 10})
        b = _db({("m", "b0"): 10, ("m", "b1"): 90})
        assert profile_drift(a, b) == pytest.approx(0.8)

    def test_site_drift_counts_too(self):
        a = _db({("m", "b"): 10}, {("m", 0): 100, ("m", 1): 0})
        b = _db({("m", "b"): 10}, {("m", 0): 0, ("m", 1): 100})
        assert profile_drift(a, b) == pytest.approx(1.0)

    def test_tracker_smooths_and_resets(self):
        tracker = DriftTracker(alpha=0.5)
        assert tracker.update(1.0) == pytest.approx(1.0)  # first sample seeds
        assert tracker.update(0.0) == pytest.approx(0.5)
        tracker.reset()
        assert tracker.update(0.2) == pytest.approx(0.2)
