"""Observability: tracing, metrics, and the decision ledgers.

One :class:`BuildObserver` rides through the whole pipeline — CLI,
toolchain, parallel executor, HLO driver, transforms, resilience
guard, fleet loop — carrying four sinks:

- :class:`~repro.obs.tracer.Tracer` — hierarchical spans exported as
  Chrome trace-event JSON (``--trace-out``, Perfetto-loadable);
- :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  p50-p95 histograms plus bounded time series
  (:mod:`repro.obs.series`), the one source of build and fleet
  numbers (``--metrics-out``, ``--series-out``);
- :class:`~repro.obs.ledger.InliningLedger` — every call site the
  inliner or cloner evaluated, with its outcome and reason
  (``--explain-inlining``);
- :class:`~repro.obs.fleetledger.FleetLedger` — every fleet collector
  verdict and controller decision (``repro fleet explain``).

Guest *runtime* observability lives in :mod:`repro.obs.runtime`:
:class:`RuntimeProfiler` is an event sink (not a bundle member) that
attributes guest execution to calling contexts and exports
flamegraphs (``repro run --flame-out``, ``repro profile flame``).

Each sink has a null twin, and :data:`NULL_OBSERVER` bundles them
all, so instrumentation points are always-on method calls with a
no-op fast path — disabling observability costs (nearly) nothing and
needs no conditionals at the call sites.
"""

from .fleetledger import (
    FLEET_LEDGER_SCHEMA_VERSION,
    FleetLedger,
    NULL_FLEET_LEDGER,
    NullFleetLedger,
)
from .ledger import (
    InliningLedger,
    NULL_LEDGER,
    NullLedger,
    record_decision,
)
from .log import CliLogger, VERBOSITY_LEVELS
from .metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    collect_build_metrics,
    collect_runtime_metrics,
    format_build_summary,
)
from .runtime import RuntimeProfiler
from .series import Series, SeriesBank
from .tracer import NULL_TRACER, NullTracer, Span, Tracer


class BuildObserver:
    """The tracer + metrics + ledgers bundle threaded through a build."""

    __slots__ = ("tracer", "metrics", "ledger", "fleet")

    def __init__(self, tracer=None, metrics=None, ledger=None, fleet=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.ledger = ledger if ledger is not None else NULL_LEDGER
        self.fleet = fleet if fleet is not None else NULL_FLEET_LEDGER

    @property
    def enabled(self) -> bool:
        """True when any sink is live (used to skip setup-only work)."""
        return bool(
            self.tracer.enabled
            or self.metrics.enabled
            or self.ledger.enabled
            or self.fleet.enabled
        )


NULL_OBSERVER = BuildObserver()

__all__ = [
    "BuildObserver",
    "CliLogger",
    "FLEET_LEDGER_SCHEMA_VERSION",
    "FleetLedger",
    "InliningLedger",
    "MetricsRegistry",
    "NULL_FLEET_LEDGER",
    "NULL_LEDGER",
    "NULL_METRICS",
    "NULL_OBSERVER",
    "NULL_TRACER",
    "NullFleetLedger",
    "NullLedger",
    "NullMetrics",
    "NullTracer",
    "RuntimeProfiler",
    "Series",
    "SeriesBank",
    "Span",
    "Tracer",
    "VERBOSITY_LEVELS",
    "collect_build_metrics",
    "collect_runtime_metrics",
    "format_build_summary",
    "record_decision",
]
