"""The continuous-profiling fleet: sample in production, reoptimize live.

ROADMAP item 2's sample→reoptimize loop at fleet scale.  A supervised
in-process fleet of interpreter instances serves the current optimized
build while cheap sampled profiles stream back over a faultable
transport; a crash-safe collector journals, gates, and merges the
evidence; and a drift-gated controller rebuilds, canaries, and
hot-swaps new builds — rolling back and quarantining the offending
profile epoch when a canary trips.  Every seam is driven by the seeded
resilience fault injector, so the failure matrix (dropped/corrupt/
duplicated/delayed shards, torn WAL tails, collector restarts, mid-swap
crashes, flapping and poisoned instances) is reproducible from a seed.
"""

from .collector import CircuitBreaker, ProfileCollector, ShardAck
from .controller import ControllerAction, ReoptimizeController
from .drift import DriftTracker, profile_drift
from .instances import FleetInstance, FleetSupervisor, ServedBuild
from .loop import (
    FleetConfig,
    FleetInvariantError,
    FleetLoop,
    FleetReport,
    decision_set,
    jaccard,
)
from .shard import ProfileShard
from .transport import ShardTransport
from .wal import ShardSpool

__all__ = [
    "CircuitBreaker",
    "ControllerAction",
    "DriftTracker",
    "FleetConfig",
    "FleetInstance",
    "FleetInvariantError",
    "FleetLoop",
    "FleetReport",
    "FleetSupervisor",
    "ProfileCollector",
    "ProfileShard",
    "ReoptimizeController",
    "ServedBuild",
    "ShardAck",
    "ShardSpool",
    "ShardTransport",
    "decision_set",
    "jaccard",
    "profile_drift",
]
