"""Run-time benefit estimation for inline candidates (Section 2.4).

"Once the set of viable inlining sites has been identified, they are
assigned a runtime figure of merit.  High-frequency call sites are
given highest priority.  Sites that occur in blocks executed less
frequently than the routine entry block are assigned a penalty.  This
helps to avoid inlining into a non-critical path."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..analysis.callgraph import CallSite
from ..analysis.freq import block_freqs, site_weight
from ..ir.procedure import ATTR_ALWAYS_INLINE
from .config import HLOConfig


@dataclass
class RankedSite:
    site: CallSite
    weight: float  # absolute execution count (measured or estimated)
    rel_freq: float  # site block count relative to caller entry
    benefit: float
    always_inline: bool = False

    @property
    def sort_key(self) -> Tuple:
        # Highest benefit first; ties prefer smaller callees (cheaper),
        # then a stable identity ordering for determinism.
        callee_size = self.site.callee.size() if self.site.callee else 0
        return (
            0 if self.always_inline else 1,
            -self.benefit,
            callee_size,
            self.site.caller.name,
            self.site.instr.site_id,
        )


def rank_site(
    site: CallSite,
    entry: Dict[str, float],
    config: HLOConfig,
    site_counts: Optional[Dict[Tuple[str, int], int]],
    freq_cache: Optional[Dict[str, Dict[str, float]]] = None,
) -> RankedSite:
    weight = site_weight(
        site, entry, site_counts=site_counts, use_profile=config.use_profile
    )
    rel = cached_block_freqs(site.caller, config.use_profile, freq_cache).get(
        site.block.label, 0.0
    )
    benefit = weight
    if rel < 1.0:
        benefit *= config.cold_penalty
    always = bool(site.callee) and ATTR_ALWAYS_INLINE in site.callee.attrs
    return RankedSite(site, weight, rel, benefit, always)


def cached_block_freqs(proc, use_profile: bool, cache: Optional[Dict[str, Dict[str, float]]]):
    """Relative block frequencies, memoized per procedure name."""
    if cache is None:
        return block_freqs(proc, use_profile=use_profile)
    freqs = cache.get(proc.name)
    if freqs is None:
        freqs = block_freqs(proc, use_profile=use_profile)
        cache[proc.name] = freqs
    return freqs
