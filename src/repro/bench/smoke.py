"""Quick benchmark smoke run for CI (``python -m repro.bench.smoke``).

Builds a handful of suite workloads through the parallel/incremental
pipeline and writes one JSON blob (``BENCH_smoke.json``) with, per
workload: deterministic compile cost (``compile_units``), simulated
run cycles on the reference input, the SHA-256 checksum of the final
isoms, and the host wall time.  On top of that it measures:

- **parallel speedup** — the whole workload set is built once serially
  and once fanned out over worker processes (``--jobs``); the per-build
  checksums must match exactly, which is the determinism gate;
- **cache effectiveness** — each workload is built cold and then warm
  against an on-disk module cache; the warm build must recompile zero
  modules (100% hit rate);
- **observability overhead** — the set is built once with the null
  observer (tracing off, the default) and once with tracer + metrics +
  ledger all live; both walls and their ratio land in the report, so a
  tracing hot path that grows expensive shows up in CI.  With
  ``--trace-out`` / ``--metrics-out`` the instrumented pass also writes
  its artifacts for upload;
- **sampled-vs-exact decision overlap** — each workload is built with
  the exact instrumented profile and again with the sampling profiler
  (``repro.sampling``, rate 1/100); the Jaccard overlap of the two
  builds' inline/clone decision sets must stay ≥ 90%, the empirical
  backing for sampled PGO being a drop-in replacement;
- **interpreter engine speedup** — each workload runs sink-free under
  all three engines (reference loop, pre-decoded fast engine,
  source-emitting codegen engine), one untimed warmup then best-of-N
  interleaved walls (``--repeat``).  Two ratios gate in-run: fast must
  stay ≥ 2× the reference and codegen ≥ 2× fast on every workload —
  the acceptance bars each engine shipped against.
  ``interp.steps_per_sec`` and the plan-cache counters land in the
  report on the canonical ``interp.*`` metric names;
- **runtime-observer zero cost** — each workload runs sink-free and
  again with a constructed-but-disabled runtime profiler attached; the
  disabled profiler negotiates every callback off, so the walls must
  agree to within 2% (gated in-run).  One workload also runs with the
  profiler *enabled* under all three engines and the flamegraph
  weights must be identical;
- **fleet convergence** — each workload runs the continuous-profiling
  loop under the canonical seeded fault matrix (transit faults, torn
  WAL tail, mid-swap crash, injected canary trap, flapping instance)
  and must converge to the exact-profile inline/clone decisions
  (Jaccard 1.0) without ever serving a rolled-back build; rollback and
  quarantine counts land in the report.

``--check --baseline benchmarks/baseline.json`` turns the run into a
regression gate: ``compile_units`` or ``cycles`` more than 15% above
the committed baseline fails the run, and so does an engine *speedup*
more than 15% below baseline (a ratio of two walls on the same host,
so it transfers across machines where raw wall time does not).  Wall
times and absolute steps/sec are *recorded* but only gated behind
``--gate-wall-time``, because a wall-time baseline measured on one
machine is meaningless on another; the deterministic cost model is the
portable proxy (docs/performance.md).

Refresh the baseline after an intentional compiler change with::

    python -m repro.bench.smoke --write-baseline benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import tempfile
import time
from typing import List, Optional, Sequence, Tuple

SCHEMA_VERSION = 8
DEFAULT_WORKLOADS = ("compress", "sc", "vortex")
DEFAULT_SCOPE = "cp"
REGRESSION_THRESHOLD = 0.15
SAMPLING_RATE = 100
MIN_DECISION_OVERLAP = 0.9
MIN_INTERP_SPEEDUP = 2.0
MIN_CODEGEN_SPEEDUP = 2.0
INTERP_REPEATS = 5
FLEET_ROUNDS = 10
FLEET_SEED = 7
FLEET_FAULT_RATE = 0.25
MIN_FLEET_JACCARD = 1.0
# Runtime-observer zero-cost gate: a run with a *disabled* profiler
# attached negotiates the same zero-callback plans as sink=None, so
# its wall must stay within 2% of the truly unobserved run.
MAX_RUNTIME_OVERHEAD = 1.02
RUNTIME_FLAME_RATE = 20
RUNTIME_FLAME_SEED = 7
# Serve slice: enough clients for a real stampede on each workload's
# build key without dominating the smoke wall clock.
SERVE_CLIENTS = 16
# Scale slice: a reduced module ladder for the compile-scaling section
# (the CI scale-smoke job runs the full-size ladder via bench.scale).
# Timing gates stay off here — the deterministic sites-sublinearity and
# cycles-parity gates are the portable signal at this tier.
SCALE_SMALL_MODULES = 10
SCALE_MEGA_MODULES = 60
SCALE_PARITY_WORKLOADS = ("compress",)


def _build_one(item: Tuple[str, str]) -> Tuple[str, dict]:
    """Worker body: build one workload end to end and measure it.

    Top-level so it pickles under ``ProcessPoolExecutor``.  The inner
    build runs the pipeline serially (``jobs=1``) — parallelism comes
    from fanning *workloads* out, one per worker, not from nesting
    pools.
    """
    from ..linker.isom import to_isom_text
    from ..linker.toolchain import Toolchain
    from ..workloads.suite import get_workload

    name, scope = item
    workload = get_workload(name)
    toolchain = Toolchain(
        list(workload.sources),
        train_inputs=[list(t) for t in workload.train_inputs],
        jobs=1,
    )
    started = time.perf_counter()
    result = toolchain.build(scope)
    wall = time.perf_counter() - started
    metrics, _run = result.run(workload.ref_input)
    digest = hashlib.sha256()
    for mod_name in sorted(result.program.modules):
        digest.update(to_isom_text(result.program.modules[mod_name]).encode("utf-8"))
    return name, {
        "compile_units": round(result.stats.compile_units, 2),
        "cycles": round(metrics.cycles, 2),
        "checksum": digest.hexdigest(),
        "wall_s": round(wall, 4),
    }


def _run_suite(names: Sequence[str], scope: str, jobs: int) -> Tuple[dict, float]:
    """Build every workload (jobs-wide fan-out); returns (results, wall)."""
    from ..parallel.executor import parallel_map

    items = [(name, scope) for name in names]
    started = time.perf_counter()
    built, _outcome = parallel_map(_build_one, items, jobs=jobs)
    wall = time.perf_counter() - started
    return dict(built), wall


def _measure_cache(names: Sequence[str], scope: str) -> dict:
    """Cold + warm disk-cache builds; the warm pass must be all hits."""
    from ..linker.toolchain import Toolchain
    from ..workloads.suite import get_workload

    cold = {"hits": 0, "misses": 0}
    warm = {"hits": 0, "misses": 0, "modules_compiled": 0}
    with tempfile.TemporaryDirectory(prefix="repro-smoke-cache-") as cache_dir:
        for name in names:
            workload = get_workload(name)
            for temperature in (cold, warm):
                toolchain = Toolchain(
                    list(workload.sources),
                    train_inputs=[list(t) for t in workload.train_inputs],
                    cache_dir=cache_dir,
                )
                diag = toolchain.build(scope).diagnostics
                temperature["hits"] += diag.cache_hits
                temperature["misses"] += diag.cache_misses
                if temperature is warm:
                    warm["modules_compiled"] += diag.modules_compiled
    warm_total = warm["hits"] + warm["misses"]
    return {
        "cold_hits": cold["hits"],
        "cold_misses": cold["misses"],
        "warm_hits": warm["hits"],
        "warm_misses": warm["misses"],
        "warm_modules_recompiled": warm["modules_compiled"],
        "warm_hit_rate": round(warm["hits"] / warm_total, 4) if warm_total else 0.0,
    }


def _measure_observability(
    names: Sequence[str],
    scope: str,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
) -> dict:
    """Same serial build set, observer off vs. fully on.

    Wall times are best-of-two to damp scheduler noise; the ratio is
    recorded, not gated (host wall never transfers across machines —
    same policy as the speedup numbers).
    """
    from ..linker.toolchain import Toolchain
    from ..obs import BuildObserver, InliningLedger, MetricsRegistry, Tracer
    from ..workloads.suite import get_workload

    def build_all(observer) -> float:
        started = time.perf_counter()
        for name in names:
            workload = get_workload(name)
            toolchain = Toolchain(
                list(workload.sources),
                train_inputs=[list(t) for t in workload.train_inputs],
                jobs=1,
            )
            toolchain.build(scope, observer=observer)
        return time.perf_counter() - started

    disabled = min(build_all(None) for _ in range(2))
    observer = BuildObserver(
        tracer=Tracer(), metrics=MetricsRegistry(), ledger=InliningLedger()
    )
    enabled = min(build_all(observer) for _ in range(2))

    if trace_out:
        observer.tracer.write(trace_out)
    if metrics_out:
        observer.metrics.write(metrics_out)

    return {
        "disabled_wall_s": round(disabled, 4),
        "enabled_wall_s": round(enabled, 4),
        "overhead_ratio": round(enabled / disabled, 3) if disabled else 0.0,
        "trace_events": len(observer.tracer.events()),
        "ledger_decisions": observer.ledger.considered,
    }


def _decision_set(report) -> set:
    """The identity of every transform HLO performed in one build."""
    return {
        (event.kind, event.caller, event.callee, event.site_id)
        for event in report.events
    }


def _measure_sampling(
    names: Sequence[str], scope: str, rate: int = SAMPLING_RATE
) -> dict:
    """Sampled-vs-exact feedback: do the *decisions* converge?

    Each workload is built twice at the profile-fed scope — once with
    the exact instrumented profile, once with the sampling profiler at
    1/``rate`` — and the two builds' inline/clone decision sets are
    compared (Jaccard overlap).  Sampling claims the cheap profile
    steers the optimizer to the same place; this section is where that
    claim is measured on every CI run.
    """
    from ..linker.toolchain import Toolchain
    from ..workloads.suite import get_workload

    per = {}
    for name in names:
        workload = get_workload(name)
        train_inputs = [list(t) for t in workload.train_inputs]
        exact = Toolchain(
            list(workload.sources), train_inputs=train_inputs, jobs=1
        ).build(scope)
        sampled = Toolchain(
            list(workload.sources), train_inputs=train_inputs, jobs=1,
            sample_rate=rate,
        ).build(scope)
        exact_set = _decision_set(exact.report)
        sampled_set = _decision_set(sampled.report)
        union = exact_set | sampled_set
        overlap = len(exact_set & sampled_set) / len(union) if union else 1.0
        per[name] = {
            "overlap": round(overlap, 4),
            "exact_decisions": len(exact_set),
            "sampled_decisions": len(sampled_set),
            "confidence": round(
                sampled.profile.overall_confidence(), 4
            ) if sampled.profile is not None else 0.0,
        }
    mean = (
        sum(entry["overlap"] for entry in per.values()) / len(per)
        if per else 1.0
    )
    return {
        "rate": rate,
        "min_overlap": MIN_DECISION_OVERLAP,
        "mean_overlap": round(mean, 4),
        "workloads": per,
    }


def _measure_interp(
    names: Sequence[str], repeats: int = INTERP_REPEATS
) -> dict:
    """All three engines on the same host run, sink-free, best-of-N.

    Runs each workload's un-optimized program (front end only — engine
    throughput is a property of the interpreter, not of HLO) on its
    reference input under the reference loop, the pre-decoded fast
    engine, and the source-emitting codegen engine.  The per-workload
    *speedups* are the portable figures: all walls come from the same
    host and run, so their ratios survive machine changes where raw
    steps/sec cannot.  Two ratios are gated in-run: fast over reference
    (≥ ``MIN_INTERP_SPEEDUP``) and codegen over fast
    (≥ ``MIN_CODEGEN_SPEEDUP``).  The fast-engine figures are read back
    through the canonical ``interp.*`` metric names
    (:func:`repro.obs.metrics.collect_interp_metrics`) so the report and
    ``--metrics-out`` consumers agree on spelling.
    """
    import gc

    from ..interp.interpreter import Interpreter
    from ..obs import names as metric_names
    from ..obs.metrics import collect_interp_metrics
    from ..workloads.suite import get_workload

    engines = ("fast", "codegen", "reference")
    per = {}
    plans = {name: [0, 0] for name in ("fast", "codegen")}
    for name in names:
        workload = get_workload(name)
        program = workload.compile()
        # One untimed warm-up per engine: absorbs plan compilation (its
        # counters are what we report), faults code in, settles caches —
        # without it the first timed round pays one-off costs and the
        # best-of-N gate gets flaky on shared CI runners.
        for engine in engines:
            interp = Interpreter(program, workload.ref_input, engine=engine)
            interp.run()
            if engine in plans:
                plans[engine][0] += interp.plans_compiled
                plans[engine][1] += interp.plan_cache_hits
        # Timed rounds interleave the engines so temporal drift (turbo
        # decay, a background process waking up) lands on all equally
        # instead of skewing the ratios; GC is parked so a collection
        # pause cannot charge one engine for another's garbage.
        walls = {engine: None for engine in engines}
        last_fast = None
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(repeats):
                for engine in engines:
                    interp = Interpreter(
                        program, workload.ref_input, engine=engine
                    )
                    started = time.perf_counter()
                    interp.run()
                    wall = time.perf_counter() - started
                    best = walls[engine]
                    walls[engine] = wall if best is None else min(best, wall)
                    if engine in plans:
                        plans[engine][1] += interp.plan_cache_hits
                    if engine == "fast":
                        last_fast = interp
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        steps = last_fast.steps
        fast_sps = steps / walls["fast"] if walls["fast"] else 0.0
        ref_sps = steps / walls["reference"] if walls["reference"] else 0.0
        cg_sps = steps / walls["codegen"] if walls["codegen"] else 0.0
        reg = collect_interp_metrics(last_fast, steps_per_sec=fast_sps)
        per[name] = {
            "steps": reg.value(metric_names.INTERP_STEPS),
            "steps_per_sec": reg.value(metric_names.INTERP_STEPS_PER_SEC),
            "reference_steps_per_sec": round(ref_sps, 1),
            "speedup": round(fast_sps / ref_sps, 3) if ref_sps else 0.0,
            "codegen_steps_per_sec": round(cg_sps, 1),
            "codegen_speedup": round(cg_sps / fast_sps, 3) if fast_sps else 0.0,
        }
    speedups = [entry["speedup"] for entry in per.values()]
    cg_speedups = [entry["codegen_speedup"] for entry in per.values()]
    return {
        "engine": "fast",
        "min_speedup": MIN_INTERP_SPEEDUP,
        "mean_speedup": round(sum(speedups) / len(speedups), 3)
        if speedups else 0.0,
        "codegen_min_speedup": MIN_CODEGEN_SPEEDUP,
        "codegen_mean_speedup": round(sum(cg_speedups) / len(cg_speedups), 3)
        if cg_speedups else 0.0,
        "plans_compiled": plans["fast"][0],
        "plan_cache_hits": plans["fast"][1],
        "codegen_plans_compiled": plans["codegen"][0],
        "codegen_plan_cache_hits": plans["codegen"][1],
        "repeats": repeats,
        "workloads": per,
    }


def _measure_runtime(
    names: Sequence[str], repeats: int = INTERP_REPEATS
) -> dict:
    """The runtime observer's two promises, measured every CI run.

    **Zero-cost when off**: each workload runs on the fast engine with
    ``sink=None`` and again with a constructed-but-*disabled*
    :class:`~repro.obs.runtime.RuntimeProfiler` attached.  The disabled
    profiler negotiates every capability off, so the engines build the
    same zero-callback plans and the cross-workload mean of the two
    walls' ratio must stay within ``MAX_RUNTIME_OVERHEAD`` (best-of-N
    interleaved, same discipline as the engine-speedup timing — the
    ratio is same-host so it gates in-run).

    **Engine independence**: the first workload also runs with an
    *enabled* profiler (fixed rate/seed) under all three engines; the
    weighted stacks must be identical, the empirical backing for a
    flamegraph being a property of the execution rather than of the
    engine that ran it.
    """
    import gc

    from ..interp.interpreter import run_program
    from ..obs.runtime import RuntimeProfiler
    from ..workloads.suite import get_workload

    per = {}
    programs = {}
    for name in names:
        workload = get_workload(name)
        program = programs[name] = workload.compile()
        # Untimed warmups: plan compilation for both sink modes.
        run_program(program, workload.ref_input, engine="fast")
        run_program(
            program, workload.ref_input,
            sink=RuntimeProfiler(enabled=False), engine="fast",
        )
        # A single guest run is a few tens of milliseconds — too short
        # for a 2% gate against scheduler noise.  Each timed sample is
        # therefore a burst of runs, and the gate compares best-of-N
        # bursts (never fewer than 5, whatever --repeat says).
        burst = 3
        # One reusable disabled profiler: it never receives a callback,
        # so it carries no state between runs — and constructing one
        # (a seeded random.Random) must not be charged to the guest.
        disabled = RuntimeProfiler(enabled=False)
        walls = {"off": None, "attached": None}
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            for _ in range(max(repeats, 5)):
                for key, sink in (("off", None), ("attached", disabled)):
                    started = time.perf_counter()
                    for _run in range(burst):
                        run_program(
                            program, workload.ref_input, sink=sink,
                            engine="fast",
                        )
                    wall = time.perf_counter() - started
                    best = walls[key]
                    walls[key] = wall if best is None else min(best, wall)
                gc.collect()
        finally:
            if gc_was_enabled:
                gc.enable()
        ratio = (
            walls["attached"] / walls["off"] if walls["off"] else 0.0
        )
        per[name] = {
            "off_wall_s": round(walls["off"], 4),
            "attached_wall_s": round(walls["attached"], 4),
            "overhead_ratio": round(ratio, 4),
        }

    # Cross-engine flamegraph equality on the first workload.
    first = names[0]
    workload = get_workload(first)
    observed = []
    for engine in ("reference", "fast", "codegen"):
        profiler = RuntimeProfiler(
            rate=RUNTIME_FLAME_RATE, seed=RUNTIME_FLAME_SEED
        )
        run_program(
            programs[first], workload.ref_input, sink=profiler, engine=engine
        )
        observed.append(
            (profiler.samples, profiler.events, tuple(profiler.weighted_stacks()))
        )
    engines_consistent = all(entry == observed[0] for entry in observed[1:])
    samples, events, stacks = observed[0]

    ratios = [entry["overhead_ratio"] for entry in per.values()]
    return {
        "max_overhead": MAX_RUNTIME_OVERHEAD,
        "overhead_ratio": round(sum(ratios) / len(ratios), 4) if ratios else 0.0,
        "flame_rate": RUNTIME_FLAME_RATE,
        "flame_seed": RUNTIME_FLAME_SEED,
        "flame_workload": first,
        "samples": samples,
        "events": events,
        "contexts": len(stacks),
        "engines_consistent": engines_consistent,
        "repeats": repeats,
        "workloads": per,
    }


def _measure_fleet(
    names: Sequence[str],
    rounds: int = FLEET_ROUNDS,
    seed: int = FLEET_SEED,
) -> dict:
    """The continuous-profiling loop under the canonical fault matrix.

    Every workload runs the full fleet loop — sampled shards over a
    faulty transport (every transit fault at 25%), a torn WAL tail, a
    mid-swap collector crash, an injected canary trap on the first
    rebuild, and a flapping instance — and must still converge to the
    exact-profile inline/clone decisions (Jaccard 1.0) without ever
    serving a rolled-back build.  The same scenario gates the CI
    ``fleet-smoke`` job via ``repro fleet run --assert-convergence``.
    """
    from ..fleet import FleetConfig, FleetLoop
    from ..resilience.faults import SHARD_FAULTS, FaultInjector
    from ..workloads.suite import get_workload

    per = {}
    for name in names:
        workload = get_workload(name)
        injector = FaultInjector(
            seed=seed,
            shard_faults=SHARD_FAULTS,
            shard_fault_rate=FLEET_FAULT_RATE,
            wal_tail_rounds=(3,),
            kill_mid_swap_epochs=(1,),
            canary_trap_epochs=(1,),
            flap_sources=("inst0",),
        )
        loop = FleetLoop(
            list(workload.sources),
            [list(t) for t in workload.train_inputs],
            list(workload.ref_input),
            config=FleetConfig(rounds=rounds, seed=seed),
            injector=injector,
        )
        report = loop.run()
        per[name] = {
            "jaccard": report.convergence_jaccard,
            "rebuilds": report.rebuilds,
            "rollbacks": report.rollbacks,
            "swaps": report.swaps,
            "quarantined_epochs": len(report.quarantined_epochs),
            "served_rolled_back": len(
                set(report.served_builds) & set(report.rolled_back)
            ),
            "wal_truncations": report.wal_truncations,
            "wall_s": round(report.wall_s, 4),
        }
    jaccards = [entry["jaccard"] for entry in per.values()]
    return {
        "rounds": rounds,
        "seed": seed,
        "fault_rate": FLEET_FAULT_RATE,
        "min_jaccard": MIN_FLEET_JACCARD,
        "mean_jaccard": round(sum(jaccards) / len(jaccards), 4)
        if jaccards else 1.0,
        "workloads": per,
    }


def _measure_serve(
    names: Sequence[str],
    scope: str = "c",
    clients: int = SERVE_CLIENTS,
) -> Tuple[dict, List[str]]:
    """The build daemon under a small load-generator slice.

    Spins an in-process :class:`~repro.serve.server.ReproServer`, runs
    the three-phase bench traffic (stampede, warm rebuild, mixed
    run/variant) with a reduced client count, and returns the serve
    report plus its own gate failures: zero errors, in-flight dedupe
    observed, warm-rebuild p95 under cold-build p50, and daemon
    artifacts byte-identical to a cold CLI build.  The CI
    ``serve-smoke`` job runs the full-size version of this against a
    real ``repro serve`` process.
    """
    from .serve import run_serve_bench

    # Gate failures from the bench already carry the "serve:" prefix.
    return run_serve_bench(clients=clients, workloads=tuple(names), scope=scope)


def _measure_scale() -> Tuple[dict, List[str]]:
    """The compile-scaling section at smoke-sized tiers.

    Delegates to :mod:`repro.bench.scale` with a reduced module ladder
    and a single parity workload; only the deterministic gates (demand
    considers sublinearly many sites vs global; cycles parity) run —
    wall/RSS sublinearity is gated by the full-size CI job, where the
    tiers are far enough apart for timing ratios to be signal.
    """
    from .scale import run_scale

    # Gate failures from the bench already carry the "scale:" prefix.
    return run_scale(
        small_modules=SCALE_SMALL_MODULES,
        mega_modules=SCALE_MEGA_MODULES,
        parity_workloads=SCALE_PARITY_WORKLOADS,
        gate_timing=False,
    )


def run_smoke(
    names: Sequence[str] = DEFAULT_WORKLOADS,
    scope: str = DEFAULT_SCOPE,
    jobs: int = 4,
    trace_out: Optional[str] = None,
    metrics_out: Optional[str] = None,
    repeats: int = INTERP_REPEATS,
) -> Tuple[dict, List[str]]:
    """The full smoke measurement; returns (report, failure messages).

    Failures here are *internal* invariants (determinism, warm-cache
    hit rate) — baseline regressions are judged by :func:`check`.
    """
    failures: List[str] = []

    serial_results, serial_wall = _run_suite(names, scope, jobs=1)
    parallel_results, parallel_wall = _run_suite(names, scope, jobs=jobs)

    for name in names:
        if serial_results[name]["checksum"] != parallel_results[name]["checksum"]:
            failures.append(
                "determinism: {} isoms differ between jobs=1 and jobs={}".format(
                    name, jobs
                )
            )

    observability = _measure_observability(
        names, scope, trace_out=trace_out, metrics_out=metrics_out
    )

    sampling = _measure_sampling(names, scope)
    for name, entry in sampling["workloads"].items():
        if entry["overlap"] < MIN_DECISION_OVERLAP:
            failures.append(
                "sampling: {} decision overlap {:.2f} below {:.2f} "
                "(rate 1/{})".format(
                    name, entry["overlap"], MIN_DECISION_OVERLAP,
                    sampling["rate"],
                )
            )

    interp = _measure_interp(names, repeats=repeats)
    for name, entry in interp["workloads"].items():
        if entry["speedup"] < MIN_INTERP_SPEEDUP:
            failures.append(
                "interp: {} fast-engine speedup {:.2f}x below the {:.1f}x "
                "floor".format(name, entry["speedup"], MIN_INTERP_SPEEDUP)
            )
        if entry["codegen_speedup"] < MIN_CODEGEN_SPEEDUP:
            failures.append(
                "interp: {} codegen speedup {:.2f}x over fast below the "
                "{:.1f}x floor".format(
                    name, entry["codegen_speedup"], MIN_CODEGEN_SPEEDUP
                )
            )

    runtime = _measure_runtime(names, repeats=repeats)
    # Gate the cross-workload mean: the disabled profiler runs the
    # byte-identical engine plan (asserted structurally in the engine
    # matrix tests), so per-workload sub-second walls only measure
    # scheduler noise — the mean is the signal.
    if runtime["overhead_ratio"] > MAX_RUNTIME_OVERHEAD:
        failures.append(
            "runtime: disabled-observer overhead x{:.3f} above the "
            "x{:.2f} ceiling (zero-cost-when-off broken)".format(
                runtime["overhead_ratio"], MAX_RUNTIME_OVERHEAD
            )
        )
    if not runtime["engines_consistent"]:
        failures.append(
            "runtime: flamegraph weights differ across engines on {} "
            "(rate 1/{}, seed {})".format(
                runtime["flame_workload"], runtime["flame_rate"],
                runtime["flame_seed"],
            )
        )

    fleet = _measure_fleet(names)
    for name, entry in fleet["workloads"].items():
        if entry["jaccard"] < MIN_FLEET_JACCARD:
            failures.append(
                "fleet: {} converged to jaccard {} under the fault "
                "matrix, expected {}".format(
                    name, entry["jaccard"], MIN_FLEET_JACCARD
                )
            )
        if entry["served_rolled_back"]:
            failures.append(
                "fleet: {} served {} rolled-back build(s)".format(
                    name, entry["served_rolled_back"]
                )
            )

    serve, serve_failures = _measure_serve(names)
    failures.extend(serve_failures)

    scale, scale_failures = _measure_scale()
    failures.extend(scale_failures)

    cache = _measure_cache(names, scope)
    if cache["warm_modules_recompiled"] != 0:
        failures.append(
            "cache: warm rebuild recompiled {} module(s), expected 0".format(
                cache["warm_modules_recompiled"]
            )
        )
    if cache["warm_hit_rate"] != 1.0:
        failures.append(
            "cache: warm hit rate {} != 1.0".format(cache["warm_hit_rate"])
        )

    report = {
        "schema": SCHEMA_VERSION,
        "scope": scope,
        "workloads": parallel_results,
        "totals": {
            "compile_units": round(
                sum(r["compile_units"] for r in parallel_results.values()), 2
            ),
            "cycles": round(sum(r["cycles"] for r in parallel_results.values()), 2),
        },
        "build": {
            "jobs": jobs,
            "serial_wall_s": round(serial_wall, 4),
            "parallel_wall_s": round(parallel_wall, 4),
            "speedup": round(serial_wall / parallel_wall, 3) if parallel_wall else 0.0,
        },
        "cache": cache,
        "observability": observability,
        "sampling": sampling,
        "interp": interp,
        "runtime": runtime,
        "fleet": fleet,
        "serve": serve,
        "scale": scale,
    }
    return report, failures


def check(
    report: dict,
    baseline: dict,
    threshold: float = REGRESSION_THRESHOLD,
    gate_wall_time: bool = False,
) -> List[str]:
    """Compare a smoke report against the committed baseline."""
    failures: List[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, measured in report["workloads"].items():
        expected = base_workloads.get(name)
        if expected is None:
            continue  # new workload: no baseline yet
        for metric in ("compile_units", "cycles"):
            before, after = expected.get(metric), measured.get(metric)
            if not before or after is None:
                continue
            growth = (after - before) / before
            if growth > threshold:
                failures.append(
                    "{}: {} regressed {:.1f}% ({} -> {}), limit {:.0f}%".format(
                        name, metric, growth * 100, before, after, threshold * 100
                    )
                )
        if gate_wall_time:
            before, after = expected.get("wall_s"), measured.get("wall_s")
            if before and after and (after - before) / before > threshold:
                failures.append(
                    "{}: wall_s regressed ({} -> {})".format(name, before, after)
                )
    base_interp = baseline.get("interp", {}).get("workloads", {})
    measured_interp = report.get("interp", {}).get("workloads", {})
    for name, measured in measured_interp.items():
        expected = base_interp.get(name)
        if expected is None:
            continue
        # The speedup is a same-host wall ratio, so it transfers across
        # machines and gates unconditionally; absolute steps/sec is
        # host-bound wall clock and hides behind --gate-wall-time like
        # every other raw timing.
        for metric in ("speedup", "codegen_speedup"):
            before, after = expected.get(metric), measured.get(metric)
            if before and after is not None:
                drop = (before - after) / before
                if drop > threshold:
                    failures.append(
                        "{}: interp {} regressed {:.1f}% "
                        "({} -> {}), limit {:.0f}%".format(
                            name, metric, drop * 100, before, after,
                            threshold * 100,
                        )
                    )
        if gate_wall_time:
            before = expected.get("steps_per_sec")
            after = measured.get("steps_per_sec")
            if before and after and (before - after) / before > threshold:
                failures.append(
                    "{}: interp steps_per_sec regressed ({} -> {})".format(
                        name, before, after
                    )
                )
    # Scale section: both metrics are deterministic (static site counts
    # and model cycles), so they gate unconditionally like cycles.
    base_scale = baseline.get("scale", {})
    measured_scale = report.get("scale", {})
    if base_scale and measured_scale:
        before = base_scale.get("sites_growth_ratio")
        after = measured_scale.get("ratios", {}).get("sites_growth_ratio")
        if before and after and (after - before) / before > threshold:
            failures.append(
                "scale: demand/global sites growth ratio regressed "
                "{:.1f}% ({} -> {}), limit {:.0f}%".format(
                    (after - before) / before * 100, before, after,
                    threshold * 100,
                )
            )
        base_parity = base_scale.get("parity", {})
        for name, entry in measured_scale.get("parity", {}).items():
            before = base_parity.get(name)
            after = entry.get("ratio")
            if before and after and (after - before) / before > threshold:
                failures.append(
                    "scale: {} demand/global cycles parity regressed "
                    "{:.1f}% ({} -> {}), limit {:.0f}%".format(
                        name, (after - before) / before * 100, before, after,
                        threshold * 100,
                    )
                )
    return failures


def baseline_view(report: dict) -> dict:
    """The committable subset of a report: deterministic fields only."""
    return {
        "schema": report["schema"],
        "scope": report["scope"],
        "workloads": {
            name: {
                "compile_units": entry["compile_units"],
                "cycles": entry["cycles"],
                "checksum": entry["checksum"],
            }
            for name, entry in report["workloads"].items()
        },
        "totals": report["totals"],
        # Speedup (a same-host wall ratio) and steps/sec both land in
        # the baseline; check() gates the former always and the latter
        # only behind --gate-wall-time.
        "interp": {
            "workloads": {
                name: {
                    "speedup": entry["speedup"],
                    "steps_per_sec": entry["steps_per_sec"],
                    "codegen_speedup": entry["codegen_speedup"],
                    "codegen_steps_per_sec": entry["codegen_steps_per_sec"],
                }
                for name, entry in report.get("interp", {})
                .get("workloads", {}).items()
            },
        },
        # Deterministic slice of the scale section: the demand/global
        # static-sites growth ratio and the per-workload cycles parity.
        "scale": {
            "sites_growth_ratio": report.get("scale", {})
            .get("ratios", {}).get("sites_growth_ratio"),
            "parity": {
                name: entry["ratio"]
                for name, entry in report.get("scale", {})
                .get("parity", {}).items()
            },
        },
    }


def step_summary(report: dict, failures: Sequence[str]) -> str:
    """A GitHub step-summary Markdown view of one smoke report.

    Renders the per-workload engine table (steps/sec under all three
    engines plus both gated ratios), the sampling overlap, and the
    fleet convergence Jaccard — the numbers a reviewer needs to judge a
    bench regression without downloading ``BENCH_smoke.json``.
    """
    interp = report.get("interp", {})
    lines = [
        "## Bench smoke (schema v{})".format(report.get("schema", "?")),
        "",
        "| workload | reference steps/s | fast steps/s | codegen steps/s "
        "| fast/ref | codegen/fast | fleet Jaccard |",
        "|---|---:|---:|---:|---:|---:|---:|",
    ]
    fleet_workloads = report.get("fleet", {}).get("workloads", {})
    for name, entry in sorted(interp.get("workloads", {}).items()):
        fleet_entry = fleet_workloads.get(name, {})
        lines.append(
            "| {} | {:,.0f} | {:,.0f} | {:,.0f} | {:.2f}x | {:.2f}x "
            "| {} |".format(
                name,
                entry.get("reference_steps_per_sec", 0.0),
                entry.get("steps_per_sec", 0.0),
                entry.get("codegen_steps_per_sec", 0.0),
                entry.get("speedup", 0.0),
                entry.get("codegen_speedup", 0.0),
                fleet_entry.get("jaccard", "—"),
            )
        )
    lines += [
        "",
        "- floors: fast ≥ {:.1f}x over reference, codegen ≥ {:.1f}x over "
        "fast (gated in-run)".format(
            interp.get("min_speedup", MIN_INTERP_SPEEDUP),
            interp.get("codegen_min_speedup", MIN_CODEGEN_SPEEDUP),
        ),
        "- sampling decision overlap: mean {:.1%} at rate 1/{} "
        "(floor {:.0%})".format(
            report.get("sampling", {}).get("mean_overlap", 0.0),
            report.get("sampling", {}).get("rate", SAMPLING_RATE),
            report.get("sampling", {}).get("min_overlap", MIN_DECISION_OVERLAP),
        ),
        "- timing: best of {} interleaved round(s) after one warmup per "
        "engine".format(interp.get("repeats", INTERP_REPEATS)),
    ]
    runtime = report.get("runtime", {})
    if runtime:
        lines.append(
            "- runtime observer: disabled-profiler overhead x{:.3f} "
            "(ceiling x{:.2f}); flamegraph engine-consistent: {} "
            "({} contexts / {} samples on {})".format(
                runtime.get("overhead_ratio", 0.0),
                runtime.get("max_overhead", MAX_RUNTIME_OVERHEAD),
                "yes" if runtime.get("engines_consistent") else "NO",
                runtime.get("contexts", 0),
                runtime.get("samples", 0),
                runtime.get("flame_workload", "?"),
            )
        )
    scale = report.get("scale", {})
    if scale:
        ratios = scale.get("ratios", {})
        tiers = scale.get("tiers", {})
        lines.append(
            "- scale ({} -> {} modules): demand/global growth ratios "
            "wall {:.3f}, peak {:.3f}, sites {:.3f}; parity {}".format(
                tiers.get("small", {}).get("n_modules", "?"),
                tiers.get("mega", {}).get("n_modules", "?"),
                ratios.get("wall_growth_ratio", 0.0),
                ratios.get("peak_growth_ratio", 0.0),
                ratios.get("sites_growth_ratio", 0.0),
                ", ".join(
                    "{} {:.3f}".format(name, entry.get("ratio", 0.0))
                    for name, entry in sorted(scale.get("parity", {}).items())
                ) or "—",
            )
        )
    serve = report.get("serve", {})
    if serve:
        lines.append(
            "- serve: {} clients at {:.0f} req/s; warm rebuild p95 "
            "{:.1f}ms vs cold build p50 {:.1f}ms; dedupe {}; shed {}; "
            "artifacts identical: {}".format(
                serve.get("clients", 0),
                serve.get("throughput_rps", 0.0),
                serve.get("warm_rebuild_ms", {}).get("p95", 0.0),
                serve.get("cold_build_ms", {}).get("p50", 0.0),
                serve.get("dedupe_hits", 0),
                serve.get("shed", 0),
                "yes" if serve.get("artifacts_identical") else "NO",
            )
        )
    if failures:
        lines += ["", "### Failures", ""]
        lines += ["- `{}`".format(failure) for failure in failures]
    else:
        lines += ["", "All gates green."]
    return "\n".join(lines) + "\n"


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.smoke", description="quick benchmark smoke run for CI"
    )
    parser.add_argument("--workloads", default=",".join(DEFAULT_WORKLOADS),
                        help="comma-separated workload names")
    parser.add_argument("--scope", default=DEFAULT_SCOPE)
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel pass")
    parser.add_argument("--output", metavar="FILE",
                        help="write the full JSON report here")
    parser.add_argument("--baseline", metavar="FILE",
                        help="committed baseline to compare against")
    parser.add_argument("--check", action="store_true",
                        help="fail on >{:.0f}%% regression vs --baseline".format(
                            REGRESSION_THRESHOLD * 100))
    parser.add_argument("--gate-wall-time", action="store_true",
                        help="also gate host wall time (off by default: "
                        "baselines do not transfer across machines)")
    parser.add_argument("--write-baseline", metavar="FILE",
                        help="write the deterministic baseline subset here")
    parser.add_argument("--trace-out", metavar="FILE",
                        help="write the instrumented pass's Chrome trace here")
    parser.add_argument("--metrics-out", metavar="FILE",
                        help="write the instrumented pass's metrics JSON here")
    parser.add_argument("--repeat", type=int, default=INTERP_REPEATS,
                        metavar="N",
                        help="timed interpreter rounds per engine; each "
                        "engine's wall is the best of N interleaved runs "
                        "after an untimed warmup (default {})".format(
                            INTERP_REPEATS))
    parser.add_argument("--summary-out", metavar="FILE",
                        help="append a Markdown summary table here "
                        "(point at $GITHUB_STEP_SUMMARY in CI)")
    args = parser.parse_args(argv)

    names = [part.strip() for part in args.workloads.split(",") if part.strip()]
    report, failures = run_smoke(
        names, scope=args.scope, jobs=args.jobs,
        trace_out=args.trace_out, metrics_out=args.metrics_out,
        repeats=max(1, args.repeat),
    )

    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote", args.output)
    if args.write_baseline:
        with open(args.write_baseline, "w") as handle:
            json.dump(baseline_view(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote", args.write_baseline)

    if args.check and args.baseline:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        failures.extend(check(report, baseline, gate_wall_time=args.gate_wall_time))

    if args.summary_out:
        # Append (not truncate): $GITHUB_STEP_SUMMARY may already hold
        # earlier steps' sections.
        with open(args.summary_out, "a") as handle:
            handle.write(step_summary(report, failures))
        print("appended summary to", args.summary_out)

    print(
        "smoke: {} workload(s), scope {}, {:.2f}s serial / {:.2f}s with "
        "{} jobs (x{:.2f}), warm cache {:.0f}% hits, "
        "observability x{:.3f} when enabled".format(
            len(names),
            args.scope,
            report["build"]["serial_wall_s"],
            report["build"]["parallel_wall_s"],
            report["build"]["jobs"],
            report["build"]["speedup"],
            report["cache"]["warm_hit_rate"] * 100,
            report["observability"]["overhead_ratio"],
        )
    )
    print(
        "sampling: mean decision overlap {:.1%} at rate 1/{} "
        "(floor {:.0%})".format(
            report["sampling"]["mean_overlap"],
            report["sampling"]["rate"],
            report["sampling"]["min_overlap"],
        )
    )
    print(
        "interp: fast engine mean speedup x{:.2f} over reference "
        "(floor x{:.1f}; {} plans compiled, {} cache hits)".format(
            report["interp"]["mean_speedup"],
            report["interp"]["min_speedup"],
            report["interp"]["plans_compiled"],
            report["interp"]["plan_cache_hits"],
        )
    )
    print(
        "interp: codegen engine mean speedup x{:.2f} over fast "
        "(floor x{:.1f}; {} plans compiled, {} cache hits)".format(
            report["interp"]["codegen_mean_speedup"],
            report["interp"]["codegen_min_speedup"],
            report["interp"]["codegen_plans_compiled"],
            report["interp"]["codegen_plan_cache_hits"],
        )
    )
    print(
        "runtime: disabled-observer overhead x{:.3f} (ceiling x{:.2f}); "
        "flamegraph engine-consistent: {} ({} contexts, {} samples)".format(
            report["runtime"]["overhead_ratio"],
            report["runtime"]["max_overhead"],
            "yes" if report["runtime"]["engines_consistent"] else "NO",
            report["runtime"]["contexts"],
            report["runtime"]["samples"],
        )
    )
    total_rollbacks = sum(
        entry["rollbacks"] for entry in report["fleet"]["workloads"].values()
    )
    print(
        "fleet: mean convergence jaccard {:.4f} under the fault matrix "
        "(floor {:.1f}; {} rollback(s) across {} workload(s))".format(
            report["fleet"]["mean_jaccard"],
            report["fleet"]["min_jaccard"],
            total_rollbacks,
            len(report["fleet"]["workloads"]),
        )
    )
    for failure in failures:
        print("FAIL:", failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
