"""Execution event stream consumed by trace-driven models.

The interpreter optionally streams its dynamic behaviour to an
:class:`EventSink`; the PA8000 machine model is the main consumer.  The
callbacks deliberately carry *IR-level* identities (procedure, block
label, instruction index) — the machine model owns the mapping from
those identities to code addresses via its layout.

Capability negotiation
----------------------

A sink *declares* which callbacks it consumes through the class-level
``needs_*`` flags.  Both execution engines read the flags once per run
and skip the corresponding callback entirely when a sink does not need
it, so a sink that only counts calls pays nothing per instruction.  The
defaults are conservative (everything on): a sink written before the
flags existed keeps exact semantics.

``batch_instr`` is a stronger opt-in for order-insensitive sinks: the
pre-decoded engine may *replay* a straight-line run's ``on_instr``
events in one batch at the start of the run instead of interleaving
them with execution.  The event sequence delivered for any normally
terminating program is identical (only ``on_instr`` events occur inside
a straight-line run, and they are replayed in order before the run's
call/branch event fires); a sink that inspects interpreter side effects
between events must leave it off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..ir.instructions import Instr
    from ..ir.procedure import Procedure


class EventSink:
    """Base class with no-op callbacks; override what you consume.

    Override the ``needs_*`` class attributes to declare the callbacks
    the sink actually consumes (capability negotiation, see module
    docstring); leave them ``True`` for exact per-event delivery.
    """

    needs_instr = True
    needs_branch = True
    needs_call = True
    needs_return = True
    needs_mem = True
    # Opt-in: on_instr events for a straight-line run may be delivered
    # as one in-order batch at the start of the run (fast engine only).
    batch_instr = False

    def on_instr(self, proc: "Procedure", label: str, index: int, instr: "Instr") -> None:
        """An IR instruction was executed."""

    def on_branch(
        self,
        proc: "Procedure",
        label: str,
        index: int,
        kind: str,
        taken: bool,
        target_label: str,
    ) -> None:
        """A control transfer resolved.  ``kind`` is ``cond``/``jump``."""

    def on_call(self, caller: "Procedure", callee_name: str, kind: str, n_args: int) -> None:
        """A call executed.  ``kind`` is ``direct``/``indirect``/``builtin``."""

    def on_return(self, callee_name: str, caller: "Procedure") -> None:
        """A procedure returned to ``caller`` (builtins excluded)."""

    def on_mem(self, addr: int, is_store: bool) -> None:
        """A data memory access at word address ``addr``."""


class CountingSink(EventSink):
    """A cheap sink that tallies event counts; handy in tests.

    Counting is order-insensitive, so it opts into block-batched
    ``on_instr`` replay — the canonical "counting-only" sink the fast
    engine's batched mode exists for.
    """

    batch_instr = True

    def __init__(self) -> None:
        self.instrs = 0
        self.branches = 0
        self.calls = 0
        self.returns = 0
        self.mems = 0

    def on_instr(self, proc, label, index, instr) -> None:
        self.instrs += 1

    def on_branch(self, proc, label, index, kind, taken, target_label) -> None:
        self.branches += 1

    def on_call(self, caller, callee_name, kind, n_args) -> None:
        self.calls += 1

    def on_return(self, callee_name, caller) -> None:
        self.returns += 1

    def on_mem(self, addr, is_store) -> None:
        self.mems += 1


class RecordingSink(EventSink):
    """Records the full event stream as comparable tuples.

    The differential harness (:mod:`repro.interp.diff`) runs one of
    these under each engine and asserts the streams are identical, so
    every field that identifies an event is captured.  Procedures are
    recorded by name (the objects are shared anyway) and instructions
    by class name, which keeps the tuples cheap to compare and print.
    """

    def __init__(self) -> None:
        self.events: List[Tuple] = []

    def on_instr(self, proc, label, index, instr) -> None:
        self.events.append(("instr", proc.name, label, index, instr.__class__.__name__))

    def on_branch(self, proc, label, index, kind, taken, target_label) -> None:
        self.events.append(("branch", proc.name, label, index, kind, taken, target_label))

    def on_call(self, caller, callee_name, kind, n_args) -> None:
        self.events.append(("call", caller.name, callee_name, kind, n_args))

    def on_return(self, callee_name, caller) -> None:
        self.events.append(("return", callee_name, caller.name))

    def on_mem(self, addr, is_store) -> None:
        self.events.append(("mem", addr, is_store))
