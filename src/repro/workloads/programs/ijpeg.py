"""``ijpeg`` — integer image-block transforms (analog of SPEC 132.ijpeg).

JPEG's hot loops run separable integer transforms over 8x8 blocks, then
quantize through a table.  This workload transforms image blocks with a
butterfly-structured integer kernel split across modules: per-row and
per-column passes call shared butterfly helpers, and quantization goes
through a table-lookup accessor in another module.  The block loop is
the hot region; the helpers are the inline targets.

Inputs: [image width in blocks, image height in blocks, passes].
"""

from ..suite import Workload, register

DSP = """
// Butterfly helpers: the shared integer kernel pieces.
int rot(int a, int b, int k) {
  // A pseudo-rotation: mixes two lanes with integer scaling.
  int t = (a * k + b * (64 - k)) / 64;
  int u = (b * k - a * (64 - k)) / 64;
  return (t & 65535) * 65536 + (u & 65535);
}

int rot_hi(int packed) { return (packed / 65536) & 65535; }
int rot_lo(int packed) { return packed & 65535; }

int butterfly_add(int a, int b) { return (a + b) / 2; }
int butterfly_sub(int a, int b) { return (a - b) / 2; }

int clamp255(int v) {
  if (v < 0) return 0;
  if (v > 255) return 255;
  return v;
}
"""

QUANT = """
// Quantization table with accessor (cross-module, one load).
int qtable[64];

void quant_init(int quality) {
  int i;
  for (i = 0; i < 64; i++) {
    int q = 1 + (i * quality) / 16;
    if (q > 32) q = 32;
    qtable[i] = q;
  }
}

int quantize(int coeff, int index) {
  return coeff / qtable[index & 63];
}

int dequantize(int coeff, int index) {
  return coeff * qtable[index & 63];
}
"""

TRANSFORM = """
extern int butterfly_add(int a, int b);
extern int butterfly_sub(int a, int b);
extern int rot(int a, int b, int k);
extern int rot_hi(int packed);
extern int rot_lo(int packed);
extern int clamp255(int v);
extern int quantize(int coeff, int index);

// One 8x8 block, processed in place through a scratch buffer.
int blk[64];

static void pass_rows() {
  int r;
  for (r = 0; r < 8; r++) {
    int base = r * 8;
    int c;
    for (c = 0; c < 4; c++) {
      int s = butterfly_add(blk[base + c], blk[base + 7 - c]);
      int d = butterfly_sub(blk[base + c], blk[base + 7 - c]);
      int packed = rot(s, d, 17 + c * 4);
      blk[base + c] = rot_hi(packed);
      blk[base + 7 - c] = rot_lo(packed);
    }
  }
}

static void pass_cols() {
  int c;
  for (c = 0; c < 8; c++) {
    int r;
    for (r = 0; r < 4; r++) {
      int top = r * 8 + c;
      int bot = (7 - r) * 8 + c;
      int s = butterfly_add(blk[top], blk[bot]);
      int d = butterfly_sub(blk[top], blk[bot]);
      blk[top] = s;
      blk[bot] = d;
    }
  }
}

int transform_block() {
  pass_rows();
  pass_cols();
  int sum = 0;
  int i;
  for (i = 0; i < 64; i++) {
    int q = quantize(blk[i], i);
    blk[i] = clamp255(q & 1023);
    sum = (sum + blk[i]) % 1000003;
  }
  return sum;
}

void load_block(int seed) {
  int i;
  for (i = 0; i < 64; i++) {
    blk[i] = ((seed * (i + 3) * 2654435761) >> 8) & 255;
  }
}
"""

MAIN = """
extern void quant_init(int quality);
extern void load_block(int seed);
extern int transform_block();

int main() {
  int wblocks = input(0);
  int hblocks = input(1);
  int passes = input(2);
  quant_init(7);
  int check = 0;
  int p;
  for (p = 0; p < passes; p++) {
    int by;
    for (by = 0; by < hblocks; by++) {
      int bx;
      for (bx = 0; bx < wblocks; bx++) {
        load_block(by * 1000 + bx * 10 + p + 1);
        check = (check + transform_block()) % 1000003;
      }
    }
  }
  print_int(check);
  return check % 97;
}
"""

WORKLOAD = Workload(
    name="ijpeg",
    spec_analog="132.ijpeg (integer image transforms)",
    description="8x8 block butterfly transforms with quantization lookups",
    sources=(("dsp", DSP), ("quant", QUANT), ("xform", TRANSFORM), ("jmain", MAIN)),
    train_inputs=((3, 2, 2),),
    ref_input=(4, 3, 3),
    suites=("95",),
)


def register_workload() -> None:
    register(WORKLOAD)
