"""Clients for the build daemon: async for load, sync for tools.

:class:`AsyncServeClient` is what the load-generator bench and the
asyncio tests use — hundreds of them multiplex over one event loop.
:class:`ServeClient` is a plain blocking socket client for synchronous
callers (the fleet loop's ``--build-server`` path, CI scripts); it can
retry its initial connect, which is how ``repro bench-serve
--connect`` waits out a daemon that is still binding its port.

Both speak :mod:`repro.serve.protocol` and raise
:class:`ServeRequestError` for any non-``ok`` reply, carrying the
reply's status so callers can tell a shed (``busy``) from a rejection
(``bad-request``).

:func:`build_result_from_reply` reconstructs a full
:class:`~repro.linker.toolchain.BuildResult` from a build reply —
program linked from the shipped isom texts in the server's module
order, report/stats/diagnostics from their wire twins — which is what
lets the fleet controller treat a remote build exactly like a local
one.
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import Optional, Sequence, Tuple

from ..linker.isom import from_isom_text
from ..linker.linker import link_modules
from ..linker.toolchain import BuildDiagnostics, BuildResult, BuildStats
from .protocol import MAX_FRAME_CHARS, decode_frame, encode_frame
from .state import deserialize_report


class ServeRequestError(Exception):
    """A reply with any status but ``ok``."""

    def __init__(self, status: str, message: str, error_type: str = ""):
        self.status = status
        self.error_type = error_type
        super().__init__("{}: {}".format(status, message))


def _check(response: dict) -> dict:
    status = response.get("status")
    if status != "ok":
        raise ServeRequestError(
            status or "malformed",
            str(response.get("error", "no error text")),
            error_type=str(response.get("error_type", "")),
        )
    return response


def parse_address(address: str) -> Tuple[str, int]:
    """``host:port`` (or bare ``:port``) to a connectable pair."""
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            "expected HOST:PORT, got {!r}".format(address)
        )
    return host or "127.0.0.1", int(port)


def build_result_from_reply(fields: dict) -> BuildResult:
    """A local :class:`BuildResult` reconstructed from a build reply."""
    isoms = fields["isoms"]
    order = fields.get("module_order") or sorted(isoms)
    report = deserialize_report(fields.get("report", {}))
    modules = [from_isom_text(isoms[name]) for name in order]
    # Cross-module inlining deletes a procedure once every call site
    # absorbed it, but sibling modules still *declare* it — and the
    # linker treats a declaration as a reference.  The isom texts must
    # ship verbatim (they are the byte-identity checksum), so the
    # stale externs are dropped here, after reconstruction.
    deleted = set(report.deleted_procs)
    for module in modules:
        for name in [n for n in module.externs if n in deleted]:
            del module.externs[name]
    program = link_modules(modules)
    stats_obj = fields.get("stats", {})
    stats = BuildStats(
        scope=fields.get("scope", "c"),
        compile_units=stats_obj.get("compile_units", 0.0),
        train_steps=stats_obj.get("train_steps", 0),
        train_runs=stats_obj.get("train_runs", 0),
        code_size_instrs=stats_obj.get("code_size_instrs", program.size()),
        annotated_blocks=stats_obj.get("annotated_blocks", 0),
        wall_seconds=fields.get("build_wall_s", 0.0),
    )
    diag_obj = fields.get("diagnostics", {})
    diagnostics = BuildDiagnostics(
        module_fallbacks=list(diag_obj.get("module_fallbacks", ())),
        profile_fallback=diag_obj.get("profile_fallback", ""),
        modules_compiled=diag_obj.get("modules_compiled", 0),
        modules_from_cache=diag_obj.get("modules_from_cache", 0),
    )
    return BuildResult(
        program,
        report,
        stats,
        None,
        diagnostics,
        engine=fields.get("engine", "fast"),
    )


class AsyncServeClient:
    """One connection on the event loop; requests are serialized on it."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 0
    ) -> "AsyncServeClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_CHARS + 1024
        )
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        """One framed round trip; raises :class:`ServeRequestError`."""
        if "id" not in payload:
            self._next_id += 1
            payload = dict(payload, id="c{}".format(self._next_id))
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return _check(decode_frame(line))

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def stats(self) -> dict:
        return (await self.request({"op": "stats"}))["stats"]

    async def shutdown(self) -> dict:
        return await self.request({"op": "shutdown"})

    async def build(
        self, sources: Sequence[Tuple[str, str]], **fields: object
    ) -> dict:
        payload = {"op": "build", "sources": [list(p) for p in sources]}
        payload.update(fields)
        return await self.request(payload)

    async def run(
        self,
        sources: Sequence[Tuple[str, str]],
        inputs: Sequence[float] = (),
        **fields: object,
    ) -> dict:
        payload = {
            "op": "run",
            "sources": [list(p) for p in sources],
            "inputs": list(inputs),
        }
        payload.update(fields)
        return await self.request(payload)

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass


class ServeClient:
    """A blocking client for synchronous callers (fleet loop, scripts)."""

    def __init__(self, address: str, timeout: Optional[float] = 120.0):
        self.host, self.port = parse_address(address)
        self.timeout = timeout
        self._sock: Optional[socket.socket] = None
        self._file = None
        self._next_id = 0

    def connect(self, retry_for: float = 0.0) -> "ServeClient":
        """Connect now, optionally retrying for ``retry_for`` seconds."""
        deadline = time.monotonic() + retry_for
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.2)
        self._file = self._sock.makefile("rb")
        return self

    def request(self, payload: dict) -> dict:
        if self._sock is None:
            self.connect()
        if "id" not in payload:
            self._next_id += 1
            payload = dict(payload, id="s{}".format(self._next_id))
        self._sock.sendall(encode_frame(payload))
        line = self._file.readline(MAX_FRAME_CHARS + 1024)
        if not line:
            raise ConnectionError("server closed the connection")
        return _check(decode_frame(line))

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})["stats"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})

    def build(
        self, sources: Sequence[Tuple[str, str]], **fields: object
    ) -> dict:
        payload = {"op": "build", "sources": [list(p) for p in sources]}
        payload.update(fields)
        return self.request(payload)

    def remote_rebuild(
        self,
        sources: Sequence[Tuple[str, str]],
        profile_text: str,
        scope: str = "cp",
        engine: str = "",
        want_ledger: bool = True,
    ) -> Tuple[BuildResult, Optional[int]]:
        """The fleet controller's path: one profile-fed remote build.

        Returns the reconstructed :class:`BuildResult` plus the
        server-side ledger count (for the canary's ledger-anomaly
        check), mirroring what a local ``rebuild_with_profile`` under
        an :class:`InliningLedger` observer would yield.
        """
        fields = self.build(
            sources,
            scope=scope,
            engine=engine,
            profile=profile_text,
            ledger=want_ledger,
        )
        return build_result_from_reply(fields), fields.get("ledger_considered")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
