"""Isom files: object files that still contain intermediate code.

Section 2.1: "An alternative compile path allows the ucode to be stored
into special object files known as isoms.  These files remain
unoptimized until link time.  When the linker is invoked and discovers
isoms, it passes them en masse to HLO..."  Our isoms are the textual IR
serialization; this module writes, reads, and sniffs them.
"""

from __future__ import annotations

import os
from typing import Iterable, List

from ..ir.module import Module
from ..ir.parser import parse_module
from ..ir.printer import print_module

ISOM_EXTENSION = ".isom"
_MAGIC = "module "


def to_isom_text(module: Module) -> str:
    """Serialize one module to isom text."""
    return print_module(module)


def from_isom_text(text: str) -> Module:
    """Reconstruct a module from isom text."""
    return parse_module(text)


def is_isom_text(text: str) -> bool:
    """Cheap sniff used by the linker to spot isoms among objects."""
    for line in text.splitlines():
        if line.strip():
            return line.startswith(_MAGIC)
    return False


def write_isom(module: Module, directory: str) -> str:
    """Write ``module`` to ``<directory>/<name>.isom``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, module.name + ISOM_EXTENSION)
    with open(path, "w") as handle:
        handle.write(to_isom_text(module))
    return path


def read_isom(path: str) -> Module:
    with open(path) as handle:
        return from_isom_text(handle.read())


def read_isoms(paths: Iterable[str]) -> List[Module]:
    return [read_isom(path) for path in paths]


def roundtrip_modules(modules: Iterable[Module]) -> List[Module]:
    """Serialize and re-parse modules (the in-memory isom path).

    The cross-module build pipeline routes every module through isom
    text even when nothing touches disk; this keeps the on-disk and
    in-memory paths byte-identical and continuously exercises the
    printer/parser round-trip.
    """
    return [from_isom_text(to_isom_text(m)) for m in modules]
