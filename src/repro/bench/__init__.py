"""Benchmark harness support: cached lab, experiment runners, tables."""

from .lab import SUITE_BUDGET_PERCENT, VARIANTS, Lab, variant_config
from .runner import (
    FIG7_WORKLOADS,
    TABLE1_WORKLOADS,
    ablation_rows,
    fig5_callsites,
    fig6_speedups,
    fig7_simulation,
    fig8_budget_curves,
    scope_anecdote,
    table1_transforms,
)
from .tables import format_table, geometric_mean

__all__ = [
    "FIG7_WORKLOADS",
    "Lab",
    "SUITE_BUDGET_PERCENT",
    "TABLE1_WORKLOADS",
    "VARIANTS",
    "ablation_rows",
    "fig5_callsites",
    "fig6_speedups",
    "fig7_simulation",
    "fig8_budget_curves",
    "format_table",
    "geometric_mean",
    "scope_anecdote",
    "table1_transforms",
    "variant_config",
]
