"""Bounded time-series ring buffers and their JSONL export."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import MetricsRegistry, NullMetrics
from repro.obs.series import (
    DEFAULT_SERIES_CAPACITY,
    Series,
    SeriesBank,
)
from repro.obs.validate import validate_series_jsonl


class TestSeries:
    def test_appends_in_order(self):
        series = Series("fleet.drift", capacity=8)
        for tick in range(5):
            series.append(tick, tick * 0.1)
        assert len(series) == 5
        assert series.dropped == 0
        assert [t for t, _v in series.points()] == [0, 1, 2, 3, 4]
        assert series.last() == (4, pytest.approx(0.4))

    def test_ring_evicts_oldest_and_counts_drops(self):
        series = Series("x", capacity=3)
        for tick in range(7):
            series.append(tick, float(tick))
        assert len(series) == 3
        assert series.dropped == 4
        # Only the newest capacity-many points survive, oldest first.
        assert series.points() == [(4, 4.0), (5, 5.0), (6, 6.0)]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Series("x", capacity=0)


class TestSeriesBank:
    def test_record_creates_and_appends(self):
        bank = SeriesBank()
        bank.record("fleet.drift", 0, 0.1)
        bank.record("fleet.drift", 1, 0.2)
        bank.record("fleet.confidence", 1, 0.9)
        assert bank.names() == ["fleet.confidence", "fleet.drift"]
        assert len(bank.get("fleet.drift")) == 2
        assert bank.get("fleet.drift").capacity == DEFAULT_SERIES_CAPACITY

    def test_per_series_capacity_override(self):
        bank = SeriesBank(capacity=100)
        bank.record("small", 0, 1.0, capacity=2)
        bank.record("small", 1, 2.0)
        bank.record("small", 2, 3.0)
        assert bank.get("small").dropped == 1

    def test_jsonl_round_trip_validates(self, tmp_path):
        bank = SeriesBank()
        for tick in range(4):
            bank.record("fleet.drift", tick, tick * 0.25)
            bank.record("fleet.inst.inst0.pending", tick, tick % 2)
        path = tmp_path / "series.jsonl"
        bank.write_jsonl(str(path))
        text = path.read_text()
        assert validate_series_jsonl(text) == []
        header = json.loads(text.splitlines()[0])
        assert header["kind"] == "series"
        assert header["series"]["fleet.drift"]["points"] == 4

    def test_registry_carries_a_bank(self):
        registry = MetricsRegistry()
        registry.record_series("fleet.drift", 3, 0.5)
        assert registry.series.get("fleet.drift").points() == [(3, 0.5)]

    def test_null_metrics_record_series_is_noop(self):
        NullMetrics().record_series("fleet.drift", 0, 1.0)  # must not raise


class TestValidator:
    def bank(self) -> SeriesBank:
        bank = SeriesBank()
        bank.record("a", 0, 1.0)
        bank.record("a", 1, 2.0)
        return bank

    def test_rejects_empty(self):
        assert validate_series_jsonl("") != []

    def test_rejects_undeclared_series(self):
        text = self.bank().to_jsonl()
        text += json.dumps({"series": "ghost", "tick": 0, "value": 1}) + "\n"
        assert any("ghost" in e for e in validate_series_jsonl(text))

    def test_rejects_point_count_mismatch(self):
        bank = self.bank()
        header = bank.header()
        header["series"]["a"]["points"] = 5
        lines = [json.dumps(header)]
        for tick, value in bank.get("a").points():
            lines.append(json.dumps({"series": "a", "tick": tick, "value": value}))
        errors = validate_series_jsonl("\n".join(lines) + "\n")
        assert any("point" in e for e in errors)

    def test_rejects_non_monotonic_ticks(self):
        bank = self.bank()
        lines = bank.to_jsonl().strip().splitlines()
        # Swap the two points so the ticks go 1, 0.
        lines[1], lines[2] = lines[2], lines[1]
        errors = validate_series_jsonl("\n".join(lines) + "\n")
        assert any("backwards" in e for e in errors)
