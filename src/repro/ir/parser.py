"""Parser for the textual IR / isom format produced by :mod:`printer`."""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .basicblock import BasicBlock
from .instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Jump,
    Load,
    Mov,
    Probe,
    Ret,
    Store,
    UnOp,
)
from .module import GlobalVar, Module
from .ops import BINARY_OPS, UNARY_OPS
from .procedure import Procedure
from .program import Program
from .types import Signature, Type, parse_type
from .values import FuncRef, GlobalRef, Imm, Operand, Reg


class ParseError(Exception):
    """Raised on malformed IR text, with a line number."""

    def __init__(self, lineno: int, message: str):
        super().__init__("line {}: {}".format(lineno, message))
        self.lineno = lineno


_MODULE_RE = re.compile(r'^module\s+"([^"]+)"$')
_EXTERN_RE = re.compile(r"^extern\s+@([\w.$]+)\s+\(([^)]*)\)\s*->\s*(\w+)$")
_GLOBAL_RE = re.compile(
    r"^global\s+\$([\w.$]+)\s+\[(\d+)\]\s+(global|static)(?:\s*=\s*(.*))?$"
)
_PROC_RE = re.compile(
    r"^proc\s+@([\w.$]+)\(([^)]*)\)\s*->\s*(\w+)\s+(global|static)"
    r"(?:\s*\[([^\]]*)\])?\s*\{$"
)
_LABEL_RE = re.compile(r"^([\w.]+):(?:\s*!(\d+))?$")
_CALL_RE = re.compile(r"^call\s+@([\w.$]+)\((.*)\)\s*#(-?\d+)$")
_ICALL_RE = re.compile(r"^icall\s+(\S+)\((.*)\)\s*#(-?\d+)$")
_FLOAT_RE = re.compile(r"^-?(?:\d+\.\d*(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+|\d*\.\d+)$")
_INT_RE = re.compile(r"^-?\d+$")


def parse_operand(text: str, lineno: int = 0) -> Operand:
    text = text.strip()
    if text.startswith("%"):
        return Reg(text[1:])
    if text.startswith("@"):
        return FuncRef(text[1:])
    if text.startswith("$"):
        return GlobalRef(text[1:])
    if _INT_RE.match(text):
        return Imm(int(text))
    if _FLOAT_RE.match(text):
        return Imm(float(text), Type.FLT)
    raise ParseError(lineno, "bad operand: {!r}".format(text))


def _split_args(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [a.strip() for a in text.split(",")]


def parse_instr(line: str, lineno: int = 0):
    """Parse one instruction line (whitespace-stripped)."""
    dest: Optional[Reg] = None
    rest = line.strip()
    eq = re.match(r"^(%[\w.]+)\s*=\s*(.*)$", rest)
    if eq:
        dest = Reg(eq.group(1)[1:])
        rest = eq.group(2).strip()

    if rest.startswith("call"):
        m = _CALL_RE.match(rest)
        if not m:
            raise ParseError(lineno, "bad call: {!r}".format(line))
        args = [parse_operand(a, lineno) for a in _split_args(m.group(2))]
        return Call(dest, m.group(1), args, int(m.group(3)))
    if rest.startswith("icall"):
        m = _ICALL_RE.match(rest)
        if not m:
            raise ParseError(lineno, "bad icall: {!r}".format(line))
        func = parse_operand(m.group(1), lineno)
        args = [parse_operand(a, lineno) for a in _split_args(m.group(2))]
        return ICall(dest, func, args, int(m.group(3)))

    parts = rest.split(None, 1)
    op = parts[0]
    tail = parts[1] if len(parts) > 1 else ""

    if op == "mov":
        return Mov(_need(dest, lineno), parse_operand(tail, lineno))
    if op in UNARY_OPS:
        return UnOp(_need(dest, lineno), op, parse_operand(tail, lineno))
    if op in BINARY_OPS:
        args = _split_args(tail)
        if len(args) != 2:
            raise ParseError(lineno, "binop needs two operands: {!r}".format(line))
        return BinOp(
            _need(dest, lineno),
            op,
            parse_operand(args[0], lineno),
            parse_operand(args[1], lineno),
        )
    if op == "load":
        m = re.match(r"^\[(.+)\]$", tail.strip())
        if not m:
            raise ParseError(lineno, "bad load: {!r}".format(line))
        return Load(_need(dest, lineno), parse_operand(m.group(1), lineno))
    if op == "store":
        m = re.match(r"^\[(.+)\]\s*,\s*(.+)$", tail.strip())
        if not m:
            raise ParseError(lineno, "bad store: {!r}".format(line))
        return Store(parse_operand(m.group(1), lineno), parse_operand(m.group(2), lineno))
    if op == "alloca":
        return Alloca(_need(dest, lineno), parse_operand(tail, lineno))
    if op == "jmp":
        return Jump(tail.strip())
    if op == "br":
        args = _split_args(tail)
        if len(args) != 3:
            raise ParseError(lineno, "bad br: {!r}".format(line))
        return Branch(parse_operand(args[0], lineno), args[1], args[2])
    if op == "ret":
        tail = tail.strip()
        return Ret(parse_operand(tail, lineno) if tail else None)
    if op == "probe":
        return Probe(int(tail.strip()))
    raise ParseError(lineno, "unknown instruction: {!r}".format(line))


def _need(dest: Optional[Reg], lineno: int) -> Reg:
    if dest is None:
        raise ParseError(lineno, "instruction requires a destination register")
    return dest


def parse_module(text: str) -> Module:
    """Parse one module's textual form back into a :class:`Module`."""
    mod: Optional[Module] = None
    proc: Optional[Procedure] = None
    block: Optional[BasicBlock] = None
    max_site = -1

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith(";"):
            continue

        if line.startswith("module"):
            m = _MODULE_RE.match(line)
            if not m:
                raise ParseError(lineno, "bad module header")
            if mod is not None:
                raise ParseError(lineno, "multiple module headers")
            mod = Module(m.group(1))
            continue

        if mod is None:
            raise ParseError(lineno, "content before module header")

        if proc is None:
            if line.startswith("extern"):
                m = _EXTERN_RE.match(line)
                if not m:
                    raise ParseError(lineno, "bad extern")
                name, params_text, ret = m.group(1), m.group(2), m.group(3)
                varargs = False
                ptypes: List[Type] = []
                for part in _split_args(params_text):
                    if part == "...":
                        varargs = True
                    elif part:
                        ptypes.append(parse_type(part))
                mod.declare_extern(name, Signature(tuple(ptypes), parse_type(ret), varargs))
                continue
            if line.startswith("global"):
                m = _GLOBAL_RE.match(line)
                if not m:
                    raise ParseError(lineno, "bad global")
                init: List = []
                if m.group(4):
                    for word in m.group(4).split():
                        init.append(float(word) if _FLOAT_RE.match(word) else int(word))
                mod.add_global(
                    GlobalVar(m.group(1), int(m.group(2)), init, linkage=m.group(3))
                )
                continue
            if line.startswith("proc"):
                proc = _parse_proc_header(line, lineno)
                mod.add_proc(proc)
                block = None
                continue
            raise ParseError(lineno, "unexpected line at module scope: {!r}".format(line))

        # Inside a procedure body.
        if line == "}":
            if block is None:
                raise ParseError(lineno, "empty procedure body")
            proc = None
            block = None
            continue
        label = _LABEL_RE.match(line)
        if label:
            block = proc.add_block(BasicBlock(label.group(1)))
            if label.group(2) is not None:
                block.profile_count = int(label.group(2))
            continue
        if block is None:
            raise ParseError(lineno, "instruction before first label")
        instr = parse_instr(line, lineno)
        block.instrs.append(instr)
        site = getattr(instr, "site_id", None)
        if site is not None:
            max_site = max(max_site, site)

    if mod is None:
        raise ParseError(0, "no module header found")
    if proc is not None:
        raise ParseError(0, "unterminated procedure body")
    mod.bump_site_counter(max_site + 1)
    return mod


def _parse_proc_header(line: str, lineno: int) -> Procedure:
    m = _PROC_RE.match(line)
    if not m:
        raise ParseError(lineno, "bad proc header: {!r}".format(line))
    name, params_text, ret, linkage, attrs_text = m.groups()
    params: List[Tuple[str, Type]] = []
    for part in _split_args(params_text):
        if not part:
            continue
        pm = re.match(r"^%([\w.]+)\s*:\s*(\w+)$", part)
        if not pm:
            raise ParseError(lineno, "bad parameter: {!r}".format(part))
        params.append((pm.group(1), parse_type(pm.group(2))))
    attrs = set()
    if attrs_text:
        attrs = {a.strip() for a in attrs_text.split(",") if a.strip()}
    return Procedure(name, params, parse_type(ret), linkage=linkage, attrs=attrs)


def parse_program(text: str) -> Program:
    """Parse a multi-module dump (modules separated by their headers)."""
    program = Program()
    chunks: List[List[str]] = []
    for raw in text.splitlines():
        if raw.startswith("module "):
            chunks.append([raw])
        elif chunks:
            chunks[-1].append(raw)
        elif raw.strip():
            raise ParseError(1, "content before first module header")
    for chunk in chunks:
        program.add_module(parse_module("\n".join(chunk)))
    return program
