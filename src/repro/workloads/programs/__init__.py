"""The ten SPEC-analog workload programs (see each module's docstring)."""

from . import (
    compress,
    eqntott,
    espresso,
    go,
    ijpeg,
    li,
    m88ksim,
    perl,
    sc,
    vortex,
)

_MODULES = (compress, eqntott, espresso, go, ijpeg, li, m88ksim, perl, sc, vortex)


def register_all() -> None:
    """Register every workload with the suite registry (idempotent per
    process because the registry rejects duplicates and suite calls this
    only when empty)."""
    for module in _MODULES:
        module.register_workload()


__all__ = ["register_all"]
