"""PA8000-style machine model: layout, caches, branch prediction, cycles."""

from .branch import TwoBitPredictor
from .cache import DirectMappedCache
from .layout import CODE_BASE, INSTR_BYTES, CodeLayout
from .metrics import MachineMetrics
from .pa8000 import MachineConfig, PA8000Model, simulate

__all__ = [
    "CODE_BASE",
    "CodeLayout",
    "DirectMappedCache",
    "INSTR_BYTES",
    "MachineConfig",
    "MachineMetrics",
    "PA8000Model",
    "TwoBitPredictor",
    "simulate",
]
