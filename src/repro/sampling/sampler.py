"""The sampling profiler: hardware-counter-style profile collection.

Exact instrumentation (:mod:`repro.profile.instrument`) rewrites the
program — one probe per basic block — and pays for it at both compile
and run time.  Hardware-counted PGO (Wicht et al.) shows the other end
of the spectrum: *sample* the running program every N events and scale
the observations back up.  The estimates are noisy where the evidence
is thin, but the hot paths that actually drive inlining and cloning
decisions accumulate samples fast, so the decisions themselves converge
on the instrumented ones at a fraction of the collection cost.

:class:`SamplingSink` plugs into the interpreter's existing event
stream (:class:`~repro.interp.events.EventSink`) — the program under
measurement is *not* modified.  Every instruction event advances a
countdown; when it expires a sample is taken: the current (procedure,
block) is recorded together with the k-deep *calling context* read off
a shadow call stack maintained from the call/return events.  The
countdown is re-armed to the nominal rate plus seeded jitter, which
breaks the lockstep resonance a fixed period develops with loop bodies
whose trip length divides the period (the classic sampling-bias
failure; hardware profilers randomize the counter for the same
reason).  The seed makes every run reproducible.

Call *sites* are counted exactly rather than estimated: every executed
call instruction already passes through the event stream, so tallying
it is one increment on an event the sink receives anyway — the
software analogue of a branch-record buffer (LBR) riding alongside the
cycle counter.  This matters because call-site counts feed the
inliner's benefit ranking *directly* and a moderately-hot site spans
only a handful of samples, where Poisson noise is worst; block counts
tolerate sampling because only their entry-relative ratios are
consumed.

:class:`SampledProfile` accumulates one or more sampled runs and
converts them into a :class:`~repro.profile.ProfileDatabase`: raw
sample observations are scaled by the measured events-per-sample rate
into estimated block counts, exact call tallies become the site
counts, and the raw observation counts and context attributions ride
along as the v3 ``obs``/``ctx`` records that give downstream consumers
per-count confidence and context-sensitive estimates.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence, Tuple, Union

from ..analysis.callgraph import CallGraph
from ..analysis.dominators import control_equivalent_classes
from ..frontend.driver import SourceList, compile_program
from ..interp.events import EventSink
from ..interp.interpreter import DEFAULT_ENGINE, DEFAULT_MAX_STEPS, run_program
from ..ir.instructions import CALL_INSTRS
from ..ir.program import Program
from ..profile.database import BlockKey, Context, ProfileDatabase
from ..profile.fingerprint import fingerprint_program

DEFAULT_SAMPLE_RATE = 100
DEFAULT_CONTEXT_DEPTH = 2
DEFAULT_JITTER = 0.2

InputVector = Sequence[Union[int, float]]
SiteKey = Tuple[str, int]


class SamplingSink(EventSink):
    """Samples the interpreter event stream every ~``rate`` steps.

    ``rate``
        Nominal events between samples (1 = sample every instruction).
    ``context_depth``
        How many enclosing callers each sample records (k).  0 disables
        context collection entirely.
    ``seed`` / ``jitter``
        The jitter PRNG seed and spread: each inter-sample gap is drawn
        uniformly from ``rate ± rate*jitter``.  The same seed replays
        the same sample points over the same execution.
    """

    # The sampler reads instructions, calls, and returns; it never looks
    # at branch or memory traffic, so the pre-decoded engine can skip
    # those callbacks entirely.  ``on_instr`` must stay exact and
    # in-order (the countdown defines *which* instruction each sample
    # lands on), so batching stays off.
    needs_branch = False
    needs_mem = False

    def __init__(
        self,
        rate: int = DEFAULT_SAMPLE_RATE,
        context_depth: int = DEFAULT_CONTEXT_DEPTH,
        seed: int = 0,
        jitter: float = DEFAULT_JITTER,
    ) -> None:
        if rate < 1:
            raise ValueError("sample rate must be >= 1")
        if context_depth < 0:
            raise ValueError("context depth must be >= 0")
        self.rate = rate
        self.context_depth = context_depth
        self.seed = seed
        self.jitter = jitter
        self.events = 0
        self.samples = 0
        self.block_samples: Dict[BlockKey, int] = {}
        self.context_samples: Dict[BlockKey, Dict[Context, int]] = {}
        self.site_hits: Dict[SiteKey, int] = {}
        self._rng = random.Random(seed)
        self._spread = max(1, int(round(rate * jitter))) if rate > 1 else 0
        self._stack: list = []  # shadow call stack of caller names
        self._gap = self._next_gap()

    def _next_gap(self) -> int:
        if self._spread == 0:
            return self.rate
        return max(1, self.rate + self._rng.randint(-self._spread, self._spread))

    # -- EventSink callbacks -------------------------------------------

    def on_instr(self, proc, label, index, instr) -> None:
        self.events += 1
        if isinstance(instr, CALL_INSTRS):
            # Exact call-edge tally (the LBR analogue): not subject to
            # the sampling countdown — see the module docstring.
            site = (proc.module, instr.site_id)
            self.site_hits[site] = self.site_hits.get(site, 0) + 1
        self._gap -= 1
        if self._gap <= 0:
            self._gap = self._next_gap()
            self._take_sample(proc.name, label)

    def on_call(self, caller, callee_name, kind, n_args) -> None:
        # Builtins never produce a matching on_return (no frame is
        # pushed), so they must not grow the shadow stack.
        if kind != "builtin":
            self._stack.append(caller.name)

    def on_return(self, callee_name, caller) -> None:
        if self._stack:
            self._stack.pop()

    # -- Internals -----------------------------------------------------

    def _take_sample(self, proc_name: str, label: str) -> None:
        self.samples += 1
        key = (proc_name, label)
        self.block_samples[key] = self.block_samples.get(key, 0) + 1
        if self.context_depth:
            if self.context_depth == 1:
                context: Context = (
                    (self._stack[-1],) if self._stack else ()
                )
            else:
                context = tuple(self._stack[-self.context_depth:][::-1])
            per = self.context_samples.setdefault(key, {})
            per[context] = per.get(context, 0) + 1

    def reset_stack(self) -> None:
        """Forget the shadow stack (call between independent runs: a
        run that ends via ``exit()`` leaves frames un-returned)."""
        self._stack = []

    @property
    def effective_rate(self) -> float:
        """Measured events-per-sample (≈ the nominal rate)."""
        return self.events / self.samples if self.samples else 0.0


class SampledProfile:
    """Accumulated sampled runs, convertible to a profile database."""

    def __init__(
        self,
        rate: int = DEFAULT_SAMPLE_RATE,
        context_depth: int = DEFAULT_CONTEXT_DEPTH,
        seed: int = 0,
        jitter: float = DEFAULT_JITTER,
    ) -> None:
        self.rate = rate
        self.context_depth = context_depth
        self.seed = seed
        self.jitter = jitter
        self.runs = 0
        self.steps = 0
        self.events = 0
        self.samples = 0
        self.block_samples: Dict[BlockKey, int] = {}
        self.context_samples: Dict[BlockKey, Dict[Context, int]] = {}
        self.site_hits: Dict[SiteKey, int] = {}

    def make_sink(self) -> SamplingSink:
        """A fresh sink for one run; the seed advances per run so
        repeated identical runs do not sample identical points."""
        return SamplingSink(
            self.rate, self.context_depth, seed=self.seed + self.runs,
            jitter=self.jitter,
        )

    def absorb(self, sink: SamplingSink, steps: int = 0) -> None:
        """Fold one finished run's samples into the accumulator."""
        self.runs += 1
        self.steps += steps
        self.events += sink.events
        self.samples += sink.samples
        for key, n in sink.block_samples.items():
            self.block_samples[key] = self.block_samples.get(key, 0) + n
        for key, per in sink.context_samples.items():
            merged = self.context_samples.setdefault(key, {})
            for ctx, n in per.items():
                merged[ctx] = merged.get(ctx, 0) + n
        for site, n in sink.site_hits.items():
            self.site_hits[site] = self.site_hits.get(site, 0) + n

    @property
    def effective_rate(self) -> float:
        # With zero samples (a run far shorter than the rate) fall back
        # to the nominal rate so the database still records what was
        # asked for instead of a meaningless "rate 1/0".
        return self.events / self.samples if self.samples else float(self.rate)

    def to_database(self, program: Program) -> ProfileDatabase:
        """Scale the samples into count estimates against ``program``.

        ``program`` must be (a fresh compile of) the measured program:
        its call sites give the zero-count entries for sites never
        executed (the instrumented pipeline records those too, and the
        heuristic fallback in ``site_weight`` must not re-estimate a
        site the profiler *observed* to be cold), and its procedures
        are fingerprinted for the lifecycle layer's staleness
        detection.

        A sample lands on an *instruction*, so a block's sample tally
        is proportional to executions × block length; dividing by the
        block's instruction count removes the length bias and leaves an
        estimate of the execution count itself.  Before that, sample
        evidence is *pooled* across each control-equivalence class of
        the CFG (flow smoothing, as hardware-sample PGO pipelines do):
        blocks whose true counts are provably equal share one pooled
        estimate instead of two independent noisy draws, which keeps
        the inliner's entry-relative ratios at exactly 1.0 where exact
        instrumentation would measure 1.0.  Site counts are not
        estimates at all — they are the sink's exact call tallies.
        """
        scale = self.effective_rate
        sizes: Dict[BlockKey, int] = {
            (proc.name, label): max(1, len(block.instrs))
            for proc in program.all_procs()
            for label, block in proc.blocks.items()
        }
        db = ProfileDatabase()
        db.sampled = True
        db.sample_rate = scale
        db.context_depth = self.context_depth
        db.sampled_events = self.events
        db.sample_count = self.samples
        db.training_runs = self.runs
        db.training_steps = self.steps
        # Exact entry counts by flow conservation: a procedure's entry
        # block executes once per incoming call, and calls are tallied
        # exactly.  ``main`` additionally runs once per training run.
        graph = CallGraph(program)
        entry_exact: Dict[str, int] = {}
        for proc in program.all_procs():
            incoming = graph.callers_of(proc.name)
            if not incoming and proc.name != "main":
                continue
            entry_exact[proc.name] = sum(
                self.site_hits.get(site.key, 0) for site in incoming
            ) + (self.runs if proc.name == "main" else 0)
        smoothed: set = set()
        for proc in program.all_procs():
            entry_cls: Optional[int] = entry_exact.get(proc.name)
            for cls in control_equivalent_classes(proc):
                keys = [(proc.name, label) for label in cls]
                smoothed.update(keys)
                if proc.entry in cls and entry_cls is not None:
                    # The entry's whole class shares the exact count —
                    # including an exact 0 for observed-cold procedures,
                    # which the instrumented pipeline records too.
                    for k in keys:
                        db.block_counts[k] = entry_cls
                    continue
                pooled = sum(self.block_samples.get(k, 0) for k in keys)
                if pooled == 0:
                    continue
                pooled_size = sum(sizes[k] for k in keys)
                estimate = max(1, int(round(pooled * scale / pooled_size)))
                for k in keys:
                    db.block_counts[k] = estimate
        for key, n in self.block_samples.items():
            db.block_samples[key] = n
            if key not in smoothed:
                # A sampled block outside the compiled program's CFG
                # (stale key) falls back to the per-block estimate.
                size = sizes.get(key, 1)
                db.block_counts[key] = max(1, int(round(n * scale / size)))
        for key, per in self.context_samples.items():
            size = sizes.get(key, 1)
            db.context_counts[key] = {
                ctx: max(1, int(round(n * scale / size)))
                for ctx, n in per.items()
            }
        db.site_counts = dict(self.site_hits)
        for mod in program.modules.values():
            for proc in mod.procs.values():
                for block in proc.blocks.values():
                    for instr in block.instrs:
                        if isinstance(instr, CALL_INSTRS):
                            db.site_counts.setdefault((mod.name, instr.site_id), 0)
        db.fingerprints.update(fingerprint_program(program))
        return db


def sample_run(
    program: Program,
    inputs: InputVector = (),
    profile: Optional[SampledProfile] = None,
    entry: str = "main",
    max_steps: int = DEFAULT_MAX_STEPS,
    rate: int = DEFAULT_SAMPLE_RATE,
    context_depth: int = DEFAULT_CONTEXT_DEPTH,
    seed: int = 0,
    engine: str = DEFAULT_ENGINE,
) -> SampledProfile:
    """Execute ``program`` once under the sampler; returns the profile.

    Pass an existing ``profile`` to accumulate several runs (training
    sets); its rate/depth/seed settings then govern the run.
    """
    acc = profile if profile is not None else SampledProfile(
        rate, context_depth, seed
    )
    sink = acc.make_sink()
    result = run_program(
        program, inputs, entry=entry, sink=sink, max_steps=max_steps,
        engine=engine,
    )
    acc.absorb(sink, result.steps)
    return acc


def sample_train(
    sources: SourceList,
    training_inputs: Sequence[InputVector],
    rate: int = DEFAULT_SAMPLE_RATE,
    context_depth: int = DEFAULT_CONTEXT_DEPTH,
    seed: int = 0,
    entry: str = "main",
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = DEFAULT_ENGINE,
) -> ProfileDatabase:
    """The sampled twin of :func:`repro.profile.pgo.train`.

    One compile (no instrumentation — the program is run as-is) and one
    sampled run per training vector, folded into a single database.
    """
    acc = SampledProfile(rate, context_depth, seed)
    program = compile_program(sources)
    for inputs in training_inputs:
        sample_run(
            program, inputs, profile=acc, entry=entry, max_steps=max_steps,
            engine=engine,
        )
    # Fingerprint/site-derive against a clean compile (the measured
    # image was never mutated, but a fresh compile keeps the invariant
    # obvious and matches the exact pipeline's fresh-recompile shape).
    return acc.to_database(compile_program(sources))
