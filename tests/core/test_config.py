"""HLOConfig knob helpers and defaults."""

from repro.core import HLOConfig


class TestDefaults:
    def test_paper_defaults(self):
        cfg = HLOConfig()
        # "By default the inliner will try to limit compile-time
        # increases to 100% over no inlining."
        assert cfg.budget_percent == 100.0
        assert cfg.pass_limit == 4
        assert cfg.enable_inlining and cfg.enable_cloning
        assert cfg.use_profile and cfg.cross_module
        assert not cfg.enable_outlining  # Section 5 future work: opt-in

    def test_with_scope_copies(self):
        cfg = HLOConfig()
        module_scope = cfg.with_scope(cross_module=False, use_profile=False)
        assert not module_scope.cross_module and not module_scope.use_profile
        # The original is untouched (dataclasses.replace semantics).
        assert cfg.cross_module and cfg.use_profile

    def test_variant_helpers(self):
        cfg = HLOConfig()
        assert not cfg.inline_only().enable_cloning
        assert cfg.inline_only().enable_inlining
        assert not cfg.clone_only().enable_inlining
        assert cfg.clone_only().enable_cloning
        neither = cfg.neither()
        assert not neither.enable_inlining and not neither.enable_cloning

    def test_helpers_preserve_other_knobs(self):
        cfg = HLOConfig(budget_percent=250.0, cold_penalty=0.5)
        for derived in (cfg.inline_only(), cfg.clone_only(), cfg.neither(),
                        cfg.with_scope(False, True)):
            assert derived.budget_percent == 250.0
            assert derived.cold_penalty == 0.5


class TestBuildStatsWallClock:
    def test_wall_seconds_recorded(self):
        from repro.linker import Toolchain

        tc = Toolchain([("m", "int main() { return 0; }")])
        result = tc.build("c")
        assert result.stats.wall_seconds > 0.0
