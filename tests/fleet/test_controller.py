"""The reoptimize controller: gates, canary, swap, rollback ladder."""

from __future__ import annotations

import pytest

from repro.fleet import ReoptimizeController
from repro.linker.toolchain import Toolchain
from repro.resilience import FaultInjector

from .conftest import REF_INPUT, TRAIN_INPUTS


@pytest.fixture
def toolchain(sources):
    return Toolchain(sources, train_inputs=TRAIN_INPUTS)


@pytest.fixture
def exact_profile(toolchain):
    """The exact cp profile — what steady-state merged evidence becomes."""
    return toolchain.build("cp").profile


def make_controller(toolchain, **kwargs):
    kwargs.setdefault("min_confidence", 0.0)
    return ReoptimizeController(toolchain, canary_inputs=REF_INPUT, **kwargs)


class TestGates:
    def test_consider_requires_initial_build(self, toolchain):
        with pytest.raises(RuntimeError):
            make_controller(toolchain).consider(None, epoch=0)

    def test_initial_build_serves_build_zero_unprofiled(self, toolchain):
        controller = make_controller(toolchain)
        served = controller.initial_build()
        assert served.build_id == 0
        assert controller.current.profile is None

    def test_no_evidence_is_a_no_op(self, toolchain):
        controller = make_controller(toolchain)
        controller.initial_build()
        action = controller.consider(None, epoch=0)
        assert action.reason == "no-evidence"
        assert not action.rebuilt

    def test_low_confidence_gate_blocks_rebuild(self, toolchain, exact_profile):
        controller = make_controller(toolchain, min_confidence=1.1)
        controller.initial_build()
        exact_profile.sampled = True  # the gate applies to sampled merges
        action = controller.consider(exact_profile, epoch=0)
        assert action.reason == "low-confidence"
        assert not action.rebuilt

    def test_drift_below_threshold_after_swap(self, toolchain, exact_profile):
        controller = make_controller(toolchain)
        controller.initial_build()
        swap = controller.consider(exact_profile, epoch=0)
        assert swap.reason == "swap"
        # Same evidence again: the serving build's profile matches it.
        steady = controller.consider(exact_profile, epoch=1)
        assert steady.reason == "drift-below-threshold"
        assert controller.rebuilds == 1


class TestSwapAndRollback:
    def test_unprofiled_build_plus_evidence_swaps(self, toolchain, exact_profile):
        controller = make_controller(toolchain)
        controller.initial_build()
        action = controller.consider(exact_profile, epoch=0)
        assert action.rebuilt and action.swapped is not None
        assert action.swapped.build_id == 1
        assert controller.current.build_id == 1
        assert controller.swaps == 1 and controller.rollbacks == 0

    def test_injected_canary_trap_rolls_back(self, toolchain, exact_profile):
        injector = FaultInjector(seed=0, canary_trap_epochs=(1,))
        controller = make_controller(toolchain, injector=injector)
        controller.initial_build()
        action = controller.consider(exact_profile, epoch=0)
        assert action.rolled_back and action.swapped is None
        assert action.reason == "rollback:trap (injected)"
        assert action.quarantine_epoch == 0
        # Still serving build 0; build 1 is condemned forever.
        assert controller.current.build_id == 0
        assert controller.rolled_back == {1}

    def test_rollback_enters_cooldown(self, toolchain, exact_profile):
        injector = FaultInjector(seed=0, canary_trap_epochs=(1,))
        controller = make_controller(
            toolchain, injector=injector, cooldown_rounds=2
        )
        controller.initial_build()
        controller.consider(exact_profile, epoch=0)
        assert controller.consider(exact_profile, epoch=1).reason == "cooldown"
        assert controller.consider(exact_profile, epoch=1).reason == "cooldown"
        # Cooldown over: the next attempt (build 2) is clean and ships.
        recovered = controller.consider(exact_profile, epoch=1)
        assert recovered.swapped is not None
        assert recovered.swapped.build_id == 2

    def test_cycle_regression_rolls_back(self, toolchain, exact_profile):
        # A negative limit condemns any candidate that is not strictly
        # faster than the serving build by >50% — a guaranteed trip.
        controller = make_controller(toolchain, regression_limit=-0.5)
        controller.initial_build()
        action = controller.consider(exact_profile, epoch=0)
        assert action.rolled_back
        assert action.reason.startswith("rollback:cycle-regression")

    def test_ledger_anomaly_rolls_back(self, toolchain, exact_profile):
        controller = make_controller(toolchain)
        controller.initial_build()
        real = toolchain.rebuild_with_profile

        def tampered(profile, scope="cp", config=None, observer=None):
            result = real(profile, scope=scope, config=config, observer=observer)
            result.report.sites_considered += 1  # ledger can't match now
            return result

        toolchain.rebuild_with_profile = tampered
        action = controller.consider(exact_profile, epoch=0)
        assert action.rolled_back
        assert action.reason.startswith("rollback:ledger-anomaly")

    def test_history_records_every_decision(self, toolchain, exact_profile):
        injector = FaultInjector(seed=0, canary_trap_epochs=(1,))
        controller = make_controller(
            toolchain, injector=injector, cooldown_rounds=0
        )
        controller.initial_build()
        controller.consider(exact_profile, epoch=0)
        controller.consider(exact_profile, epoch=1)
        assert controller.history == [
            "serve build 0 (unprofiled bootstrap)",
            "rollback build 1 (trap (injected)); quarantine epoch 0",
            "swap to build 2 (epoch 1)",
        ]


class TestRebuildWithProfile:
    def test_matches_exact_cp_build_decisions(self, toolchain, exact_profile):
        from repro.fleet import decision_set

        rebuilt = toolchain.rebuild_with_profile(exact_profile)
        exact = toolchain.build("cp")
        assert decision_set(rebuilt.report) == decision_set(exact.report)

    def test_rejects_profileless_scope(self, toolchain, exact_profile):
        with pytest.raises(ValueError):
            toolchain.rebuild_with_profile(exact_profile, scope="c")
