"""The observability CLI flags, end to end through ``repro.cli.main``."""

import json

import pytest

from repro.cli import main
from repro.obs.validate import (
    validate_ledger_jsonl,
    validate_metrics,
    validate_trace,
)

PROGRAM = """
int twice(int x) { return x * 2; }
int add3(int x) { return x + 3; }
int main() {
  int n = input(0);
  print_int(twice(n) + add3(n));
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


class TestTraceOut:
    def test_writes_valid_chrome_trace(self, source_file, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        code = main(["compile", source_file, "--trace-out", str(trace)])
        assert code == 0
        obj = json.loads(trace.read_text())
        assert validate_trace(obj) == []
        names = [e["name"] for e in obj["traceEvents"]]
        assert "build" in names
        assert "hlo" in names

    def test_jobs_build_merges_worker_rows(self, source_file, tmp_path, capsys):
        # Two modules so the pool actually fans out.
        lib = tmp_path / "lib.mc"
        lib.write_text("int helper(int x) { return x + 1; }\n")
        trace = tmp_path / "trace.json"
        code = main([
            "compile", source_file, str(lib), "--no-hlo",
            "--jobs", "2", "--trace-out", str(trace),
        ])
        assert code == 0
        obj = json.loads(trace.read_text())
        assert validate_trace(obj) == []
        module_spans = [
            e for e in obj["traceEvents"]
            if e.get("ph") == "X" and e["name"].startswith("module:")
        ]
        assert len(module_spans) == 2
        assert all(e["tid"] != 0 for e in module_spans)


class TestMetricsOut:
    def test_writes_valid_metrics(self, source_file, tmp_path, capsys):
        metrics = tmp_path / "metrics.json"
        code = main(["compile", source_file, "--metrics-out", str(metrics)])
        assert code == 0
        obj = json.loads(metrics.read_text())
        assert validate_metrics(obj) == []
        assert "hlo.sites_considered" in obj["counters"]


class TestExplainInlining:
    def test_prints_ledger_text(self, source_file, capsys):
        code = main(["report", source_file, "--explain-inlining"])
        assert code == 0
        out = capsys.readouterr().out
        assert "inlining ledger:" in out
        assert "call-site evaluations" in out

    def test_jsonl_out_is_valid_and_complete(self, source_file, tmp_path,
                                             capsys):
        ledger = tmp_path / "ledger.jsonl"
        code = main([
            "report", source_file, "--explain-inlining-out", str(ledger),
        ])
        assert code == 0
        text = ledger.read_text()
        assert validate_ledger_jsonl(text) == []
        header = json.loads(text.splitlines()[0])
        assert header["considered"] > 0


class TestFlameOut:
    def test_run_writes_valid_speedscope(self, source_file, tmp_path, capsys):
        from repro.obs.validate import validate_flame

        flame = tmp_path / "flame.json"
        code = main([
            "run", source_file, "--inputs", "5",
            "--flame-out", str(flame), "--flame-rate", "1",
        ])
        assert code == 0
        doc = json.loads(flame.read_text())
        assert validate_flame(doc) == []
        profile = doc["profiles"][0]
        assert profile["endValue"] == sum(profile["weights"])

    def test_flame_out_conflicts_with_simulate(self, source_file, tmp_path):
        with pytest.raises(SystemExit, match="--simulate"):
            main([
                "run", source_file, "--inputs", "5", "--simulate",
                "--flame-out", str(tmp_path / "flame.json"),
            ])

    def test_profile_flame_subcommand(self, source_file, tmp_path, capsys):
        from repro.obs.validate import validate_flame

        out = tmp_path / "flame.json"
        code = main([
            "profile", "flame", source_file, "--inputs", "5",
            "--rate", "1", "-o", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "runtime profile:" in stdout
        assert "wrote" in stdout
        assert validate_flame(json.loads(out.read_text())) == []

    def test_profile_flame_collapsed_extension(self, source_file, tmp_path,
                                               capsys):
        out = tmp_path / "flame.folded"
        code = main([
            "profile", "flame", source_file, "--inputs", "5",
            "--rate", "1", "-o", str(out),
        ])
        assert code == 0
        line = out.read_text().strip().splitlines()[0]
        stack, _sep, weight = line.rpartition(" ")
        assert stack.startswith("main")
        assert int(weight) >= 1


class TestVerbosity:
    def test_quiet_suppresses_warnings(self, source_file, tmp_path, capsys):
        bad = tmp_path / "bad.profdb"
        bad.write_text("not a profile db")
        code = main([
            "compile", source_file, "--scope", "p", "--profile", str(bad),
            "--verbosity", "quiet",
        ])
        assert code == 0
        assert "warning:" not in capsys.readouterr().err

    def test_normal_keeps_warnings(self, source_file, tmp_path, capsys):
        bad = tmp_path / "bad.profdb"
        bad.write_text("not a profile db")
        code = main([
            "compile", source_file, "--scope", "p", "--profile", str(bad),
        ])
        assert code == 0
        assert "warning:" in capsys.readouterr().err

    def test_rejects_unknown_level(self, source_file):
        with pytest.raises(SystemExit):
            main(["compile", source_file, "--verbosity", "shouting"])


class TestDisabledPath:
    def test_no_flags_writes_nothing(self, source_file, tmp_path, capsys):
        code = main(["compile", source_file])
        assert code == 0
        assert list(tmp_path.glob("*.json")) == []
