"""IR interpreter: execution engines, events, memory, errors."""

from .diff import OPTIMIZED_ENGINES, assert_identical, diff_engines, run_outcome
from .errors import ExecError, StepLimitExceeded
from .events import CountingSink, EventSink, RecordingSink
from .interpreter import (
    DEFAULT_ENGINE,
    DEFAULT_MAX_STEPS,
    ENGINES,
    Interpreter,
    Result,
    run_program,
)
from .memory import GLOBAL_BASE, HEAP_BASE, STACK_BASE, CodePtr, Memory

__all__ = [
    "CodePtr",
    "CountingSink",
    "DEFAULT_ENGINE",
    "DEFAULT_MAX_STEPS",
    "ENGINES",
    "EventSink",
    "ExecError",
    "GLOBAL_BASE",
    "HEAP_BASE",
    "Interpreter",
    "Memory",
    "OPTIMIZED_ENGINES",
    "RecordingSink",
    "Result",
    "STACK_BASE",
    "StepLimitExceeded",
    "assert_identical",
    "diff_engines",
    "run_outcome",
    "run_program",
]
