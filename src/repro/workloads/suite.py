"""The workload suite: ten SPEC-analog programs written in minic.

We cannot ship SPEC sources, so each workload reproduces the
*structural* property that made its SPEC counterpart interesting to the
paper (see DESIGN.md's substitution table): interpreter dispatch in
``li``, a no-op curses module in ``sc``, function-pointer pattern
scoring in ``go``, tiny accessors in ``vortex``, and so on.  Every
workload is multi-module (cross-module inlining must matter), has
training and reference inputs of different sizes, and prints a checksum
so behaviour preservation is machine-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..frontend.driver import compile_program
from ..ir.program import Program


@dataclass(frozen=True)
class Workload:
    """One benchmark program: sources plus train/ref inputs.

    ``suites`` tags the workload with the SPEC generation(s) its analog
    belongs to ("92", "95"), so Figure 6 can report the paper's two
    geometric-mean rows.
    """

    name: str
    spec_analog: str
    description: str
    sources: Tuple[Tuple[str, str], ...]
    train_inputs: Tuple[Tuple[int, ...], ...]
    ref_input: Tuple[int, ...]
    suites: Tuple[str, ...] = ("92", "95")

    def compile(self) -> Program:
        """A fresh, unoptimized compile of the workload."""
        return compile_program(list(self.sources))

    def source_dict(self) -> Dict[str, str]:
        return dict(self.sources)


_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError("duplicate workload {!r}".format(workload.name))
    _REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            "unknown workload {!r}; available: {}".format(name, workload_names())
        )


def workload_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def all_workloads() -> List[Workload]:
    _ensure_loaded()
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def _ensure_loaded() -> None:
    if _REGISTRY:
        return
    from .programs import register_all

    register_all()
