"""Workload registry and per-program sanity."""

import pytest

from repro.core import HLOConfig, run_hlo
from repro.interp import run_program
from repro.ir import verify_program
from repro.workloads import all_workloads, get_workload, workload_names

EXPECTED = {
    "compress", "eqntott", "espresso", "go", "ijpeg", "li", "m88ksim",
    "perl", "sc", "vortex",
}


class TestRegistry:
    def test_all_expected_present(self):
        assert set(workload_names()) == EXPECTED

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_workload("doom")

    def test_workloads_have_inputs(self):
        for w in all_workloads():
            assert w.train_inputs
            assert w.ref_input
            assert w.spec_analog


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestEachWorkload:
    def test_compiles_and_verifies(self, name):
        program = get_workload(name).compile()
        verify_program(program)
        assert program.proc("main") is not None
        assert len(program.modules) >= 2, "workloads must be multi-module"

    def test_train_run_deterministic(self, name):
        w = get_workload(name)
        first = run_program(w.compile(), w.train_inputs[0], max_steps=2_000_000)
        second = run_program(w.compile(), w.train_inputs[0], max_steps=2_000_000)
        assert first.behavior() == second.behavior()
        assert first.output, "workloads must print a checksum"

    def test_hlo_preserves_behavior_on_train_input(self, name):
        w = get_workload(name)
        reference = run_program(w.compile(), w.train_inputs[0], max_steps=2_000_000)
        program = w.compile()
        run_hlo(program, HLOConfig(budget_percent=400))
        verify_program(program)
        result = run_program(program, w.train_inputs[0], max_steps=4_000_000)
        assert result.behavior() == reference.behavior()

    def test_train_smaller_than_ref(self, name):
        w = get_workload(name)
        program = w.compile()
        train = run_program(program, w.train_inputs[0], max_steps=4_000_000)
        ref = run_program(program, w.ref_input, max_steps=4_000_000)
        assert train.steps < ref.steps
