"""The serve wire protocol: newline-delimited JSON in CRC32 frames.

One request or response is a single line::

    rpc <version> <len> crc32 <8hex> <payload>

where ``<payload>`` is a compact JSON object of exactly ``<len>``
characters (``json.dumps`` with ``ensure_ascii`` keeps it ASCII and
newline-free, so characters equal bytes and the line stays a line).
The CRC32 is computed over the payload text — the same end-to-end
integrity idiom as the fleet's profile-shard frames
(:mod:`repro.fleet.shard`), because a build request travels the same
kind of hostile path a shard does.

Frame parsing treats its input as hostile and raises a typed
:class:`~repro.resilience.errors.FrameFormatError`; the server answers
a bad frame with an error reply instead of dying, and because frames
are newline-delimited the connection re-synchronizes on the next line.

Requests are JSON objects with an ``op`` (:data:`OPS`) and a
client-chosen ``id`` echoed back on the reply.  Replies carry a
``status`` (:data:`STATUSES`); everything else is op-specific and
documented in docs/serving.md.
"""

from __future__ import annotations

import json
import zlib
from typing import Optional

from ..resilience.errors import FrameFormatError

PROTOCOL_VERSION = 1
WIRE_MAGIC = "rpc"

# Everything the daemon knows how to do.
OPS = ("ping", "build", "run", "stats", "shutdown")

# Reply statuses.  "busy" is the 429-style load shed; "bad-request"
# covers malformed payloads and genuine input errors (CompileError and
# friends); "error" is an isolated internal failure of one request.
STATUSES = ("ok", "busy", "timeout", "cancelled", "bad-request", "error")

# An upper bound on one frame line.  Build requests carry whole source
# trees and build replies carry whole isom trees, so this is generous;
# the asyncio stream limit must be at least this.
MAX_FRAME_CHARS = 8 * 1024 * 1024


def _crc(payload: str) -> str:
    return format(zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF, "08x")


def encode_frame(payload: dict) -> bytes:
    """One message, framed: ``rpc <ver> <len> crc32 <8hex> <json>\\n``."""
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True)
    line = "{} {} {} crc32 {} {}\n".format(
        WIRE_MAGIC, PROTOCOL_VERSION, len(body), _crc(body), body
    )
    return line.encode("utf-8")


def decode_frame(line: bytes) -> dict:
    """Parse and verify one frame line back into its payload object.

    Raises :class:`FrameFormatError` (kinds ``truncated``,
    ``corrupted``, ``version-skew``, ``malformed``) when the frame does
    not check out.
    """
    try:
        text = line.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameFormatError("frame is not utf-8: {}".format(exc)) from exc
    text = text.rstrip("\r\n")
    if not text:
        raise FrameFormatError("empty frame line", kind="truncated")
    parts = text.split(" ", 5)
    if len(parts) < 6:
        raise FrameFormatError(
            "short frame header ({} of 6 fields)".format(len(parts)),
            kind="truncated",
        )
    magic, version, length, crc_tag, crc, body = parts
    if magic != WIRE_MAGIC or crc_tag != "crc32":
        raise FrameFormatError(
            "bad frame magic {!r}".format(text[:24]), kind="malformed"
        )
    if version != str(PROTOCOL_VERSION):
        raise FrameFormatError(
            "protocol version {!r}, this side speaks {}".format(
                version, PROTOCOL_VERSION
            ),
            kind="version-skew",
        )
    try:
        expected_len = int(length)
    except ValueError as exc:
        raise FrameFormatError(
            "unparseable frame length {!r}".format(length)
        ) from exc
    if len(body) < expected_len:
        raise FrameFormatError(
            "frame truncated: {} of {} payload chars".format(
                len(body), expected_len
            ),
            kind="truncated",
        )
    if len(body) > expected_len:
        raise FrameFormatError(
            "frame overrun: {} payload chars, header says {}".format(
                len(body), expected_len
            ),
            kind="malformed",
        )
    if _crc(body) != crc:
        raise FrameFormatError("frame CRC mismatch", kind="corrupted")
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise FrameFormatError(
            "frame payload is not JSON: {}".format(exc)
        ) from exc
    if not isinstance(payload, dict):
        raise FrameFormatError("frame payload is not an object")
    return payload


def reply(
    request_id: Optional[str], status: str, **fields: object
) -> dict:
    """A reply payload, statically checked against :data:`STATUSES`."""
    if status not in STATUSES:
        raise ValueError("unknown reply status {!r}".format(status))
    payload = {"id": request_id, "status": status}
    payload.update(fields)
    return payload
