"""Direct-mapped caches (the PA8000 used large off-chip direct-mapped
I and D caches; we scale capacities down to match our workloads' code
and data footprints — see DESIGN.md's substitution table)."""

from __future__ import annotations


class DirectMappedCache:
    """A direct-mapped cache with byte-addressed lines."""

    __slots__ = ("line_bytes", "num_lines", "tags", "accesses", "misses", "_shift")

    def __init__(self, size_bytes: int, line_bytes: int = 32):
        if size_bytes <= 0 or line_bytes <= 0:
            raise ValueError("cache sizes must be positive")
        if size_bytes % line_bytes != 0:
            raise ValueError("cache size must be a multiple of the line size")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        self.line_bytes = line_bytes
        self.num_lines = size_bytes // line_bytes
        self.tags = [-1] * self.num_lines
        self.accesses = 0
        self.misses = 0
        self._shift = line_bytes.bit_length() - 1

    def access(self, addr: int) -> bool:
        """Touch ``addr``; returns True on hit."""
        self.accesses += 1
        line = addr >> self._shift
        index = line % self.num_lines
        if self.tags[index] == line:
            return True
        self.tags[index] = line
        self.misses += 1
        return False

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.tags = [-1] * self.num_lines
        self.accesses = 0
        self.misses = 0
