"""The canonical metric-name registry: one declaration per name."""

from __future__ import annotations

import re

from repro.obs import names

#: ``<segment>.<segment>...`` — lowercase, digits, underscores inside a
#: segment, dots only between segments.
NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")


class TestRegistry:
    def test_all_names_are_unique_strings(self):
        assert len(names.ALL_NAMES) == len(set(names.ALL_NAMES))
        assert all(isinstance(name, str) for name in names.ALL_NAMES)

    def test_all_names_follow_the_scheme(self):
        for name in names.ALL_NAMES:
            assert NAME_RE.match(name), name

    def test_every_constant_is_registered(self):
        constants = {
            value
            for key, value in vars(names).items()
            if key.isupper() and key != "ALL_NAMES" and isinstance(value, str)
        }
        assert constants == set(names.ALL_NAMES)


class TestDedupeRename:
    """The near-collision that motivated this module stays resolved."""

    def test_collector_dedupe_vs_transport_fault(self):
        assert names.FLEET_SHARDS_DEDUPED == "fleet.shards_deduped"
        assert names.FLEET_SHARDS_DUPLICATED == "fleet.shards_duplicated"
        assert "fleet.shards_duplicate" not in names.ALL_NAMES


class TestInstanceTemplates:
    def test_pending(self):
        name = names.fleet_instance_pending("inst0")
        assert name == "fleet.inst.inst0.pending"
        assert NAME_RE.match(name)

    def test_traps(self):
        name = names.fleet_instance_traps("inst3")
        assert name == "fleet.inst.inst3.serve_traps"
        assert NAME_RE.match(name)

    def test_templates_not_in_fixed_registry(self):
        assert names.fleet_instance_pending("inst0") not in names.ALL_NAMES
