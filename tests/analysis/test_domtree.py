"""Dominator-tree helper and pass-manager iteration behaviour."""

from repro.analysis import dominator_tree_children, immediate_dominators
from repro.frontend import compile_module, compile_program
from repro.interp import run_program
from repro.opt import optimize_proc
from repro.opt.pass_manager import default_pipeline


class TestDominatorTree:
    def test_children_partition(self):
        proc = compile_module(
            "int f(int x) { int r; if (x) r = 1; else r = 2; return r; }", "m"
        ).procs["f"]
        idom = immediate_dominators(proc)
        children = dominator_tree_children(idom)
        # Every non-entry node appears exactly once as someone's child.
        all_children = [c for kids in children.values() for c in kids]
        non_entry = [l for l in idom if idom[l] is not None]
        assert sorted(all_children) == sorted(non_entry)
        # The entry dominates the two arms and the join directly.
        assert len(children[proc.entry]) >= 3


class TestPassManager:
    def test_custom_pipeline_respected(self):
        ran = []

        def spy_pass(program, proc):
            ran.append(proc.name)
            return False

        program = compile_program([("m", "int main() { return 1; }")])
        optimize_proc(program, program.proc("main"), pipeline=[("spy", spy_pass)])
        assert ran == ["main"]

    def test_iteration_cap_bounds_runaway_pass(self):
        calls = []

        def always_changed(program, proc):
            calls.append(1)
            return True  # claims progress forever

        program = compile_program([("m", "int main() { return 1; }")])
        optimize_proc(
            program,
            program.proc("main"),
            pipeline=[("liar", always_changed)],
            max_iterations=5,
        )
        assert len(calls) == 5

    def test_default_pipeline_names(self):
        names = [name for name, _fn in default_pipeline()]
        assert names == [
            "constprop", "simplifycfg", "copyprop", "peephole", "cse", "licm", "dce",
        ]

    def test_optimize_proc_reports_change(self):
        program = compile_program(
            [("m", "int main() { int a = 2 + 3; print_int(a); return 0; }")]
        )
        changed = optimize_proc(program, program.proc("main"))
        assert changed
        assert run_program(program).output == [5]
        # Second run: already at the fixed point.
        assert not optimize_proc(program, program.proc("main"))
