"""The fleet's --build-server path: remote rebuilds through the daemon."""

from __future__ import annotations

import pytest

from repro.fleet import ReoptimizeController, decision_set
from repro.linker.isom import to_isom_text
from repro.linker.toolchain import Toolchain
from repro.serve.client import ServeClient

from ..serve.conftest import start_daemon
from .conftest import REF_INPUT, TRAIN_INPUTS


@pytest.fixture
def daemon():
    handle = start_daemon()
    yield handle
    handle.stop()


@pytest.fixture
def toolchain(sources):
    return Toolchain(sources, train_inputs=TRAIN_INPUTS)


def test_remote_rebuild_matches_local(daemon, toolchain):
    profile = toolchain.build("cp").profile
    local = toolchain.rebuild_with_profile(profile)

    client = ServeClient(daemon.address)
    try:
        remote, considered = client.remote_rebuild(
            toolchain.sources, profile.to_text()
        )
    finally:
        client.close()

    assert decision_set(remote.report) == decision_set(local.report)
    assert considered == local.report.sites_considered
    local_isoms = {
        name: to_isom_text(module)
        for name, module in local.program.modules.items()
    }
    remote_isoms = {
        name: to_isom_text(module)
        for name, module in remote.program.modules.items()
    }
    assert remote_isoms == local_isoms


def test_controller_swaps_through_the_daemon(daemon, toolchain):
    profile = toolchain.build("cp").profile
    client = ServeClient(daemon.address)
    try:
        controller = ReoptimizeController(
            toolchain,
            canary_inputs=REF_INPUT,
            min_confidence=0.0,
            build_client=client,
        )
        controller.initial_build()
        action = controller.consider(profile, epoch=0)
        assert action.swapped is not None
        assert controller.current.build_id == 1
        # The rebuild really happened on the daemon, not locally.
        stats = client.stats()
    finally:
        client.close()
    assert stats["state"]["builds"] == 1
    assert not any("build-server unavailable" in line
                   for line in controller.history)


def test_unreachable_daemon_degrades_to_local_rebuild(toolchain):
    profile = toolchain.build("cp").profile
    client = ServeClient("127.0.0.1:1", timeout=0.5)
    controller = ReoptimizeController(
        toolchain,
        canary_inputs=REF_INPUT,
        min_confidence=0.0,
        build_client=client,
    )
    controller.initial_build()
    action = controller.consider(profile, epoch=0)
    # The swap still happens — locally — and the degradation is recorded.
    assert action.swapped is not None
    assert any("build-server unavailable" in line
               for line in controller.history)
