"""``python -m repro`` — the command-line toolchain driver."""

import sys

from .cli import main

sys.exit(main())
