"""Dominator computation (iterative Cooper–Harvey–Kennedy).

Used by the loop finder, which in turn feeds the static frequency
heuristics the inliner falls back to when no profile is present.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..ir.procedure import Procedure


def immediate_dominators(proc: Procedure) -> Dict[str, Optional[str]]:
    """Map each reachable block label to its immediate dominator.

    The entry maps to ``None``.  Unreachable blocks are absent.
    """
    rpo = proc.rpo_labels()
    if not rpo:
        return {}
    order_index = {label: i for i, label in enumerate(rpo)}
    preds = proc.predecessors()
    idom: Dict[str, Optional[str]] = {rpo[0]: rpo[0]}

    def intersect(a: str, b: str) -> str:
        while a != b:
            while order_index[a] > order_index[b]:
                a = idom[a]  # type: ignore[assignment]
            while order_index[b] > order_index[a]:
                b = idom[b]  # type: ignore[assignment]
        return a

    changed = True
    while changed:
        changed = False
        for label in rpo[1:]:
            candidates = [p for p in preds[label] if p in idom and p in order_index]
            if not candidates:
                continue
            new_idom = candidates[0]
            for p in candidates[1:]:
                new_idom = intersect(new_idom, p)
            if idom.get(label) != new_idom:
                idom[label] = new_idom
                changed = True

    result: Dict[str, Optional[str]] = {}
    for label in rpo:
        if label == rpo[0]:
            result[label] = None
        elif label in idom:
            result[label] = idom[label]
    return result


def dominates(idom: Dict[str, Optional[str]], a: str, b: str) -> bool:
    """True when block ``a`` dominates block ``b`` (reflexive)."""
    node: Optional[str] = b
    while node is not None:
        if node == a:
            return True
        node = idom.get(node)
    return False


def dominator_tree_children(idom: Dict[str, Optional[str]]) -> Dict[str, List[str]]:
    children: Dict[str, List[str]] = {label: [] for label in idom}
    for label, parent in idom.items():
        if parent is not None:
            children[parent].append(label)
    return children
