"""Worker-pool failures degrade to serial compilation; input errors don't."""

from __future__ import annotations

import pytest

import repro.parallel.executor as executor
from repro.frontend.errors import CompileError
from repro.linker.toolchain import Toolchain
from repro.parallel import compile_sources, parallel_map

from .conftest import REF_INPUT, TRAIN_INPUTS, isoms


class _BrokenPool:
    """Stands in for ProcessPoolExecutor when the OS says no."""

    def __init__(self, *args, **kwargs):
        raise OSError("no processes for you")


@pytest.fixture
def broken_pool(monkeypatch):
    monkeypatch.setattr(executor, "ProcessPoolExecutor", _BrokenPool)


def test_parallel_map_falls_back_serially(broken_pool):
    warnings = []
    results, fell_back = parallel_map(
        lambda x: x * 2, [1, 2, 3], jobs=4, warn=warnings.append
    )
    assert results == [2, 4, 6]
    assert fell_back
    assert warnings and "serially" in warnings[0]


def test_compile_sources_survives_broken_pool(sources, broken_pool):
    program, stats = compile_sources(sources, jobs=4)
    assert list(program.modules) == [name for name, _text in sources]
    assert stats.serial_fallback
    assert stats.compiled == len(sources)


def test_toolchain_records_fallback_as_warning_not_degradation(
    sources, broken_pool
):
    result = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=4).build("cp")
    assert result.diagnostics.parallel_fallbacks
    assert any("serially" in w for w in result.diagnostics.warnings)
    assert "serial fallback" in result.diagnostics.summary(result.report)
    assert not result.degraded  # output identical, only slower to produce


def test_fallback_output_matches_healthy_build(sources, broken_pool):
    degraded_pool = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=4).build("cp")
    healthy = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=1).build("cp")
    assert isoms(degraded_pool) == isoms(healthy)
    behavior_a = degraded_pool.run(REF_INPUT)[1].behavior()
    behavior_b = healthy.run(REF_INPUT)[1].behavior()
    assert behavior_a == behavior_b


def test_compile_errors_propagate_through_workers():
    bad = [("ok", "int f() { return 1; }"), ("bad", "this is not minic")]
    with pytest.raises(CompileError):
        compile_sources(bad, jobs=2)
