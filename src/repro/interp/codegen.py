"""Source-emitting execution engine (``engine="codegen"``).

Where the fast engine (:mod:`repro.interp.engine`) pre-decodes each
procedure into lists of bound closures, this engine goes one step
further down the classic compilation ladder: every procedure is emitted
as *specialized Python source* and compiled via ``compile()``/``exec``
into a real code object.

- registers become plain local variables (no register-file list, no
  slot indexing),
- fused straight-line segments become straight-line statements with ONE
  batched step-limit check (an emitted exact per-instruction replay
  covers the case where the limit falls inside the segment),
- block successors become a ``while`` + ``if/elif`` dispatch over
  integer block labels, with arms ordered by the training profile's
  ``block.profile_count`` so hot blocks are tested first,
- single-predecessor successors are *inlined into their predecessor* as
  superinstruction bodies (the emitted control transfer disappears
  entirely; the branch/jump still costs its step and fires its events),
- direct calls carry pre-bound call-site metadata; the per-run name
  resolution (and therefore fleet hot-swap semantics) is identical to
  the fast engine's ``link`` table.

Each emitted procedure is a *generator function*: call sites ``yield``
a request tuple to a trampoline driver that maintains an explicit frame
stack, so deeply recursive programs never touch the Python stack and
the 8000-frame limit matches the other engines exactly.  Returns travel
as a sentinel-tagged yield (cheaper than ``StopIteration``).

Plans are cached on ``Program._codegen_cache`` with the same
fingerprint/globals-signature invalidation as the fast engine's
``PlanCache`` (so ``Program.invalidate_plans()`` — and therefore fleet
hot-swap — covers both).  Observable behaviour is kept byte-identical
to the reference engine and asserted by :mod:`repro.interp.diff`,
including the fast engine's one documented divergence: when a run
*traps* mid-segment, ``Interpreter.steps`` may count the whole segment;
``StepLimitExceeded`` itself is exact.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Jump,
    Load,
    Mov,
    Probe,
    Ret,
    Store,
    UnOp,
)
from ..ir.ops import INT_MASK, INT_MAX, EvalError, eval_binop, eval_unop, wrap_int
from ..ir.procedure import ATTR_VARARGS, Procedure
from ..ir.values import FuncRef, GlobalRef, Imm, Reg
from .errors import ExecError, StepLimitExceeded
from .memory import CodePtr

# The codegen engine deliberately shares the fast engine's run-state,
# sentinels, and invalidation helpers: one _UNSET, one fingerprint
# function, one per-run state shape means the differential harness is
# comparing engines, not re-implementations of bookkeeping.
from .engine import (  # noqa: E402
    _MISS,
    _NO_VARARGS,
    _STACK_LIMIT,
    _UNSET,
    _ExecState,
    _fingerprint,
    _unset,
    sink_mode,
)
from .interpreter import Result, _Exit  # noqa: E402

_MASK = INT_MASK
_IMAX = INT_MAX
_TWO64 = 1 << 64

# Tag object for return requests yielded by emitted procedures.
_RETM = object()

# Inlining caps: Python's parser rejects very deep indentation (~100
# levels) and the compiler recurses per inlined block, so bound both
# the emitted indent depth and the length of an inline chain.
INLINE_INDENT_CAP = 40
INLINE_DEPTH_CAP = 48


# ----------------------------------------------------------------------
# Slow-path helpers referenced from emitted code
# ----------------------------------------------------------------------


def _binop_slow(op, x, y, ln, rn, pn, lb, ix):
    """Non-int/int operands: replicate the reference engine's evaluation
    order and error messages exactly (cf. engine._binop_slow)."""
    if x is _UNSET:
        _unset(ln, pn)
    if y is _UNSET:
        _unset(rn, pn)
    if isinstance(x, CodePtr) or isinstance(y, CodePtr):
        if op == "eq":
            return 1 if x == y else 0
        if op == "ne":
            return 0 if x == y else 1
        raise ExecError("arithmetic on code pointer", pn, lb, ix)
    try:
        return eval_binop(op, x, y)
    except (EvalError, TypeError) as ex:
        raise ExecError(str(ex), pn, lb, ix)


def _unop_slow(op, x, n, pn, lb, ix):
    if x is _UNSET:
        _unset(n, pn)
    try:
        return eval_unop(op, x)
    except (EvalError, TypeError) as ex:
        raise ExecError(str(ex), pn, lb, ix)


def _load_guard(mem, a, n, pn):
    if a is _UNSET:
        _unset(n, pn)
    return mem._load_slow(a)


def _store_guard(mem, a, v, an, vn, pn):
    if a is _UNSET:
        _unset(an, pn)
    if v is _UNSET:
        _unset(vn, pn)
    mem._store_slow(a, v)


def _alloca_slow(st, size, n, pn, lb, ix):
    if size is _UNSET:
        _unset(n, pn)
    if not isinstance(size, int) or size < 0:
        raise ExecError("bad alloca size {!r}".format(size), pn, lb, ix)
    top = st.stack_top - size
    st.stack_top = top
    return top


def _args_trap(args, names, pn):
    """An argument list contained _UNSET: report the first unset
    register argument with the reference engine's message."""
    for v, n in zip(args, names):
        if n is not None and v is _UNSET:
            _unset(n, pn)
    raise ExecError("internal: arg trap fell through")  # pragma: no cover


def _sl_raise(limit, pn, lb, ix):
    raise StepLimitExceeded("step limit {} exceeded".format(limit), pn, lb, ix)


# ----------------------------------------------------------------------
# Plan / cache
# ----------------------------------------------------------------------


class GenPlan:
    """One procedure compiled to a code object for one capability mode."""

    __slots__ = (
        "proc",
        "procname",
        "mode",
        "fingerprint",
        "fn",
        "leaf_fn",
        "source",
        "nparams",
        "is_varargs",
        "inlined",
        "dispatch",
    )

    def __init__(self, proc: Procedure, mode, fingerprint: str) -> None:
        self.proc = proc
        self.procname = proc.name
        self.mode = mode
        self.fingerprint = fingerprint
        self.fn = None
        self.leaf_fn = None
        self.source = ""
        self.nparams = len(proc.params)
        self.is_varargs = ATTR_VARARGS in proc.attrs
        self.inlined: Tuple[str, ...] = ()
        self.dispatch = True


class CodegenCache:
    """Per-program plan store, attached to ``Program._codegen_cache``.

    Same contract as the fast engine's PlanCache: keyed by ``(procedure
    name, mode)``, entries self-validate against the procedure's content
    fingerprint on lookup, and the whole cache is cleared when the
    globals layout signature changes (emitted code embeds resolved
    global addresses)."""

    __slots__ = ("plans", "globals_sig", "plans_compiled", "cache_hits")

    def __init__(self) -> None:
        self.plans: Dict[Tuple[str, tuple], GenPlan] = {}
        self.globals_sig = None
        self.plans_compiled = 0
        self.cache_hits = 0

    def check_globals(self, program) -> None:
        sig = tuple((g.name, g.size) for g in program.all_globals())
        if self.globals_sig != sig:
            self.plans.clear()
            self.globals_sig = sig

    def get_plan(self, proc: Procedure, mode, global_addrs) -> GenPlan:
        key = (proc.name, mode)
        plan = self.plans.get(key)
        fp = _fingerprint(proc)
        if plan is not None and plan.fingerprint == fp:
            self.cache_hits += 1
            return plan
        plan = _GenCompiler(proc, mode, global_addrs, fp).compile()
        self.plans[key] = plan
        self.plans_compiled += 1
        return plan


class _BadOperand(Exception):
    """Compile-time marker: an operand cannot be pre-resolved; the
    instruction is emitted as a raising operand walk instead."""


# ----------------------------------------------------------------------
# Compiler
# ----------------------------------------------------------------------


class _GenCompiler:
    def __init__(self, proc: Procedure, mode, global_addrs, fingerprint: str):
        self.proc = proc
        self.procname = proc.name
        self.mode = mode
        (
            self.f_instr,
            self.f_batch,
            self.f_branch,
            self.f_call,
            self.f_ret,
            self.f_mem,
            self.collect_block,
        ) = mode
        self.fire_boundary = self.f_instr or self.f_batch
        self.global_addrs = global_addrs
        self.plan = GenPlan(proc, mode, fingerprint)
        self.slots: Dict[str, int] = {}
        # Per-emission-pass state (reset by _emit):
        self.lines: List[str] = []
        self.consts: List[Any] = []
        self._kmap: Dict[Any, int] = {}
        self.emitted: set = set()
        self.inlined: List[str] = []
        self.transfers = 0
        self.arms = 0
        self.dispatch = True
        # True while emitting the plain-function form of a leaf
        # procedure (returns instead of yields; see _emit).
        self.leaf_pass = False

    # -- small utilities -----------------------------------------------

    def _w(self, indent: int, text: str) -> None:
        self.lines.append("    " * indent + text)

    def _k(self, value) -> int:
        try:
            key = (value.__class__.__name__, value)
            hash(key)
        except TypeError:
            key = ("id", id(value))
        idx = self._kmap.get(key)
        if idx is None:
            idx = len(self.consts)
            self.consts.append(value)
            self._kmap[key] = idx
        return idx

    def _lit(self, value) -> str:
        """A Python expression evaluating to ``value`` in emitted code."""
        cls = value.__class__
        if cls is int or cls is str:
            return repr(value)
        if cls is float and value == value and value not in (
            float("inf"),
            float("-inf"),
        ):
            return repr(value)
        if value is None:
            return "None"
        return "K[%d]" % self._k(value)

    # -- operand resolution --------------------------------------------

    def _rop(self, op) -> Tuple[str, Optional[str]]:
        """Resolve one operand to ``(expr, regname)``; regname is None
        for constants.  Raises _BadOperand when unresolvable."""
        cls = op.__class__
        if cls is Reg:
            return ("r%d" % self.slots[op.name], op.name)
        if cls is Imm:
            v = op.value
            if v.__class__ is int:
                return ("(%d)" % v, None)
            return (self._lit(v), None)
        if cls is GlobalRef:
            addr = self.global_addrs.get(op.name)
            if addr is None:
                raise _BadOperand()
            return ("(%d)" % addr, None)
        if cls is FuncRef:
            return ("K[%d]" % self._k(CodePtr(op.name)), None)
        raise _BadOperand()

    def _const_value(self, op):
        """The compile-time value of a constant operand, or _UNSET if
        the operand is a register / unresolvable."""
        cls = op.__class__
        if cls is Imm:
            return op.value
        if cls is GlobalRef:
            addr = self.global_addrs.get(op.name)
            return _UNSET if addr is None else addr
        if cls is FuncRef:
            return CodePtr(op.name)
        return _UNSET

    # -- raising operand walks (unresolvable operands) -----------------

    def _emit_raising_walk(self, instr, label, idx, ind) -> None:
        """Replicate reference operand evaluation for an instruction
        with an unresolvable operand: unset checks in evaluation order,
        raising where the reference engine would."""
        cls = instr.__class__
        if cls is BinOp:
            ops, icall_at = [instr.lhs, instr.rhs], -1
        elif cls is Store:
            ops, icall_at = [instr.addr, instr.value], -1
        elif cls is Ret:
            ops = [instr.value] if instr.value is not None else []
            icall_at = -1
        elif cls is Call:
            ops, icall_at = list(instr.args), -1
        elif cls is ICall:
            ops, icall_at = [instr.func] + list(instr.args), 0
        elif cls is Branch:
            ops, icall_at = [instr.cond], -1
        else:  # Mov/UnOp/Load/Alloca
            ops, icall_at = list(instr.uses()), -1
        w = self._w
        pn = self.procname
        for pos, op in enumerate(ops):
            ocls = op.__class__
            if ocls is Reg:
                expr = "r%d" % self.slots[op.name]
                w(ind, "if %s is _U:" % expr)
                w(ind + 1, "_unset(%r, PN)" % op.name)
            elif ocls is Imm:
                expr = self._lit(op.value)
            elif ocls is GlobalRef:
                addr = self.global_addrs.get(op.name)
                if addr is None:
                    w(ind, "raise _EE('unknown global $%s')" % op.name)
                    return
                expr = "(%d)" % addr
            elif ocls is FuncRef:
                expr = "K[%d]" % self._k(CodePtr(op.name))
            else:
                w(
                    ind,
                    "raise _EE('unknown operand {!r}'.format(K[%d]))" % self._k(op),
                )
                return
            if pos == icall_at:
                w(ind, "if not isinstance(%s, _CP):" % expr)
                w(
                    ind + 1,
                    "raise _EE('indirect call through non-code value {!r}'"
                    ".format(%s), PN, %r, %d)" % (expr, label, idx),
                )
        w(ind, "raise _EE('internal: trapping instruction fell through')")

    # -- micro-ops (segment instructions) ------------------------------

    def _emit_micro(self, instr, label, idx, ind) -> None:
        w = self._w
        cls = instr.__class__
        try:
            if cls is BinOp:
                d = "r%d" % self.slots[instr.dest.name]
                lx, ln = self._rop(instr.lhs)
                rx, rn = self._rop(instr.rhs)
                self._emit_binop(d, instr, lx, ln, rx, rn, label, idx, ind)
                return
            if cls is Mov:
                d = "r%d" % self.slots[instr.dest.name]
                sx, sn = self._rop(instr.src)
                w(ind, "%s = %s" % (d, sx))
                if sn is not None:
                    w(ind, "if %s is _U:" % d)
                    w(ind + 1, "_unset(%r, PN)" % sn)
                return
            if cls is UnOp:
                d = "r%d" % self.slots[instr.dest.name]
                sx, sn = self._rop(instr.src)
                self._emit_unop(d, instr.op, sx, sn, label, idx, ind)
                return
            if cls is Load:
                d = "r%d" % self.slots[instr.dest.name]
                ax, an = self._rop(instr.addr)
                if an is not None:
                    w(ind, "if %s is _U:" % ax)
                    w(ind + 1, "_unset(%r, PN)" % an)
                if self.f_mem:
                    # Capture the address before the destination write
                    # (dest may alias the address register).
                    w(ind, "_a = %s" % ax)
                    w(ind, "if type(_a) is int and _a >= 0:")
                    w(ind + 1, "_v = _cells.get(_a, 0)")
                    w(ind, "else:")
                    w(ind + 1, "_v = _m._load_slow(_a)")
                    w(ind, "_onm(_a, False)")
                    w(ind, "%s = _v" % d)
                else:
                    w(ind, "if type(%s) is int and %s >= 0:" % (ax, ax))
                    w(ind + 1, "%s = _cells.get(%s, 0)" % (d, ax))
                    w(ind, "else:")
                    w(ind + 1, "%s = _ld(_m, %s, %r, PN)" % (d, ax, an))
                return
            if cls is Store:
                ax, an = self._rop(instr.addr)
                vx, vn = self._rop(instr.value)
                if an is not None:
                    w(ind, "if %s is _U:" % ax)
                    w(ind + 1, "_unset(%r, PN)" % an)
                if vn is not None:
                    w(ind, "if %s is _U:" % vx)
                    w(ind + 1, "_unset(%r, PN)" % vn)
                w(ind, "if type(%s) is int and %s >= 0:" % (ax, ax))
                w(ind + 1, "_cells[%s] = %s" % (ax, vx))
                w(ind, "else:")
                w(ind + 1, "_m._store_slow(%s, %s)" % (ax, vx))
                if self.f_mem:
                    w(ind, "_onm(%s, True)" % ax)
                return
            if cls is Alloca:
                d = "r%d" % self.slots[instr.dest.name]
                sx, sn = self._rop(instr.size)
                cv = self._const_value(instr.size)
                if sn is None and cv.__class__ is int and cv >= 0:
                    w(ind, "_v = st.stack_top - %d" % cv)
                    w(ind, "st.stack_top = _v")
                    w(ind, "%s = _v" % d)
                else:
                    w(
                        ind,
                        "%s = _al(st, %s, %r, PN, %r, %d)"
                        % (d, sx, sn, label, idx),
                    )
                return
            if cls is Probe:
                w(ind, "_pc[%s] += 1" % self._lit(instr.counter_id))
                return
        except _BadOperand:
            self._emit_raising_walk(instr, label, idx, ind)
            return
        # Unknown instruction class: trap exactly like the reference.
        w(
            ind,
            "raise _EE('unknown instruction {!r}'.format(K[%d]), PN, %r, %d)"
            % (self._k(instr), label, idx),
        )

    def _emit_binop(self, d, instr, lx, ln, rx, rn, label, idx, ind) -> None:
        w = self._w
        op = instr.op
        slow = "%s = _bs(%r, %s, %s, %r, %r, PN, %r, %d)" % (
            d, op, lx, rx, ln, rn, label, idx,
        )
        if ln is None and rn is None:
            # Constant fold when the reference evaluation cannot trap.
            x = self._const_value(instr.lhs)
            y = self._const_value(instr.rhs)
            if x is not _UNSET and y is not _UNSET and not (
                isinstance(x, CodePtr) or isinstance(y, CodePtr)
            ):
                try:
                    folded = eval_binop(op, x, y)
                except (EvalError, TypeError):
                    folded = _UNSET
                if folded is not _UNSET:
                    w(ind, "%s = %s" % (d, self._lit(folded)))
                    return
        guard = "type(%s) is int and type(%s) is int" % (lx, rx)
        if op in ("add", "sub", "mul"):
            pyop = {"add": "+", "sub": "-", "mul": "*"}[op]
            w(ind, "if %s:" % guard)
            w(ind + 1, "_v = (%s %s %s) & %d" % (lx, pyop, rx, _MASK))
            w(ind + 1, "%s = _v - %d if _v > %d else _v" % (d, _TWO64, _IMAX))
            w(ind, "else:")
            w(ind + 1, slow)
        elif op in ("div", "mod"):
            w(ind, "if %s and %s != 0:" % (guard, rx))
            w(ind + 1, "_q = abs(%s) // abs(%s)" % (lx, rx))
            w(ind + 1, "if (%s < 0) != (%s < 0):" % (lx, rx))
            w(ind + 2, "_q = -_q")
            if op == "mod":
                w(ind + 1, "_v = (%s - _q * %s) & %d" % (lx, rx, _MASK))
            else:
                w(ind + 1, "_v = _q & %d" % _MASK)
            w(ind + 1, "%s = _v - %d if _v > %d else _v" % (d, _TWO64, _IMAX))
            w(ind, "else:")
            w(ind + 1, slow)
        elif op in ("shl", "shr"):
            w(ind, "if %s:" % guard)
            if op == "shl":
                w(ind + 1, "_v = ((%s & %d) << (%s %% 64)) & %d" % (lx, _MASK, rx, _MASK))
            else:
                w(ind + 1, "_v = (%s >> (%s %% 64)) & %d" % (lx, rx, _MASK))
            w(ind + 1, "%s = _v - %d if _v > %d else _v" % (d, _TWO64, _IMAX))
            w(ind, "else:")
            w(ind + 1, slow)
        elif op in ("and", "or", "xor"):
            pyop = {"and": "&", "or": "|", "xor": "^"}[op]
            w(ind, "if %s:" % guard)
            w(ind + 1, "_v = (%s & %d) %s (%s & %d)" % (lx, _MASK, pyop, rx, _MASK))
            w(ind + 1, "%s = _v - %d if _v > %d else _v" % (d, _TWO64, _IMAX))
            w(ind, "else:")
            w(ind + 1, slow)
        elif op in ("eq", "ne", "lt", "le", "gt", "ge"):
            pyop = {
                "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
            }[op]
            w(ind, "if %s:" % guard)
            w(ind + 1, "%s = 1 if %s %s %s else 0" % (d, lx, pyop, rx))
            w(ind, "else:")
            w(ind + 1, slow)
        else:
            w(ind, slow)

    def _emit_unop(self, d, op, sx, sn, label, idx, ind) -> None:
        w = self._w
        if op == "lnot":
            # lnot never raises once the operand is known set.
            if sn is not None:
                w(ind, "if %s is _U:" % sx)
                w(ind + 1, "_unset(%r, PN)" % sn)
            w(ind, "%s = 0 if %s else 1" % (d, sx))
            return
        if op == "neg":
            w(ind, "if type(%s) is int:" % sx)
            w(ind + 1, "_v = (0 - %s) & %d" % (sx, _MASK))
            w(ind + 1, "%s = _v - %d if _v > %d else _v" % (d, _TWO64, _IMAX))
            w(ind, "else:")
            w(
                ind + 1,
                "%s = _us(%r, %s, %r, PN, %r, %d)" % (d, op, sx, sn, label, idx),
            )
            return
        w(ind, "%s = _us(%r, %s, %r, PN, %r, %d)" % (d, op, sx, sn, label, idx))

    # -- step accounting: fused segment + boundary ---------------------

    def _emit_event(self, instr, label, idx, ind) -> None:
        self._w(ind, "_oni(P, %r, %d, K[%d])" % (label, idx, self._k(instr)))

    def _emit_seg_head(self, seg, label, bidx, binstr, ind) -> None:
        """Step accounting + segment body + boundary on_instr for a
        straight-line segment fused into the boundary at ``bidx``.
        ``seg`` is a list of ``(idx, instr)``."""
        w = self._w
        kk = len(seg) + 1
        w(ind, "_s = st.steps + %d" % kk)
        w(ind, "if _s > _max:")
        self._emit_replay(seg, label, ind + 1)
        w(ind + 1, "st.steps = st.steps + 1")
        w(ind + 1, "_sl(_max, PN, %r, %d)" % (label, bidx))
        w(ind, "st.steps = _s")
        if self.f_batch:
            for idx, instr in seg:
                self._emit_event(instr, label, idx, ind)
        for idx, instr in seg:
            if self.f_instr:
                self._emit_event(instr, label, idx, ind)
            self._emit_micro(instr, label, idx, ind)
        if self.fire_boundary:
            self._emit_event(binstr, label, bidx, ind)

    def _emit_replay(self, seg, label, ind) -> None:
        """Exact per-instruction replay of a segment whose batched step
        check found the limit inside it: bump, check, (on_instr),
        execute — identical to the reference loop."""
        w = self._w
        for idx, instr in seg:
            w(ind, "st.steps = st.steps + 1")
            w(ind, "if st.steps > _max:")
            w(ind + 1, "_sl(_max, PN, %r, %d)" % (label, idx))
            if self.fire_boundary:
                self._emit_event(instr, label, idx, ind)
            self._emit_micro(instr, label, idx, ind)

    # -- boundaries ----------------------------------------------------

    def _emit_jump(self, instr, label, idx, seg, ind, depth) -> None:
        self._emit_seg_head(seg, label, idx, instr, ind)
        if self.f_branch:
            self._w(
                ind,
                "_onb(P, %r, %d, 'jump', True, %s)"
                % (label, idx, self._lit(instr.target)),
            )
        self._emit_transfer(instr.target, ind, depth)

    def _emit_branch(self, instr, label, idx, seg, ind, depth) -> None:
        try:
            cx, cn = self._rop(instr.cond)
        except _BadOperand:
            self._emit_seg_head(seg, label, idx, instr, ind)
            self._emit_raising_walk(instr, label, idx, ind)
            return
        self._emit_seg_head(seg, label, idx, instr, ind)
        w = self._w
        if cn is not None:
            w(ind, "if %s is _U:" % cx)
            w(ind + 1, "_unset(%r, PN)" % cn)
        cv = self._const_value(instr.cond)
        if cn is None and cv is not _UNSET:
            # Constant condition: emit only the taken arm.
            taken = bool(cv)
            target = instr.then_target if taken else instr.else_target
            if self.f_branch:
                w(
                    ind,
                    "_onb(P, %r, %d, 'cond', %r, %s)"
                    % (label, idx, taken, self._lit(target)),
                )
            self._emit_transfer(target, ind, depth)
            return
        w(ind, "if %s:" % cx)
        if self.f_branch:
            w(
                ind + 1,
                "_onb(P, %r, %d, 'cond', True, %s)"
                % (label, idx, self._lit(instr.then_target)),
            )
        self._emit_transfer(instr.then_target, ind + 1, depth + 1)
        w(ind, "else:")
        if self.f_branch:
            w(
                ind + 1,
                "_onb(P, %r, %d, 'cond', False, %s)"
                % (label, idx, self._lit(instr.else_target)),
            )
        self._emit_transfer(instr.else_target, ind + 1, depth + 1)

    def _emit_ret(self, instr, label, idx, seg, ind) -> None:
        if instr.value is not None:
            try:
                vx, vn = self._rop(instr.value)
            except _BadOperand:
                self._emit_seg_head(seg, label, idx, instr, ind)
                self._emit_raising_walk(instr, label, idx, ind)
                return
        else:
            vx, vn = "None", None
        self._emit_seg_head(seg, label, idx, instr, ind)
        w = self._w
        if vn is not None:
            w(ind, "if %s is _U:" % vx)
            w(ind + 1, "_unset(%r, PN)" % vn)
        if self.leaf_pass:
            # Plain-function form: restore the stack pointer (the frame
            # pop would have) and return the value directly.
            if self.uses_alloca:
                w(ind, "st.stack_top = _sv")
            w(ind, "return %s" % vx)
        else:
            w(ind, "yield (_RM, %s)" % vx)

    def _emit_call(self, instr, label, idx, seg, ind) -> None:
        is_icall = instr.__class__ is ICall
        try:
            if is_icall:
                fx, fn = self._rop(instr.func)
            else:
                fx, fn = None, None
            argspec = [self._rop(a) for a in instr.args]
        except _BadOperand:
            self._emit_seg_head(seg, label, idx, instr, ind)
            self._emit_raising_walk(instr, label, idx, ind)
            return
        self._emit_seg_head(seg, label, idx, instr, ind)
        w = self._w
        if is_icall:
            if fn is not None:
                w(ind, "if %s is _U:" % fx)
                w(ind + 1, "_unset(%r, PN)" % fn)
            w(ind, "if not isinstance(%s, _CP):" % fx)
            w(
                ind + 1,
                "raise _EE('indirect call through non-code value {!r}'"
                ".format(%s), PN, %r, %d)" % (fx, label, idx),
            )
            fexpr = "%s.name" % fx
            static_name = None
        else:
            fexpr = None
            static_name = instr.callee
        w(ind, "A = [%s]" % ", ".join(x for x, _n in argspec))
        regnames = tuple(n for _x, n in argspec)
        if any(n is not None for n in regnames):
            w(ind, "if _U in A:")
            w(ind + 1, "_at(A, K[%d], PN)" % self._k(regnames))
        has_dest = instr.dest is not None
        site = (self.proc.module, instr.site_id)
        meta = (static_name, has_dest, label, idx, site)
        if is_icall:
            req = "(K[%d], A, %s)" % (self._k(meta), fexpr)
            if has_dest:
                w(ind, "r%d = yield %s" % (self.slots[instr.dest.name], req))
            else:
                w(ind, "yield %s" % req)
            return
        # Direct call: resolve the callee through the per-run link table
        # once per activation (same hot-swap semantics as the trampoline
        # would apply), then — when the target is a *leaf* plan — invoke
        # its plain compiled function right at the call site, skipping
        # the generator/trampoline round trip entirely.  Non-leaf
        # targets ride to the trampoline with the plan pre-resolved.
        name = static_name
        fc = "_fc%d" % self.callee_locals[name]
        lf = "_lf%d" % self.callee_locals[name]
        w(ind, "if %s is _MS:" % fc)
        w(ind + 1, "%s = _lk.get(%r, _MS)" % (fc, name))
        w(ind + 1, "if %s is _MS:" % fc)
        w(ind + 2, "%s = st.resolve(%r)" % (fc, name))
        w(ind + 1, "%s = %s.leaf_fn if %s is not None else None" % (lf, fc, fc))
        w(ind, "if %s is not None:" % lf)
        b = ind + 1
        w(b, "st.call_count += 1")
        w(b, "if _cs:")
        w(b + 1, "_sc[K[%d]] += 1" % self._k(site))
        if self.f_call:
            w(b, "_onc(P, %r, 'direct', %d)" % (name, len(instr.args)))
        w(b, "if len(_fr) >= %d:" % _STACK_LIMIT)
        w(b + 1, "raise _EE(%r)" % ("call stack overflow in @%s" % name))
        w(b, "_v = %s(st, A)" % lf)
        if self.f_ret:
            w(b, "_onr(%r, P)" % name)
        if has_dest:
            w(b, "if _v is None:")
            w(
                b + 1,
                "raise _EE(%r)"
                % ("void return into a result register from @%s" % name),
            )
            w(b, "r%d = _v" % self.slots[instr.dest.name])
        w(ind, "else:")
        req = "(K[%d], A, %s)" % (self._k(meta), fc)
        if has_dest:
            w(ind + 1, "r%d = yield %s" % (self.slots[instr.dest.name], req))
        else:
            w(ind + 1, "yield %s" % req)

    # -- control transfer / block emission -----------------------------

    def _emit_transfer(self, target, ind, depth) -> None:
        if target not in self.proc.blocks:
            # Lazy trap: a never-taken edge to a missing block raises
            # without a step, like the reference top-of-loop lookup.
            self._w(
                ind,
                "raise _EE('jump to missing block', PN, %r, 0)" % str(target),
            )
            return
        if (
            self.edge_preds.get(target, 0) == 1
            and target != self.proc.entry
            and target not in self.emitted
            and depth < INLINE_DEPTH_CAP
            and ind < INLINE_INDENT_CAP
        ):
            # Superinstruction inlining: this block's only incoming edge
            # is the one being emitted, so its body can be spliced in
            # right here and its dispatch arm disappears.
            self.emitted.add(target)
            self.inlined.append(target)
            self._emit_block(target, ind, depth + 1)
            return
        if not self.dispatch:
            raise AssertionError(
                "codegen: transfer emitted in dispatch-free pass"
            )  # pragma: no cover
        self.transfers += 1
        self._w(ind, "_L = %d" % self.block_ids[target])
        self._w(ind, "continue")

    def _emit_block(self, label, ind, depth) -> None:
        proc = self.proc
        block = proc.blocks[label]
        w = self._w
        if self.collect_block:
            w(ind, "_bc[K[%d]] += 1" % self._k((proc.name, label)))
        seg: List[Tuple[int, Any]] = []
        for idx, instr in enumerate(block.instrs):
            cls = instr.__class__
            if cls is Call or cls is ICall:
                self._emit_call(instr, label, idx, seg, ind)
                seg = []
            elif cls is Jump:
                self._emit_jump(instr, label, idx, seg, ind, depth)
                return
            elif cls is Branch:
                self._emit_branch(instr, label, idx, seg, ind, depth)
                return
            elif cls is Ret:
                self._emit_ret(instr, label, idx, seg, ind)
                return
            else:
                seg.append((idx, instr))
        # Fell off the end of the block (no terminator).
        if seg:
            w(ind, "_s = st.steps + %d" % len(seg))
            w(ind, "if _s > _max:")
            self._emit_replay(seg, label, ind + 1)
            w(ind, "else:")
            w(ind + 1, "st.steps = _s")
            if self.f_batch:
                for idx, instr in seg:
                    self._emit_event(instr, label, idx, ind + 1)
            for idx, instr in seg:
                if self.f_instr:
                    self._emit_event(instr, label, idx, ind + 1)
                self._emit_micro(instr, label, idx, ind + 1)
        w(
            ind,
            "raise _EE('fell off the end of block', PN, %r, %d)"
            % (label, len(block.instrs)),
        )

    # -- whole-procedure emission --------------------------------------

    def _assign_slots(self) -> None:
        slots = self.slots
        for name, _ty in self.proc.params:
            if name not in slots:
                slots[name] = len(slots)
        for block in self.proc.blocks.values():
            for instr in block.instrs:
                dest = instr.dest
                if dest is not None and dest.name not in slots:
                    slots[dest.name] = len(slots)
                for used in instr.uses():
                    if used.__class__ is Reg and used.name not in slots:
                        slots[used.name] = len(slots)

    def _analyze(self) -> None:
        proc = self.proc
        self._assign_slots()
        # Count incoming *edges* per block (two edges from one branch
        # count twice, so a block is inlined only when exactly one
        # emitted transfer reaches it).
        preds: Dict[Any, int] = {}
        for label, block in proc.blocks.items():
            term = block.instrs[-1] if block.instrs else None
            cls = term.__class__
            if cls is Jump:
                preds[term.target] = preds.get(term.target, 0) + 1
            elif cls is Branch:
                preds[term.then_target] = preds.get(term.then_target, 0) + 1
                preds[term.else_target] = preds.get(term.else_target, 0) + 1
        self.edge_preds = preds
        self.block_ids = {label: i for i, label in enumerate(proc.blocks)}
        # Dispatch arm order: entry first, then hottest first by the
        # training profile (stable on the original block order).
        labels = list(proc.blocks)
        entry = proc.entry
        rest = [lb for lb in labels if lb != entry]
        rest.sort(
            key=lambda lb: (
                -(proc.blocks[lb].profile_count or 0),
                self.block_ids[lb],
            )
        )
        self.order = ([entry] if entry in proc.blocks else []) + rest
        # Hoists.
        classes = {
            instr.__class__
            for block in proc.blocks.values()
            for instr in block.instrs
        }
        self.uses_mem = bool(classes & {Load, Store})
        self.uses_probe = Probe in classes
        self.uses_branch_ev = self.f_branch and bool(classes & {Branch, Jump})
        self.uses_alloca = Alloca in classes
        self.has_calls = bool(classes & {Call, ICall})
        # A leaf procedure (no call sites, fixed arity) also compiles to
        # a plain function callers can invoke without the trampoline.
        self.is_leaf = not self.has_calls and not self.plan.is_varargs
        # One pair of resolution-cache locals per distinct direct
        # callee: _fcN holds the resolved plan (or None), _lfN its leaf
        # function, so repeated calls within one activation skip the
        # link-table lookup entirely.
        self.callee_locals: Dict[str, int] = {}
        for block in proc.blocks.values():
            for instr in block.instrs:
                if instr.__class__ is Call and instr.callee not in self.callee_locals:
                    self.callee_locals[instr.callee] = len(self.callee_locals)

    def _emit(self, dispatch: bool, leaf: bool = False, reset: bool = True) -> None:
        if reset:
            self.lines = []
            self.consts = []
            self._kmap = {}
        self.emitted = set()
        self.inlined = []
        self.transfers = 0
        self.arms = 0
        self.dispatch = dispatch
        self.leaf_pass = leaf
        proc = self.proc
        w = self._w
        nparams = len(proc.params)
        if leaf:
            w(0, "def _leaf(st, A):")
            # The trampoline's arity check, done inline (leaf procedures
            # are never varargs).
            w(1, "if len(A) != %d:" % nparams)
            w(
                2,
                "raise _EE(%r.format(len(A)))"
                % (
                    "arity mismatch calling @%s: {} args for %d params"
                    % (self.procname, nparams)
                ),
            )
        else:
            w(0, "def _proc(st, A):")
            # A bare function with no yield would not be a generator; the
            # dead conditional forces generator-ness without runtime cost.
            w(1, "if 0:")
            w(2, "yield")
        param_slots = [self.slots[name] for name, _ty in proc.params]
        if nparams:
            if len(set(param_slots)) == nparams:
                w(
                    1,
                    "%s%s = A"
                    % (
                        ", ".join("r%d" % s for s in param_slots),
                        "," if nparams == 1 else "",
                    ),
                )
            else:
                # Duplicate parameter names share a slot; assign in
                # order so the last binding wins, like the reference.
                for i, slot in enumerate(param_slots):
                    w(1, "r%d = A[%d]" % (slot, i))
        rest = sorted(set(self.slots.values()) - set(param_slots))
        for start in range(0, len(rest), 16):
            chunk = rest[start : start + 16]
            w(1, "%s = _U" % " = ".join("r%d" % s for s in chunk))
        w(1, "_max = st.max_steps")
        if leaf and self.uses_alloca:
            w(1, "_sv = st.stack_top")
        if self.has_calls:
            w(1, "_lk = st.link")
            w(1, "_fr = st.frames")
            w(1, "_cs = st.collect_site")
            w(1, "_sc = st.site_counts")
            ncallee = len(self.callee_locals)
            for start in range(0, ncallee, 16):
                chunk = range(start, min(start + 16, ncallee))
                w(1, "%s = _MS" % " = ".join("_fc%d" % i for i in chunk))
            if self.f_call:
                w(1, "_onc = st.sink.on_call")
            if self.f_ret:
                w(1, "_onr = st.sink.on_return")
        if self.uses_mem:
            w(1, "_m = st.memory")
            w(1, "_cells = _m.cells")
        if self.uses_probe:
            w(1, "_pc = st.probe_counts")
        if self.collect_block:
            w(1, "_bc = st.block_counts")
        if self.fire_boundary:
            w(1, "_oni = st.sink.on_instr")
        if self.uses_branch_ev:
            w(1, "_onb = st.sink.on_branch")
        if self.f_mem and self.uses_mem:
            w(1, "_onm = st.sink.on_mem")
        entry = proc.entry
        if entry not in proc.blocks:
            w(1, "raise _EE('jump to missing block', PN, %r, 0)" % str(entry))
            return
        if not dispatch:
            self.emitted.add(entry)
            self._emit_block(entry, 1, 0)
            return
        w(1, "_L = %d" % self.block_ids[entry])
        w(1, "while 1:")
        first = True
        for label in self.order:
            if label in self.emitted:
                continue
            self.emitted.add(label)
            self.arms += 1
            w(2, "%s _L == %d:" % ("if" if first else "elif", self.block_ids[label]))
            first = False
            self._emit_block(label, 3, 0)
        w(2, "else:")
        w(3, "raise _EE('internal: unknown dispatch label in @%s')" % self.procname)

    def compile(self) -> GenPlan:
        self._analyze()
        self._emit(dispatch=True)
        use_dispatch = not (self.transfers == 0 and self.arms <= 1)
        if not use_dispatch:
            # Everything was inlined into the entry chain: re-emit
            # without the while/dispatch shell.
            self._emit(dispatch=False)
            self.plan.dispatch = False
        inlined = tuple(self.inlined)
        if self.is_leaf:
            # Leaf procedures additionally compile to a plain function
            # (same body, `return` instead of yield) that call sites and
            # the trampoline invoke directly — no generator, no frame.
            self._emit(dispatch=use_dispatch, leaf=True, reset=False)
        src = "\n".join(self.lines) + "\n"
        namespace = {
            "_U": _UNSET,
            "_RM": _RETM,
            "_CP": CodePtr,
            "_EE": ExecError,
            "_MS": _MISS,
            "_sl": _sl_raise,
            "_unset": _unset,
            "_bs": _binop_slow,
            "_us": _unop_slow,
            "_ld": _load_guard,
            "_at": _args_trap,
            "_al": _alloca_slow,
            "K": tuple(self.consts),
            "P": self.proc,
            "PN": self.procname,
            "isinstance": isinstance,
            "type": type,
            "abs": abs,
            "len": len,
        }
        code = compile(src, "<repro-codegen:%s>" % self.procname, "exec")
        exec(code, namespace)
        plan = self.plan
        plan.fn = namespace["_proc"]
        plan.leaf_fn = namespace.get("_leaf")
        plan.source = src
        plan.inlined = inlined
        return plan


# ----------------------------------------------------------------------
# Executor (trampoline driver)
# ----------------------------------------------------------------------


class _GenFrame:
    """Activation record: a suspended emitted generator.  Lives on the
    interpreter's shared ``_frames`` list so the varargs builtins see
    ``frame.varargs`` exactly as with the other engines."""

    __slots__ = ("plan", "gen", "dest", "saved_stack", "varargs")


def _push(st, plan: GenPlan, args: List[Any], has_dest: bool) -> _GenFrame:
    frames = st.frames
    if len(frames) >= _STACK_LIMIT:
        raise ExecError("call stack overflow in @{}".format(plan.procname))
    frame = _GenFrame()
    frame.plan = plan
    frame.dest = has_dest
    frame.saved_stack = st.stack_top
    nfixed = plan.nparams
    if plan.is_varargs:
        if len(args) < nfixed:
            raise ExecError("too few args for varargs @{}".format(plan.procname))
        frame.varargs = args[nfixed:]
        del args[nfixed:]
    else:
        if len(args) != nfixed:
            raise ExecError(
                "arity mismatch calling @{}: {} args for {} params".format(
                    plan.procname, len(args), nfixed
                )
            )
        frame.varargs = _NO_VARARGS
    frame.gen = plan.fn(st, args)
    frames.append(frame)
    return frame


def _drive(st, frame: _GenFrame, f_call: bool, f_ret: bool):
    """Run emitted generators until the root frame returns.

    Emitted code yields ``(_RETM, value)`` for returns and
    ``(meta, args, funcname)`` for calls; everything else — frame
    stack, per-run name resolution (hot-swap semantics), builtins,
    on_call/on_return delivery — happens here, mirroring the fast
    engine's call part ordering exactly."""
    frames = st.frames
    depth0 = st.depth0
    link = st.link
    builtins = st.builtins
    collect_site = st.collect_site
    site_counts = st.site_counts
    sink = st.sink
    gen = frame.gen
    send = None
    while True:
        req = gen.send(send)
        if req[0] is _RETM:
            value = req[1]
            frames.pop()
            st.stack_top = frame.saved_stack
            if len(frames) == depth0:
                return value
            prev = frames[-1]
            if f_ret:
                sink.on_return(frame.plan.procname, prev.plan.proc)
            if frame.dest:
                if value is None:
                    raise ExecError(
                        "void return into a result register from @{}".format(
                            frame.plan.procname
                        )
                    )
                send = value
            else:
                send = None
            frame = prev
            gen = frame.gen
            continue
        meta, args, fname = req
        st.call_count += 1
        if collect_site:
            site_counts[meta[4]] += 1
        if fname is None:
            # Direct call whose call site found no plan (builtin or
            # unresolved external; None is already cached in the link).
            name = meta[0]
            kind = "direct"
            plan = link.get(name, _MISS)
            if plan is _MISS:
                plan = st.resolve(name)
        elif fname.__class__ is str:
            name = fname
            kind = "indirect"
            plan = link.get(name, _MISS)
            if plan is _MISS:
                plan = st.resolve(name)
        else:
            # Direct call with the plan pre-resolved at the call site.
            plan = fname
            name = meta[0]
            kind = "direct"
        if plan is not None:
            if f_call:
                sink.on_call(frame.plan.proc, name, kind, len(args))
            lf = plan.leaf_fn
            if lf is not None:
                # Leaf target (only reached via icall — direct call
                # sites invoke leaf functions without yielding): no
                # frame, no generator, one plain call.
                if len(frames) >= _STACK_LIMIT:
                    raise ExecError(
                        "call stack overflow in @{}".format(plan.procname)
                    )
                value = lf(st, args)
                if f_ret:
                    sink.on_return(plan.procname, frame.plan.proc)
                if meta[1]:
                    if value is None:
                        raise ExecError(
                            "void return into a result register from @{}".format(
                                plan.procname
                            )
                        )
                    send = value
                else:
                    send = None
                continue
            # Non-leaf: push an activation record (the body of _push,
            # inlined on the hot path).
            if len(frames) >= _STACK_LIMIT:
                raise ExecError(
                    "call stack overflow in @{}".format(plan.procname)
                )
            nf = _GenFrame()
            nf.plan = plan
            nf.dest = meta[1]
            nf.saved_stack = st.stack_top
            nfixed = plan.nparams
            if plan.is_varargs:
                if len(args) < nfixed:
                    raise ExecError(
                        "too few args for varargs @{}".format(plan.procname)
                    )
                nf.varargs = args[nfixed:]
                del args[nfixed:]
            else:
                if len(args) != nfixed:
                    raise ExecError(
                        "arity mismatch calling @{}: {} args for {} params".format(
                            plan.procname, len(args), nfixed
                        )
                    )
                nf.varargs = _NO_VARARGS
            gen = nf.gen = plan.fn(st, args)
            frames.append(nf)
            frame = nf
            send = None
            continue
        builtin = builtins.get(name)
        if builtin is None:
            raise ExecError(
                "call to unresolved external @{}".format(name),
                frame.plan.procname,
                meta[2],
                meta[3],
            )
        if f_call:
            sink.on_call(frame.plan.proc, name, "builtin", len(args))
        send = builtin(args)


def execute(interp, proc: Procedure, args: List[Any]):
    """Entry point used by ``Interpreter.run`` for ``engine="codegen"``.

    Shares the interpreter's memory, output, counters, builtins, and
    frame list (via the fast engine's per-run state object), so builtins
    — including ``exit`` and the varargs pair — behave identically to
    the other engines; run totals are synced back even when the run
    unwinds with ``_Exit`` or a trap."""
    program = interp.program
    cache = getattr(program, "_codegen_cache", None)
    if cache is None:
        cache = CodegenCache()
        program._codegen_cache = cache
    cache.check_globals(program)
    mode = sink_mode(interp.sink) + (bool(interp.collect_block_counts),)
    st = _ExecState(interp, cache, mode)
    compiled0 = cache.plans_compiled
    hits0 = cache.cache_hits
    exit_code = 0
    ret = None
    try:
        try:
            plan = st.resolve(proc.name)
            frame = _push(st, plan, list(args), False)
            ret = _drive(st, frame, mode[3], mode[4])
        finally:
            interp.steps = st.steps
            interp.call_count = st.call_count
            interp._stack_top = st.stack_top
            interp.plans_compiled += cache.plans_compiled - compiled0
            interp.plan_cache_hits += cache.cache_hits - hits0
        if isinstance(ret, int):
            exit_code = wrap_int(ret)
    except _Exit as ex:
        exit_code = wrap_int(ex.code)
    return Result(
        exit_code,
        interp.output,
        interp.steps,
        interp.probe_counts,
        interp.site_counts,
        interp.block_counts,
        interp.call_count,
    )


def emitted_source(program, proc_name: str, sink=None, collect_block=False) -> str:
    """The Python source emitted for ``proc_name`` under the given sink
    capability mode (compiling it on demand).  Debugging/docs helper —
    also exposed as ``python -m repro.interp.codegen``."""
    from .interpreter import Interpreter

    interp = Interpreter(program, sink=sink, collect_block_counts=collect_block)
    cache = getattr(program, "_codegen_cache", None)
    if cache is None:
        cache = CodegenCache()
        program._codegen_cache = cache
    cache.check_globals(program)
    mode = sink_mode(sink) + (bool(collect_block),)
    proc = interp._procs[proc_name]
    return cache.get_plan(proc, mode, interp._global_addrs).source


def main(argv=None) -> int:  # pragma: no cover - thin CLI
    import argparse

    from ..workloads.suite import get_workload

    parser = argparse.ArgumentParser(
        prog="repro.interp.codegen",
        description="dump the Python source emitted for a procedure",
    )
    parser.add_argument("--workload", default="compress")
    parser.add_argument("--proc", default="main")
    args = parser.parse_args(argv)
    program = get_workload(args.workload).compile()
    print(emitted_source(program, args.proc), end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
