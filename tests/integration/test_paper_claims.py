"""End-to-end checks of the paper's headline claims, on real workloads.

These are the cheapest-possible versions of the benchmark experiments
(train inputs, two workloads) so the claims stay verified in every test
run; the full experiments live in ``benchmarks/``.
"""

import pytest

from repro.core import HLOConfig
from repro.interp import run_program
from repro.ir import Call, ICall
from repro.linker import Toolchain
from repro.workloads import get_workload


def toolchain_for(name):
    w = get_workload(name)
    return w, Toolchain(
        list(w.sources), train_inputs=[list(t) for t in w.train_inputs]
    )


CFG = HLOConfig(budget_percent=400)


class TestScopeProgression:
    """Section 3.2: more scope -> more transforms and better run time."""

    def test_sc_improves_from_base_to_cp(self):
        w, tc = toolchain_for("sc")
        cycles = {}
        behaviors = set()
        for scope in ("base", "c", "p", "cp"):
            result = tc.build(scope, CFG)
            metrics, run = result.run(w.train_inputs[0])
            cycles[scope] = metrics.cycles
            behaviors.add(run.behavior())
        assert len(behaviors) == 1
        assert cycles["cp"] < cycles["base"]

    def test_cross_module_enables_deletions(self):
        _w, tc = toolchain_for("sc")
        base = tc.build("base", CFG)
        cross = tc.build("c", CFG)
        assert cross.report.deletions > base.report.deletions


class TestCursesAnecdote:
    """Section 3.1: the no-op curses calls are deleted before inlining
    by the interprocedural side-effect analysis."""

    def count_curses_calls(self, program):
        return sum(
            1
            for proc in program.all_procs()
            for instr in proc.instructions()
            if isinstance(instr, Call) and instr.callee.startswith("cur_")
        )

    def test_dead_display_calls_eliminated(self):
        w, tc = toolchain_for("sc")
        raw = w.compile()
        assert self.count_curses_calls(raw) > 0
        built = tc.build("c", CFG)
        assert self.count_curses_calls(built.program) == 0

    def test_output_identical_without_the_calls(self):
        w, tc = toolchain_for("sc")
        reference = run_program(w.compile(), w.train_inputs[0])
        built = tc.build("c", CFG)
        _metrics, run = built.run(w.train_inputs[0])
        assert run.behavior() == reference.behavior()


class TestDevirtualizationChain:
    """Section 3.1's staged optimization on the go workload: the
    function-pointer pattern scorers become direct calls."""

    def count_icalls(self, program):
        return sum(
            1
            for proc in program.all_procs()
            for instr in proc.instructions()
            if isinstance(instr, ICall)
        )

    def test_indirect_calls_reduced_by_full_scope(self):
        w, tc = toolchain_for("go")
        raw = self.count_icalls(w.compile())
        assert raw >= 1
        built = tc.build("c", HLOConfig(budget_percent=1000))
        assert built.report.devirtualized >= 1 or self.count_icalls(built.program) < raw


class TestTransformEffect:
    """Figure 6's core ordering on one workload, cheaply."""

    def test_inline_beats_clone_only_on_vortex(self):
        w, tc = toolchain_for("vortex")
        runs = {}
        for label, cfg in (
            ("neither", CFG.neither()),
            ("inline", CFG.inline_only()),
            ("clone", CFG.clone_only()),
            ("both", CFG),
        ):
            result = tc.build("cp", cfg)
            metrics, run = result.run(w.train_inputs[0])
            runs[label] = (metrics.cycles, run.behavior())
        behaviors = {b for _c, b in runs.values()}
        assert len(behaviors) == 1
        assert runs["inline"][0] < runs["neither"][0]
        assert runs["both"][0] < runs["neither"][0]
        assert runs["inline"][0] < runs["clone"][0]

    def test_instruction_counts_drop_with_inlining(self):
        w, tc = toolchain_for("vortex")
        neither = tc.build("cp", CFG.neither())
        both = tc.build("cp", CFG)
        m0, _ = neither.run(w.train_inputs[0])
        m1, _ = both.run(w.train_inputs[0])
        assert m1.instructions < m0.instructions
        assert m1.dcache_accesses < m0.dcache_accesses
        assert m1.branches < m0.branches
