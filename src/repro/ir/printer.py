"""Textual serialization of IR modules.

The textual form is the on-disk format of "isom" files (Section 2.1 of
the paper: special object files holding unoptimized intermediate code
that the linker hands to HLO en masse).  :mod:`repro.ir.parser` parses
the same format back; round-tripping is property-tested.
"""

from __future__ import annotations

from .module import Module
from .procedure import Procedure
from .program import Program


def print_module(mod: Module) -> str:
    """Serialize one module to its textual form."""
    lines = ['module "{}"'.format(mod.name)]
    for name, sig in sorted(mod.externs.items()):
        lines.append("extern @{} {}".format(name, sig))
    for gvar in mod.globals.values():
        init = ""
        if gvar.init:
            init = " = " + " ".join(_fmt_word(w) for w in gvar.init)
        lines.append(
            "global ${} [{}] {}{}".format(gvar.name, gvar.size, gvar.linkage, init)
        )
    for proc in mod.procs.values():
        lines.append(print_proc(proc))
    return "\n".join(lines) + "\n"


def print_proc(proc: Procedure) -> str:
    """Serialize one procedure (entry block first, then the rest in RPO)."""
    params = ", ".join("%{}: {}".format(n, t) for n, t in proc.params)
    attrs = ""
    if proc.attrs:
        attrs = " [{}]".format(", ".join(sorted(proc.attrs)))
    lines = [
        "proc @{}({}) -> {} {}{} {{".format(
            proc.name, params, proc.ret_type, proc.linkage, attrs
        )
    ]
    ordered = proc.rpo_labels()
    seen = set(ordered)
    ordered += [label for label in proc.blocks if label not in seen]
    for label in ordered:
        block = proc.blocks[label]
        count = ""
        if block.profile_count is not None:
            count = " !{}".format(block.profile_count)
        lines.append("{}:{}".format(label, count))
        lines.extend("  {}".format(instr) for instr in block.instrs)
    lines.append("}")
    return "\n".join(lines)


def print_program(program: Program) -> str:
    """Serialize a whole program, one module after another."""
    return "\n".join(print_module(m) for m in program.modules.values())


def _fmt_word(word) -> str:
    if isinstance(word, float):
        return repr(word)
    return str(word)
