"""The build daemon: builds as requests against one warm toolchain.

``repro serve`` (docs/serving.md) keeps a single
:class:`~repro.linker.toolchain.ToolchainState` resident — module
cache, worker pool, finished-build LRU — and answers build/run
requests over a newline-delimited, CRC32-framed JSON protocol:

- :mod:`repro.serve.protocol` — the wire format;
- :mod:`repro.serve.state` — per-request state (``BuildRequest``,
  ``BuildSession``) over the shared ``ServerState``;
- :mod:`repro.serve.scheduler` — in-flight dedupe, bounded-queue load
  shedding, per-request deadlines;
- :mod:`repro.serve.server` — the asyncio daemon with drain-on-SIGTERM;
- :mod:`repro.serve.client` — async + blocking clients.
"""

from .client import (
    AsyncServeClient,
    ServeClient,
    ServeRequestError,
    build_result_from_reply,
    parse_address,
)
from .protocol import (
    MAX_FRAME_CHARS,
    OPS,
    PROTOCOL_VERSION,
    STATUSES,
    decode_frame,
    encode_frame,
    reply,
)
from .scheduler import BusyError, RequestScheduler, RequestTimeoutError
from .server import ReproServer
from .state import (
    BuildOutcome,
    BuildRequest,
    BuildSession,
    ServerState,
    artifact_checksum,
    deserialize_report,
    serialize_report,
)

__all__ = [
    "AsyncServeClient",
    "BuildOutcome",
    "BuildRequest",
    "BuildSession",
    "BusyError",
    "MAX_FRAME_CHARS",
    "OPS",
    "PROTOCOL_VERSION",
    "ReproServer",
    "RequestScheduler",
    "RequestTimeoutError",
    "STATUSES",
    "ServeClient",
    "ServeRequestError",
    "ServerState",
    "artifact_checksum",
    "build_result_from_reply",
    "decode_frame",
    "deserialize_report",
    "encode_frame",
    "parse_address",
    "reply",
    "serialize_report",
]
