"""The compiler driver: Figure 1's two compile paths, end to end.

``Toolchain`` builds a multi-module minic program under one of the four
scope configurations Table 1 compares:

========  ============================  =======================
scope     inline/clone across modules?  profile feedback?
========  ============================  =======================
``base``  no (module at a time)         no
``c``     yes (isom / link-time path)   no
``p``     no                            yes (train, recompile)
``cp``    yes                           yes
========  ============================  =======================

Profile builds perform the full two-compile workflow: instrumenting
compile, training run(s) on the training inputs, then a fresh compile
annotated with the harvested database.  Cross-module builds route every
module through the isom serialization (Section 2.1) before linking, so
the link-time HLO sees exactly what a real isom pipeline would.

"Compile time" is reported in deterministic *cost units*: the quadratic
back-end model (Σ size²) summed over every compile the build performs,
plus a charge for the training run — so a ``p`` build is more expensive
to compile than ``base`` even when it transforms less, matching the
paper's observation that profile compiles cost the extra instrumenting
compile and training run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.budget import program_cost
from ..core.config import HLOConfig
from ..core.hlo import run_hlo
from ..core.report import HLOReport
from ..frontend.driver import SourceList, compile_program
from ..interp.interpreter import DEFAULT_ENGINE, DEFAULT_MAX_STEPS, run_program
from ..ir.program import Program
from ..machine.metrics import MachineMetrics
from ..machine.pa8000 import MachineConfig, simulate
from ..obs import NULL_OBSERVER
from ..obs import names
from ..obs.metrics import (
    collect_build_metrics,
    collect_profile_metrics,
    format_build_summary,
)
from ..profile.annotate import annotate_program
from ..profile.database import ProfileDatabase
from ..profile.instrument import instrument_program
from ..resilience.errors import IsomError, ProfileFormatError, StrictModeError
from ..resilience.faults import FaultInjector
from ..sampling.lifecycle import MIN_PROFILE_CONFIDENCE
from .isom import from_isom_text, to_isom_text
from .linker import link_modules

SCOPES = ("base", "c", "p", "cp")

# One interpreted training step costs this many compile-time units
# (training runs are cheap relative to the quadratic back end, but not
# free — the paper folds them into the profile-compile times).
TRAIN_STEP_UNITS = 0.05

# A sampled training run skips the instrumenting rewrite and the probe
# execution overhead; the residual per-step charge is the bare
# interpreter plus the (rare) sample bookkeeping.
SAMPLED_STEP_UNITS = 0.01

InputVector = Sequence[Union[int, float]]


@dataclass
class BuildStats:
    """Table 1's compile-side columns, plus code-size accounting.

    ``compile_units`` is the deterministic cost-model proxy the
    experiments report; ``wall_seconds`` is the actual time this build
    took on the host, for informal comparison with the paper's compile
    seconds (it is *not* used in any benchmark assertion).
    """

    scope: str
    compile_units: float
    train_steps: int
    train_runs: int
    code_size_instrs: int
    annotated_blocks: int = 0
    wall_seconds: float = 0.0


@dataclass
class BuildDiagnostics:
    """What the degradation ladder did during one build.

    Every entry is a *recovered* failure: the build finished, but at a
    lower rung — a module compiled module-at-a-time because its isom
    was bad, or static frequency estimates stood in for a bad profile.
    ``--strict`` turns any of these into a hard error instead.

    The build-performance counters (docs/performance.md) ride along:
    incremental-cache hits/misses/invalidations, how many modules were
    actually recompiled vs. served from cache, and whether the parallel
    worker pool had to fall back to serial compilation.  A serial
    fallback is a warning, not a degradation — the output is identical,
    only slower to produce.
    """

    module_fallbacks: List[str] = field(default_factory=list)
    profile_fallback: str = ""  # reason text; empty = profile path healthy
    warnings: List[str] = field(default_factory=list)

    # Incremental-cache counters for this build (cache_enabled gates
    # whether the summary line reports them).
    cache_enabled: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0
    cache_size_evictions: int = 0  # disk objects LRU-evicted by the bound
    modules_compiled: int = 0
    modules_from_cache: int = 0

    # Parallel-compilation accounting.
    parallel_jobs: int = 1
    parallel_fallbacks: List[str] = field(default_factory=list)
    compile_timeouts: int = 0  # modules abandoned by the compile watchdog
    worker_errors: List[str] = field(default_factory=list)  # exception classes

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def record_cache(self, hits: int, misses: int, invalidations: int) -> None:
        self.cache_enabled = True
        self.cache_hits += hits
        self.cache_misses += misses
        self.cache_invalidations += invalidations

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return (self.cache_hits / total) if total else 0.0

    @property
    def degraded(self) -> bool:
        return bool(self.module_fallbacks or self.profile_fallback)

    def metrics(self, report: Optional[HLOReport] = None,
                stats: Optional["BuildStats"] = None):
        """This build's counters on the canonical metric names.

        One derivation (``repro.obs.metrics.collect_build_metrics``)
        feeds both the stderr summary line and every JSON output, so
        the two can no longer drift.
        """
        return collect_build_metrics(diagnostics=self, report=report, stats=stats)

    def summary(self, report: Optional[HLOReport] = None) -> str:
        """The one-line build-output summary (from the metrics registry)."""
        return format_build_summary(
            self.metrics(report),
            profile_reason=self.profile_fallback,
            serial_fallback=bool(self.parallel_fallbacks),
        )


@dataclass
class BuildResult:
    """A finished executable plus everything measured while building it."""

    program: Program
    report: HLOReport
    stats: BuildStats
    profile: Optional[ProfileDatabase] = None
    diagnostics: BuildDiagnostics = field(default_factory=BuildDiagnostics)
    engine: str = DEFAULT_ENGINE

    @property
    def degraded(self) -> bool:
        """True when any recovery path fired during this build."""
        return self.diagnostics.degraded or self.report.degraded

    def run(
        self,
        inputs: InputVector = (),
        machine: Optional[MachineConfig] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> Tuple[MachineMetrics, "object"]:
        """Execute on the machine model; returns (metrics, interp result)."""
        return simulate(
            self.program, inputs, config=machine, max_steps=max_steps,
            engine=self.engine,
        )


def scope_flags(scope: str) -> Tuple[bool, bool]:
    """(cross_module, use_profile) for a Table 1 scope name."""
    if scope not in SCOPES:
        raise ValueError("unknown scope {!r}; expected one of {}".format(scope, SCOPES))
    return scope in ("c", "cp"), scope in ("p", "cp")


@dataclass
class ToolchainState:
    """The persistent half of a toolchain, split out from request state.

    A long-lived build service (``repro serve``) keeps exactly one of
    these resident: the content-addressed :class:`ModuleCache`, the
    shared :class:`~repro.parallel.executor.PersistentPool` of compile
    workers, and the build policy (jobs, compile timeout, engine).
    Everything request-scoped — sources, training inputs, the per-build
    profile caches, the degradation diagnostics — lives on the
    :class:`Toolchain` that :meth:`session` creates per request, so
    concurrent requests share the warm caches without ever sharing
    mutable build state.

    The cache is safe to share (it takes an internal lock and returns
    freshly parsed modules on every hit), and the pool is safe to share
    (``ProcessPoolExecutor.submit`` is thread-safe); nothing else here
    is mutated after construction.
    """

    cache: Optional["object"] = None  # ModuleCache
    jobs: Optional[int] = None
    compile_timeout: Optional[float] = None
    engine: str = DEFAULT_ENGINE
    pool: Optional["object"] = None  # PersistentPool

    @classmethod
    def create(
        cls,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache_max_mb: Optional[float] = None,
        engine: str = DEFAULT_ENGINE,
        compile_timeout: Optional[float] = None,
        max_tasks_per_child: Optional[int] = None,
    ) -> "ToolchainState":
        from ..parallel.cache import ModuleCache
        from ..parallel.executor import DEFAULT_MAX_TASKS_PER_CHILD, PersistentPool

        pool = None
        if jobs is not None and jobs > 1:
            pool = PersistentPool(
                jobs, max_tasks_per_child or DEFAULT_MAX_TASKS_PER_CHILD
            )
        return cls(
            cache=ModuleCache(cache_dir, max_mb=cache_max_mb),
            jobs=jobs,
            compile_timeout=compile_timeout,
            engine=engine,
            pool=pool,
        )

    def session(
        self,
        sources: SourceList,
        train_inputs: Sequence[InputVector] = (),
        **kwargs,
    ) -> "Toolchain":
        """A per-request :class:`Toolchain` backed by this state."""
        kwargs.setdefault("jobs", self.jobs)
        kwargs.setdefault("compile_timeout", self.compile_timeout)
        kwargs.setdefault("engine", self.engine)
        kwargs.setdefault("cache", self.cache)
        return Toolchain(sources, train_inputs, state=self, **kwargs)

    def close(self) -> None:
        if self.pool is not None:
            self.pool.close()


class Toolchain:
    """Compiles one program's sources under the four scope configs.

    ``strict`` turns every degradation (bad isom, bad profile, pass
    rollback) into a hard :class:`StrictModeError`/exception; the
    default is to degrade gracefully and record what happened on
    :class:`BuildDiagnostics`.  ``fault_injector`` is the test harness
    hook — it corrupts serialized isom/profile text at exactly the
    points real corruption would enter the pipeline, and substitutes
    sabotaged scalar passes.
    """

    def __init__(
        self,
        sources: SourceList,
        train_inputs: Sequence[InputVector] = (),
        config: Optional[HLOConfig] = None,
        max_train_steps: int = DEFAULT_MAX_STEPS,
        strict: bool = False,
        fault_injector: Optional[FaultInjector] = None,
        jobs: Optional[int] = None,
        cache_dir: Optional[str] = None,
        cache: Optional["object"] = None,
        sample_rate: Optional[int] = None,
        context_depth: Optional[int] = None,
        sample_seed: int = 0,
        min_profile_confidence: float = MIN_PROFILE_CONFIDENCE,
        engine: str = DEFAULT_ENGINE,
        compile_timeout: Optional[float] = None,
        cache_max_mb: Optional[float] = None,
        state: Optional[ToolchainState] = None,
    ):
        if isinstance(sources, dict):
            self.sources: List[Tuple[str, str]] = list(sources.items())
        else:
            self.sources = list(sources)
        # The persistent/per-request state split: when this toolchain is
        # one serving session of a resident daemon, ``state`` carries
        # the shared pieces (module cache, worker pool); everything
        # assigned below is request-scoped and dies with this instance.
        self.state = state
        self.train_inputs = [list(v) for v in train_inputs]
        self.base_config = config or HLOConfig()
        self.max_train_steps = max_train_steps
        self.strict = strict
        self.fault_injector = fault_injector
        # The parallel/incremental pipeline (docs/performance.md) is
        # opt-in: asking for a worker count or a cache switches the
        # front end over to repro.parallel.compile_sources, which
        # routes every module through its isom text so the output is
        # byte-identical for any --jobs value and any cache state.
        # With neither flag the legacy direct path runs, unchanged.
        self.jobs = jobs
        self.compile_timeout = compile_timeout
        self._use_pipeline = (
            jobs is not None or cache_dir is not None or cache is not None
        )
        self.cache = cache
        if self.cache is None and self._use_pipeline:
            from ..parallel.cache import ModuleCache

            self.cache = ModuleCache(cache_dir, max_mb=cache_max_mb)
        # Sampled PGO (repro.sampling): a rate switches the training
        # phase from the instrumenting two-compile workflow to the
        # sampling profiler — no rewrite, k-deep calling contexts, and
        # confidence-gated feedback (the low-confidence rung below).
        self.sample_rate = sample_rate
        self.context_depth = context_depth
        self.sample_seed = sample_seed
        self.min_profile_confidence = min_profile_confidence
        # Which interpreter engine training runs (and BuildResult.run)
        # execute under; "reference" forces the un-pre-decoded loop.
        self.engine = engine
        self._profile_cache: Optional[Tuple[ProfileDatabase, float]] = None
        self._reload_cache: Optional[ProfileDatabase] = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def build(
        self,
        scope: str = "cp",
        config: Optional[HLOConfig] = None,
        observer=None,
        profile_override: Optional[ProfileDatabase] = None,
    ) -> BuildResult:
        import time

        obs = observer if observer is not None else NULL_OBSERVER
        started = time.perf_counter()
        cross_module, use_profile = scope_flags(scope)
        cfg = (config or self.base_config).with_scope(cross_module, use_profile)
        if self.strict:
            cfg = cfg.with_strict()
        diagnostics = BuildDiagnostics()
        compile_units = 0.0

        with obs.tracer.span("build", scope=scope) as build_span:
            profile: Optional[ProfileDatabase] = None
            if use_profile and profile_override is not None:
                # An externally collected profile (the continuous-
                # profiling loop's merged fleet evidence) replaces the
                # training phase outright; it still takes the same
                # text round-trip and confidence/staleness rungs a
                # trained profile would.
                with obs.tracer.span("profile-override", cat="pgo"):
                    profile = self._reload_profile(
                        profile_override, diagnostics, cacheable=False
                    )
            elif use_profile:
                if not self.train_inputs:
                    raise ValueError(
                        "scope {!r} needs training inputs for the PGO pipeline".format(scope)
                    )
                with obs.tracer.span("train", cat="pgo"):
                    profile, train_units = self._train(cfg, diagnostics, obs)
                    compile_units += train_units
                    profile = self._reload_profile(profile, diagnostics)
            if use_profile:
                if profile is not None and profile.sampled:
                    confidence = profile.overall_confidence()
                    if confidence < self.min_profile_confidence:
                        # Low-confidence rung: too few samples landed to
                        # trust the estimates; static frequency analysis
                        # beats amplified sampling noise.
                        self._degrade_profile(
                            diagnostics,
                            "low-confidence sampled profile: confidence "
                            "{:.2f} below minimum {:.2f}".format(
                                confidence, self.min_profile_confidence
                            ),
                        )
                        obs.tracer.instant(
                            "profile-low-confidence", cat="resilience"
                        )
                        profile = None

            # The final compile: front end, then (for cross-module scopes)
            # the isom round trip and link, then HLO.
            with obs.tracer.span("frontend", cat="frontend"):
                program = self._frontend(cfg, diagnostics, obs)
            if cross_module:
                with obs.tracer.span("isom-roundtrip", cat="linker"):
                    modules, fallbacks = self._isom_roundtrip(program)
                    program = link_modules(modules)
                if fallbacks:
                    diagnostics.module_fallbacks.extend(fallbacks)
                    for name in fallbacks:
                        diagnostics.warn(
                            "isom for module {!r} unusable; "
                            "compiling it module-at-a-time".format(name)
                        )
                        obs.tracer.instant(
                            "isom-fallback:{}".format(name), cat="resilience"
                        )
                    cfg = cfg.with_local_modules(fallbacks)

            annotated = 0
            site_counts = None
            context_counts = None
            if profile is not None:
                annotated = annotate_program(program, profile)
                if annotated == 0 and not profile.is_empty():
                    # Every recorded key missed: the profile was trained
                    # against different sources.  Stale feedback is worse
                    # than none — fall back to static estimation.
                    self._degrade_profile(
                        diagnostics,
                        "stale profile: no recorded block matches this program",
                    )
                    profile = None
                else:
                    site_counts = profile.site_counts
                    context_counts = profile.context_view()
            if profile is not None and obs.metrics.enabled:
                # Against the pre-HLO program: coverage/staleness of
                # the feedback as the optimizer actually received it.
                collect_profile_metrics(profile, program, registry=obs.metrics)

            pipeline = None
            if self.fault_injector is not None:
                from ..opt.pass_manager import default_pipeline

                pipeline = self.fault_injector.wrap_pipeline(default_pipeline())

            with obs.tracer.span("hlo", cat="hlo"):
                report = run_hlo(
                    program, cfg, site_counts=site_counts, pipeline=pipeline,
                    observer=obs, context_counts=context_counts,
                )
            compile_units += report.final_cost
            build_span.add(compile_units=round(compile_units, 2))

        trained = self._profile_cache[0] if self._profile_cache else None
        if profile_override is not None:
            trained = profile_override
        stats = BuildStats(
            scope=scope,
            compile_units=compile_units,
            train_steps=trained.training_steps if use_profile and trained else 0,
            train_runs=trained.training_runs if use_profile and trained else 0,
            code_size_instrs=program.size(),
            annotated_blocks=annotated,
            wall_seconds=time.perf_counter() - started,
        )
        if obs.metrics.enabled:
            collect_build_metrics(diagnostics, report, stats,
                                  registry=obs.metrics)
            obs.metrics.observe(names.BUILD_WALL_S_HIST, stats.wall_seconds)
        return BuildResult(
            program, report, stats, profile, diagnostics, engine=self.engine
        )

    def build_all_scopes(
        self, config: Optional[HLOConfig] = None, observer=None
    ) -> Dict[str, BuildResult]:
        """All four Table 1 rows for this program."""
        return {scope: self.build(scope, config, observer) for scope in SCOPES}

    def rebuild_with_profile(
        self,
        profile: ProfileDatabase,
        scope: str = "cp",
        config: Optional[HLOConfig] = None,
        observer=None,
    ) -> BuildResult:
        """A profile-scope build fed an externally collected database.

        The continuous-profiling loop's entry point: no training run
        happens (the fleet already paid for the evidence); the profile
        takes the standard text round-trip, confidence rung, and
        staleness fallback on its way into the HLO, so a corrupt or
        degenerate merge degrades exactly like a corrupt trained
        profile would instead of poisoning the build.
        """
        cross_module, use_profile = scope_flags(scope)
        if not use_profile:
            raise ValueError(
                "rebuild_with_profile needs a profile scope ('p' or 'cp'), "
                "got {!r}".format(scope)
            )
        return self.build(
            scope, config=config, observer=observer, profile_override=profile
        )

    # ------------------------------------------------------------------
    # PGO pipeline pieces
    # ------------------------------------------------------------------

    def _frontend(
        self,
        cfg: Optional[HLOConfig] = None,
        diagnostics: Optional[BuildDiagnostics] = None,
        observer=None,
    ) -> Program:
        if not self._use_pipeline:
            return compile_program(self.sources)

        from ..parallel.executor import compile_sources

        jobs = max(1, self.jobs if self.jobs is not None else 1)
        profile = self._profile_cache[0] if self._profile_cache else None
        warn = diagnostics.warn if diagnostics is not None else None
        mark = self.cache.stats.snapshot() if self.cache is not None else None
        evict_mark = self.cache.stats.size_evictions if self.cache is not None else 0
        program, stats = compile_sources(
            self.sources,
            jobs=jobs,
            cache=self.cache,
            fingerprint=cfg.fingerprint() if cfg is not None else "",
            profile=profile,
            warn=warn,
            observer=observer if observer is not None else NULL_OBSERVER,
            timeout=self.compile_timeout,
            pool=self.state.pool if self.state is not None else None,
        )
        if diagnostics is not None:
            diagnostics.parallel_jobs = max(diagnostics.parallel_jobs, stats.jobs)
            diagnostics.modules_compiled += stats.compiled
            diagnostics.modules_from_cache += stats.from_cache
            diagnostics.compile_timeouts += stats.compile_timeouts
            diagnostics.worker_errors.extend(stats.worker_errors)
            if stats.serial_fallback:
                diagnostics.parallel_fallbacks.append(
                    stats.fallback_reason or "worker pool unavailable"
                )
            if mark is not None:
                hits, misses, invalidations, _stores = self.cache.stats.since(mark)
                diagnostics.record_cache(hits, misses, invalidations)
                diagnostics.cache_size_evictions += (
                    self.cache.stats.size_evictions - evict_mark
                )
        return program

    # ------------------------------------------------------------------
    # Degradation ladder (docs/resilience.md)
    # ------------------------------------------------------------------

    def _isom_roundtrip(self, program: Program):
        """Route every module through isom text, degrading per module.

        A module whose isom is truncated, corrupted, or version-skewed
        falls back to its direct front-end compile (module-at-a-time:
        the returned fallback list feeds ``HLOConfig.local_modules`` so
        no transform crosses its boundary), instead of failing the
        whole link.
        """
        modules = []
        fallbacks: List[str] = []
        for mod in program.modules.values():
            text = to_isom_text(mod)
            if self.fault_injector is not None:
                text = self.fault_injector.corrupt_isom(text, mod.name)
            try:
                modules.append(from_isom_text(text))
            except IsomError as exc:
                if self.strict:
                    raise StrictModeError(
                        "isom for module {!r} unusable under --strict: {}".format(
                            mod.name, exc
                        )
                    ) from exc
                fallbacks.append(mod.name)
                modules.append(mod)  # the direct front-end compile
        return modules, fallbacks

    def _reload_profile(
        self,
        profile: ProfileDatabase,
        diagnostics: BuildDiagnostics,
        cacheable: bool = True,
    ) -> Optional[ProfileDatabase]:
        """Round-trip the profile through its on-disk text form.

        The real pipeline keeps the database on disk between the
        training and final compiles; routing the in-memory build
        through ``to_text``/``from_text`` keeps both paths identical
        and gives corruption one well-defined place to strike.  A
        database that fails to parse degrades to static estimation.
        """
        if (
            cacheable
            and self.fault_injector is None
            and self._reload_cache is not None
        ):
            return self._reload_cache
        text = profile.to_text()
        if self.fault_injector is not None:
            text = self.fault_injector.corrupt_profile(text)
        try:
            reloaded = ProfileDatabase.from_text(text)
            if cacheable and self.fault_injector is None:
                self._reload_cache = reloaded
            return reloaded
        except ProfileFormatError as exc:
            self._degrade_profile(
                diagnostics, "profile database unusable: {}".format(exc)
            )
            return None

    def _degrade_profile(self, diagnostics: BuildDiagnostics, reason: str) -> None:
        if self.strict:
            raise StrictModeError(reason)
        diagnostics.profile_fallback = reason
        diagnostics.warn(reason + "; using static frequency estimates")

    def _train(
        self,
        cfg: Optional[HLOConfig] = None,
        diagnostics: Optional[BuildDiagnostics] = None,
        observer=None,
    ) -> Tuple[ProfileDatabase, float]:
        """Training-phase profile collection (cached per toolchain).

        Without a ``sample_rate`` this is the paper's instrumenting
        compile + training runs.  With one, the sampling profiler
        (:mod:`repro.sampling`) runs the *unmodified* program under the
        interpreter's event stream instead — cheaper per step, no
        instrumenting rewrite, and the database carries contexts and
        confidence for the consumers downstream.
        """
        if self._profile_cache is not None:
            return self._profile_cache
        if self.sample_rate is not None:
            self._profile_cache = self._train_sampled(cfg, diagnostics, observer)
            return self._profile_cache
        db = ProfileDatabase()
        units = 0.0
        for index, inputs in enumerate(self.train_inputs):
            program = self._frontend(cfg, diagnostics, observer)
            probe_map = instrument_program(program)
            if index == 0:
                units += program_cost(program)  # one instrumenting compile
            result = run_program(
                program, inputs, max_steps=self.max_train_steps,
                engine=self.engine,
            )
            db.merge_run(program, probe_map, result.probe_counts, result.steps)
        units += db.training_steps * TRAIN_STEP_UNITS
        self._profile_cache = (db, units)
        return self._profile_cache

    def _train_sampled(
        self,
        cfg: Optional[HLOConfig] = None,
        diagnostics: Optional[BuildDiagnostics] = None,
        observer=None,
    ) -> Tuple[ProfileDatabase, float]:
        from ..sampling.sampler import (
            DEFAULT_CONTEXT_DEPTH,
            SampledProfile,
            sample_run,
        )

        depth = (
            self.context_depth
            if self.context_depth is not None
            else DEFAULT_CONTEXT_DEPTH
        )
        acc = SampledProfile(
            rate=self.sample_rate, context_depth=depth, seed=self.sample_seed
        )
        program = self._frontend(cfg, diagnostics, observer)
        units = program_cost(program)  # one plain (non-instrumenting) compile
        for inputs in self.train_inputs:
            sample_run(
                program, inputs, profile=acc, max_steps=self.max_train_steps,
                engine=self.engine,
            )
        db = acc.to_database(self._frontend(cfg, diagnostics, observer))
        units += db.training_steps * SAMPLED_STEP_UNITS
        return db, units
