"""Schema validation for observability outputs (CI gate).

``python -m repro.obs.validate --trace T.json --metrics M.json
[--ledger L.jsonl] [--flame F.json] [--fleet-ledger FL.jsonl]
[--series S.jsonl] [--serve B.json]`` checks that the artifacts CI
uploads actually
parse and carry the fields their consumers (Perfetto, speedscope, the
bench dashboard, the ledger tooling) rely on.  Pure stdlib — the
checks are hand-rolled rather than jsonschema-based so the validator
runs in the bare CI image.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .fleetledger import ENTRY_KINDS
from .ledger import DECISIONS

_TRACE_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate_trace(obj) -> List[str]:
    """Problems with a Chrome trace-event JSON object (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["trace: top level must be an object with 'traceEvents'"]
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["trace: 'traceEvents' must be a non-empty list"]
    for index, event in enumerate(events):
        where = "trace: event[{}]".format(index)
        if not isinstance(event, dict):
            errors.append(where + " is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append("{} missing {!r}".format(where, key))
        phase = event.get("ph")
        if phase not in _TRACE_PHASES:
            errors.append("{} has unknown ph {!r}".format(where, phase))
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        "{} {} must be a non-negative number".format(where, key)
                    )
        if phase == "i" and "ts" not in event:
            errors.append(where + " instant missing 'ts'")
    return errors


def validate_metrics(obj) -> List[str]:
    """Problems with a ``--metrics-out`` JSON object (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["metrics: top level must be an object"]
    if not isinstance(obj.get("schema"), int):
        errors.append("metrics: missing integer 'schema'")
    for section in ("counters", "gauges"):
        table = obj.get(section)
        if not isinstance(table, dict):
            errors.append("metrics: missing object {!r}".format(section))
            continue
        for name, value in table.items():
            if not isinstance(value, (int, float)):
                errors.append(
                    "metrics: {}[{!r}] is not a number".format(section, name)
                )
    histograms = obj.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("metrics: missing object 'histograms'")
    else:
        for name, summary in histograms.items():
            if not isinstance(summary, dict):
                errors.append("metrics: histogram {!r} is not an object".format(name))
                continue
            for key in ("count", "sum", "min", "max", "mean", "p50", "p95"):
                if not isinstance(summary.get(key), (int, float)):
                    errors.append(
                        "metrics: histogram {!r} missing numeric {!r}".format(
                            name, key
                        )
                    )
    return errors


def validate_ledger_jsonl(text: str) -> List[str]:
    """Problems with an ``--explain-inlining-out`` JSONL file."""
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["ledger: file is empty"]
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return ["ledger: header line is not JSON: {}".format(exc)]
    for key in ("schema", "considered", "decisions", "rejection_classes"):
        if key not in header:
            errors.append("ledger: header missing {!r}".format(key))
    entries = 0
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append("ledger: line {} is not JSON: {}".format(number, exc))
            continue
        entries += 1
        for key in ("phase", "pass", "caller", "callee", "site_id",
                    "decision", "reason", "reason_class"):
            if key not in record:
                errors.append(
                    "ledger: line {} missing {!r}".format(number, key)
                )
        if record.get("decision") not in DECISIONS:
            errors.append(
                "ledger: line {} has unknown decision {!r}".format(
                    number, record.get("decision")
                )
            )
    considered = header.get("considered")
    if isinstance(considered, int) and considered != entries:
        errors.append(
            "ledger: header says {} considered but file has {} entries".format(
                considered, entries
            )
        )
    return errors


def validate_flame(obj) -> List[str]:
    """Problems with a speedscope flamegraph JSON (empty = valid).

    Checks the subset of https://www.speedscope.app/file-format-schema.json
    the app actually needs to load a ``sampled`` profile: a shared
    frame table, and per-profile parallel ``samples``/``weights``
    arrays whose frame indices are in range.
    """
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["flame: top level must be an object"]
    if not isinstance(obj.get("$schema"), str):
        errors.append("flame: missing string '$schema'")
    shared = obj.get("shared")
    frames = shared.get("frames") if isinstance(shared, dict) else None
    if not isinstance(frames, list):
        errors.append("flame: missing 'shared.frames' list")
        frames = []
    for index, frame in enumerate(frames):
        if not isinstance(frame, dict) or not isinstance(frame.get("name"), str):
            errors.append(
                "flame: shared.frames[{}] missing string 'name'".format(index)
            )
    profiles = obj.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        return errors + ["flame: missing non-empty 'profiles' list"]
    for pindex, profile in enumerate(profiles):
        where = "flame: profiles[{}]".format(pindex)
        if not isinstance(profile, dict):
            errors.append(where + " is not an object")
            continue
        if profile.get("type") != "sampled":
            errors.append(
                "{} has type {!r}, expected 'sampled'".format(
                    where, profile.get("type")
                )
            )
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(weights, list):
            errors.append(where + " missing 'samples'/'weights' lists")
            continue
        if len(samples) != len(weights):
            errors.append(
                "{} has {} samples but {} weights".format(
                    where, len(samples), len(weights)
                )
            )
        for sindex, stack in enumerate(samples):
            if not isinstance(stack, list) or any(
                not isinstance(f, int) or not 0 <= f < len(frames)
                for f in stack
            ):
                errors.append(
                    "{} samples[{}] has out-of-range frame index".format(
                        where, sindex
                    )
                )
        for windex, weight in enumerate(weights):
            if not isinstance(weight, (int, float)) or weight < 0:
                errors.append(
                    "{} weights[{}] is not a non-negative number".format(
                        where, windex
                    )
                )
        for key in ("startValue", "endValue"):
            if not isinstance(profile.get(key), (int, float)):
                errors.append("{} missing numeric {!r}".format(where, key))
    return errors


def validate_fleet_ledger_jsonl(text: str) -> List[str]:
    """Problems with a ``repro fleet explain`` / ``--fleet-ledger-out``
    JSONL file (empty = valid)."""
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["fleet-ledger: file is empty"]
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return ["fleet-ledger: header line is not JSON: {}".format(exc)]
    for key in ("schema", "kind", "entries", "verdicts", "transitions",
                "decisions", "codes"):
        if key not in header:
            errors.append("fleet-ledger: header missing {!r}".format(key))
    if header.get("kind") != "fleet-ledger":
        errors.append(
            "fleet-ledger: header kind is {!r}".format(header.get("kind"))
        )
    counts = {kind: 0 for kind in ENTRY_KINDS}
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append(
                "fleet-ledger: line {} is not JSON: {}".format(number, exc)
            )
            continue
        kind = record.get("kind")
        if kind not in ENTRY_KINDS:
            errors.append(
                "fleet-ledger: line {} has unknown kind {!r}".format(
                    number, kind
                )
            )
            continue
        counts[kind] += 1
        for key in ("actor", "code"):
            if not isinstance(record.get(key), str):
                errors.append(
                    "fleet-ledger: line {} missing string {!r}".format(
                        number, key
                    )
                )
        if kind == "verdict" and not isinstance(record.get("accepted"), bool):
            errors.append(
                "fleet-ledger: line {} verdict missing bool 'accepted'".format(
                    number
                )
            )
    # Completeness: the header totals must equal what the file holds.
    for key, kind in (("verdicts", "verdict"), ("transitions", "breaker"),
                      ("decisions", "decision")):
        declared = header.get(key)
        if isinstance(declared, int) and declared != counts[kind]:
            errors.append(
                "fleet-ledger: header says {} {} but file has {}".format(
                    declared, key, counts[kind]
                )
            )
    declared_total = header.get("entries")
    if isinstance(declared_total, int) and declared_total != len(lines) - 1:
        errors.append(
            "fleet-ledger: header says {} entries but file has {}".format(
                declared_total, len(lines) - 1
            )
        )
    return errors


def validate_series_jsonl(text: str) -> List[str]:
    """Problems with a ``--series-out`` JSONL file (empty = valid)."""
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["series: file is empty"]
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return ["series: header line is not JSON: {}".format(exc)]
    if not isinstance(header.get("schema"), int):
        errors.append("series: header missing integer 'schema'")
    if header.get("kind") != "series":
        errors.append("series: header kind is {!r}".format(header.get("kind")))
    declared = header.get("series")
    if not isinstance(declared, dict):
        errors.append("series: header missing object 'series'")
        declared = {}
    for name, meta in declared.items():
        if not isinstance(meta, dict):
            errors.append("series: header[{!r}] is not an object".format(name))
            continue
        for key in ("points", "dropped", "capacity"):
            if not isinstance(meta.get(key), int):
                errors.append(
                    "series: header[{!r}] missing integer {!r}".format(
                        name, key
                    )
                )
    counts = {name: 0 for name in declared}
    last_tick = {}
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append("series: line {} is not JSON: {}".format(number, exc))
            continue
        name = record.get("series")
        if not isinstance(name, str):
            errors.append(
                "series: line {} missing string 'series'".format(number)
            )
            continue
        if name not in declared:
            errors.append(
                "series: line {} names undeclared series {!r}".format(
                    number, name
                )
            )
        tick = record.get("tick")
        if not isinstance(tick, int):
            errors.append("series: line {} missing integer 'tick'".format(number))
        elif name in last_tick and tick < last_tick[name]:
            errors.append(
                "series: line {} ticks go backwards for {!r}".format(
                    number, name
                )
            )
        else:
            last_tick[name] = tick
        if not isinstance(record.get("value"), (int, float)):
            errors.append(
                "series: line {} missing numeric 'value'".format(number)
            )
        if name in counts:
            counts[name] += 1
    for name, meta in declared.items():
        points = meta.get("points") if isinstance(meta, dict) else None
        if isinstance(points, int) and points != counts.get(name, 0):
            errors.append(
                "series: header says {} points for {!r} but file has {}".format(
                    points, name, counts.get(name, 0)
                )
            )
    return errors


def validate_bench(obj) -> List[str]:
    """Problems with a ``BENCH_smoke.json`` report (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["bench: top level must be an object"]
    if not isinstance(obj.get("schema"), int):
        errors.append("bench: missing integer 'schema'")
    workloads = obj.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        errors.append("bench: missing non-empty object 'workloads'")
    else:
        for name, entry in workloads.items():
            where = "bench: workloads[{!r}]".format(name)
            if not isinstance(entry, dict):
                errors.append(where + " is not an object")
                continue
            for key in ("compile_units", "cycles", "wall_s"):
                if not isinstance(entry.get(key), (int, float)):
                    errors.append("{} missing numeric {!r}".format(where, key))
            if not isinstance(entry.get("checksum"), str):
                errors.append(where + " missing string 'checksum'")
    for section in ("totals", "build", "cache", "observability"):
        if not isinstance(obj.get(section), dict):
            errors.append("bench: missing object {!r}".format(section))
    sampling = obj.get("sampling")
    if not isinstance(sampling, dict):
        errors.append("bench: missing object 'sampling'")
    else:
        for key in ("rate", "min_overlap", "mean_overlap"):
            if not isinstance(sampling.get(key), (int, float)):
                errors.append("bench: sampling missing numeric {!r}".format(key))
        per = sampling.get("workloads")
        if not isinstance(per, dict) or not per:
            errors.append("bench: sampling missing non-empty object 'workloads'")
        else:
            for name, entry in per.items():
                where = "bench: sampling.workloads[{!r}]".format(name)
                if not isinstance(entry, dict):
                    errors.append(where + " is not an object")
                    continue
                for key in ("overlap", "exact_decisions",
                            "sampled_decisions", "confidence"):
                    if not isinstance(entry.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(where, key)
                        )
                overlap = entry.get("overlap")
                if isinstance(overlap, (int, float)) and not 0.0 <= overlap <= 1.0:
                    errors.append(
                        "{} overlap {} outside [0, 1]".format(where, overlap)
                    )
    interp = obj.get("interp")
    if not isinstance(interp, dict):
        errors.append("bench: missing object 'interp'")
    else:
        if not isinstance(interp.get("engine"), str):
            errors.append("bench: interp missing string 'engine'")
        for key in ("min_speedup", "mean_speedup", "plans_compiled",
                    "plan_cache_hits", "codegen_min_speedup",
                    "codegen_mean_speedup", "codegen_plans_compiled",
                    "codegen_plan_cache_hits"):
            if not isinstance(interp.get(key), (int, float)):
                errors.append("bench: interp missing numeric {!r}".format(key))
        per = interp.get("workloads")
        if not isinstance(per, dict) or not per:
            errors.append("bench: interp missing non-empty object 'workloads'")
        else:
            for name, entry in per.items():
                where = "bench: interp.workloads[{!r}]".format(name)
                if not isinstance(entry, dict):
                    errors.append(where + " is not an object")
                    continue
                for key in ("steps", "steps_per_sec",
                            "reference_steps_per_sec", "speedup",
                            "codegen_steps_per_sec", "codegen_speedup"):
                    if not isinstance(entry.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(where, key)
                        )
                for key in ("speedup", "codegen_speedup"):
                    value = entry.get(key)
                    if isinstance(value, (int, float)) and value <= 0:
                        errors.append(
                            "{} {} {} is not positive".format(where, key, value)
                        )
    runtime = obj.get("runtime")
    if not isinstance(runtime, dict):
        errors.append("bench: missing object 'runtime' (schema >= 6)")
    else:
        for key in ("overhead_ratio", "max_overhead", "contexts", "samples"):
            if not isinstance(runtime.get(key), (int, float)):
                errors.append("bench: runtime missing numeric {!r}".format(key))
        ratio = runtime.get("overhead_ratio")
        if isinstance(ratio, (int, float)) and ratio <= 0:
            errors.append(
                "bench: runtime overhead_ratio {} is not positive".format(ratio)
            )
        if not isinstance(runtime.get("engines_consistent"), bool):
            errors.append("bench: runtime missing bool 'engines_consistent'")
    fleet = obj.get("fleet")
    if not isinstance(fleet, dict):
        errors.append("bench: missing object 'fleet'")
    else:
        for key in ("rounds", "seed", "fault_rate", "min_jaccard",
                    "mean_jaccard"):
            if not isinstance(fleet.get(key), (int, float)):
                errors.append("bench: fleet missing numeric {!r}".format(key))
        per = fleet.get("workloads")
        if not isinstance(per, dict) or not per:
            errors.append("bench: fleet missing non-empty object 'workloads'")
        else:
            for name, entry in per.items():
                where = "bench: fleet.workloads[{!r}]".format(name)
                if not isinstance(entry, dict):
                    errors.append(where + " is not an object")
                    continue
                for key in ("jaccard", "rebuilds", "rollbacks", "swaps",
                            "quarantined_epochs", "served_rolled_back"):
                    if not isinstance(entry.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(where, key)
                        )
                jac = entry.get("jaccard")
                if isinstance(jac, (int, float)) and not 0.0 <= jac <= 1.0:
                    errors.append(
                        "{} jaccard {} outside [0, 1]".format(where, jac)
                    )
    serve = obj.get("serve")
    if not isinstance(serve, dict):
        errors.append("bench: missing object 'serve' (schema >= 7)")
    else:
        errors.extend(validate_serve(serve))
    scale = obj.get("scale")
    if not isinstance(scale, dict):
        errors.append("bench: missing object 'scale' (schema >= 8)")
    else:
        errors.extend(validate_scale(scale))
    return errors


def validate_scale(obj) -> List[str]:
    """Problems with a compile-scaling report (``scale`` section of a
    schema-8 ``BENCH_smoke.json`` or a standalone ``bench-scale`` run)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["scale: top level must be an object"]
    tiers = obj.get("tiers")
    if not isinstance(tiers, dict) or not tiers:
        errors.append("scale: missing non-empty object 'tiers'")
    else:
        for tier, entry in tiers.items():
            where = "scale: tiers[{!r}]".format(tier)
            if not isinstance(entry, dict):
                errors.append(where + " is not an object")
                continue
            if not isinstance(entry.get("n_modules"), int):
                errors.append(where + " missing integer 'n_modules'")
            strategies = entry.get("strategies")
            if not isinstance(strategies, dict) or not strategies:
                errors.append(where + " missing non-empty object 'strategies'")
                continue
            for strategy, measured in strategies.items():
                inner = "{}.strategies[{!r}]".format(where, strategy)
                if not isinstance(measured, dict):
                    errors.append(inner + " is not an object")
                    continue
                for key in ("strategy_wall_s", "strategy_peak_kb",
                            "sites_considered", "transforms", "final_size"):
                    if not isinstance(measured.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(inner, key)
                        )
    ratios = obj.get("ratios")
    if not isinstance(ratios, dict):
        errors.append("scale: missing object 'ratios'")
    else:
        for key in ("wall_growth_ratio", "peak_growth_ratio",
                    "sites_growth_ratio"):
            if not isinstance(ratios.get(key), (int, float)):
                errors.append("scale: ratios missing numeric {!r}".format(key))
    parity = obj.get("parity")
    if not isinstance(parity, dict) or not parity:
        errors.append("scale: missing non-empty object 'parity'")
    else:
        for name, entry in parity.items():
            where = "scale: parity[{!r}]".format(name)
            if not isinstance(entry, dict):
                errors.append(where + " is not an object")
                continue
            for key in ("global_cycles", "demand_cycles", "ratio"):
                if not isinstance(entry.get(key), (int, float)):
                    errors.append("{} missing numeric {!r}".format(where, key))
            ratio = entry.get("ratio")
            if isinstance(ratio, (int, float)) and ratio <= 0:
                errors.append(
                    "{} ratio {} is not positive".format(where, ratio)
                )
    gates = obj.get("gates")
    if not isinstance(gates, dict) or not gates:
        errors.append("scale: missing non-empty object 'gates'")
    else:
        for key, value in gates.items():
            if not isinstance(value, bool):
                errors.append(
                    "scale: gates[{!r}] {!r} is not a bool".format(key, value)
                )
    return errors


def validate_serve(obj) -> List[str]:
    """Problems with a serve-bench report (``BENCH_serve.json`` or the
    ``serve`` section of a schema-7 ``BENCH_smoke.json``)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["serve: top level must be an object"]
    for key in ("schema", "clients", "requests", "errors", "busy",
                "wall_s", "throughput_rps", "builds", "result_hits",
                "dedupe_hits", "shed", "timeouts", "server_requests"):
        if not isinstance(obj.get(key), (int, float)):
            errors.append("serve: missing numeric {!r}".format(key))
    if not isinstance(obj.get("workloads"), list) or not obj.get("workloads"):
        errors.append("serve: missing non-empty list 'workloads'")
    for key in ("latency_ms", "cold_build_ms", "warm_rebuild_ms", "run_ms"):
        dist = obj.get(key)
        if not isinstance(dist, dict):
            errors.append("serve: missing object {!r}".format(key))
            continue
        for stat in ("count", "p50", "p95", "p99", "max"):
            if not isinstance(dist.get(stat), (int, float)):
                errors.append(
                    "serve: {}.{} is not a number".format(key, stat)
                )
    if not isinstance(obj.get("artifacts_identical"), bool):
        errors.append("serve: missing bool 'artifacts_identical'")
    return errors


def _load_json(path: str, errors: List[str], label: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        errors.append("{}: cannot load {}: {}".format(label, path, exc))
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="schema-validate observability artifacts",
    )
    parser.add_argument("--trace", metavar="FILE",
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics", metavar="FILE",
                        help="metrics JSON to validate")
    parser.add_argument("--ledger", metavar="FILE",
                        help="inlining-ledger JSONL to validate")
    parser.add_argument("--bench", metavar="FILE",
                        help="BENCH_smoke.json report to validate")
    parser.add_argument("--flame", metavar="FILE",
                        help="speedscope flamegraph JSON to validate")
    parser.add_argument("--fleet-ledger", metavar="FILE",
                        help="fleet-ledger JSONL to validate")
    parser.add_argument("--series", metavar="FILE",
                        help="time-series JSONL to validate")
    parser.add_argument("--serve", metavar="FILE",
                        help="BENCH_serve.json load-bench report to validate")
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.ledger or args.bench
            or args.flame or args.fleet_ledger or args.series
            or args.serve):
        parser.error(
            "nothing to validate: pass --trace/--metrics/--ledger/--bench"
            "/--flame/--fleet-ledger/--series/--serve"
        )

    errors: List[str] = []
    if args.trace:
        obj = _load_json(args.trace, errors, "trace")
        if obj is not None:
            errors.extend(validate_trace(obj))
    if args.metrics:
        obj = _load_json(args.metrics, errors, "metrics")
        if obj is not None:
            errors.extend(validate_metrics(obj))
    if args.ledger:
        try:
            with open(args.ledger) as handle:
                errors.extend(validate_ledger_jsonl(handle.read()))
        except OSError as exc:
            errors.append("ledger: cannot load {}: {}".format(args.ledger, exc))
    if args.bench:
        obj = _load_json(args.bench, errors, "bench")
        if obj is not None:
            errors.extend(validate_bench(obj))
    if args.flame:
        obj = _load_json(args.flame, errors, "flame")
        if obj is not None:
            errors.extend(validate_flame(obj))
    if args.fleet_ledger:
        try:
            with open(args.fleet_ledger) as handle:
                errors.extend(validate_fleet_ledger_jsonl(handle.read()))
        except OSError as exc:
            errors.append(
                "fleet-ledger: cannot load {}: {}".format(args.fleet_ledger, exc)
            )
    if args.series:
        try:
            with open(args.series) as handle:
                errors.extend(validate_series_jsonl(handle.read()))
        except OSError as exc:
            errors.append("series: cannot load {}: {}".format(args.series, exc))
    if args.serve:
        obj = _load_json(args.serve, errors, "serve")
        if obj is not None:
            errors.extend(validate_serve(obj))

    for error in errors:
        print("FAIL:", error, file=sys.stderr)
    if not errors:
        print("observability artifacts valid")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
