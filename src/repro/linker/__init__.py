"""Isom serialization, link step, and the scope-aware compiler driver."""

from ..resilience.errors import IsomError
from .isom import (
    ISOM_EXTENSION,
    ISOM_VERSION,
    from_isom_text,
    is_isom_text,
    read_isom,
    read_isoms,
    roundtrip_modules,
    to_isom_text,
    write_isom,
)
from .linker import LinkError, link_modules
from .toolchain import (
    SCOPES,
    BuildResult,
    BuildStats,
    Toolchain,
    ToolchainState,
    scope_flags,
)

__all__ = [
    "BuildResult",
    "BuildStats",
    "ISOM_EXTENSION",
    "ISOM_VERSION",
    "IsomError",
    "LinkError",
    "SCOPES",
    "Toolchain",
    "ToolchainState",
    "from_isom_text",
    "is_isom_text",
    "link_modules",
    "read_isom",
    "read_isoms",
    "roundtrip_modules",
    "scope_flags",
    "to_isom_text",
    "write_isom",
]
