"""Arithmetic semantics shared by the interpreter and the constant folder.

Integer operations follow two's-complement 64-bit semantics with C-like
truncating division, so that constant folding in the optimizer produces
bit-identical results to executing the instruction in the interpreter.
Keeping a single evaluation function is what makes the "optimization
preserves behaviour" property tests meaningful.
"""

from __future__ import annotations

from typing import Union

INT_BITS = 64
INT_MASK = (1 << INT_BITS) - 1
INT_MIN = -(1 << (INT_BITS - 1))
INT_MAX = (1 << (INT_BITS - 1)) - 1

BINARY_OPS = frozenset(
    [
        "add", "sub", "mul", "div", "mod",
        "and", "or", "xor", "shl", "shr",
        "eq", "ne", "lt", "le", "gt", "ge",
    ]
)

# Comparison opcodes always produce an INT truth value (0 or 1), even on
# float operands.
COMPARISON_OPS = frozenset(["eq", "ne", "lt", "le", "gt", "ge"])

# Opcodes that are only defined on integer operands.
INT_ONLY_OPS = frozenset(["mod", "and", "or", "xor", "shl", "shr"])

UNARY_OPS = frozenset(["neg", "not", "lnot", "itof", "ftoi"])

COMMUTATIVE_OPS = frozenset(["add", "mul", "and", "or", "xor", "eq", "ne"])


class EvalError(Exception):
    """Raised for dynamically invalid arithmetic (division by zero)."""


def wrap_int(value: int) -> int:
    """Reduce ``value`` to a signed 64-bit integer."""
    value &= INT_MASK
    if value > INT_MAX:
        value -= 1 << INT_BITS
    return value


def _trunc_div(a: int, b: int) -> int:
    """C-style integer division truncating toward zero."""
    if b == 0:
        raise EvalError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _trunc_mod(a: int, b: int) -> int:
    """C-style remainder: ``a - trunc_div(a, b) * b``."""
    if b == 0:
        raise EvalError("integer modulo by zero")
    return a - _trunc_div(a, b) * b


def eval_binop(op: str, lhs: Union[int, float], rhs: Union[int, float]):
    """Evaluate a binary opcode on already-typed Python values.

    Integer inputs must already be in signed 64-bit range; the result is
    wrapped back into that range.  Mixed int/float operands are a type
    error (the front end inserts explicit conversions).
    """
    is_float = isinstance(lhs, float)
    if is_float != isinstance(rhs, float):
        raise TypeError("mixed int/float operands for {}".format(op))
    if is_float and op in INT_ONLY_OPS:
        raise TypeError("op {} is not defined on floats".format(op))

    if op == "eq":
        return 1 if lhs == rhs else 0
    if op == "ne":
        return 1 if lhs != rhs else 0
    if op == "lt":
        return 1 if lhs < rhs else 0
    if op == "le":
        return 1 if lhs <= rhs else 0
    if op == "gt":
        return 1 if lhs > rhs else 0
    if op == "ge":
        return 1 if lhs >= rhs else 0

    if is_float:
        if op == "add":
            return lhs + rhs
        if op == "sub":
            return lhs - rhs
        if op == "mul":
            return lhs * rhs
        if op == "div":
            if rhs == 0.0:
                raise EvalError("float division by zero")
            return lhs / rhs
        raise TypeError("unknown float op: {}".format(op))

    if op == "add":
        return wrap_int(lhs + rhs)
    if op == "sub":
        return wrap_int(lhs - rhs)
    if op == "mul":
        return wrap_int(lhs * rhs)
    if op == "div":
        return wrap_int(_trunc_div(lhs, rhs))
    if op == "mod":
        return wrap_int(_trunc_mod(lhs, rhs))
    if op == "and":
        return wrap_int((lhs & INT_MASK) & (rhs & INT_MASK))
    if op == "or":
        return wrap_int((lhs & INT_MASK) | (rhs & INT_MASK))
    if op == "xor":
        return wrap_int((lhs & INT_MASK) ^ (rhs & INT_MASK))
    if op == "shl":
        return wrap_int((lhs & INT_MASK) << (rhs % INT_BITS))
    if op == "shr":
        # Arithmetic shift right on the signed value.
        return wrap_int(lhs >> (rhs % INT_BITS))
    raise TypeError("unknown op: {}".format(op))


def eval_unop(op: str, src: Union[int, float]):
    """Evaluate a unary opcode (same conventions as :func:`eval_binop`)."""
    if op == "neg":
        if isinstance(src, float):
            return -src
        return wrap_int(-src)
    if op == "not":
        if isinstance(src, float):
            raise TypeError("bitwise not on float")
        return wrap_int(~src)
    if op == "lnot":
        return 0 if src else 1
    if op == "itof":
        return float(src)
    if op == "ftoi":
        if isinstance(src, float):
            if src != src or src in (float("inf"), float("-inf")):
                raise EvalError("float-to-int conversion of non-finite value")
            return wrap_int(int(src))
        return wrap_int(int(src))
    raise TypeError("unknown unary op: {}".format(op))
