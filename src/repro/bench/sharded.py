"""Sharded interpreter bench runner (``python -m repro.bench.sharded``).

Fans a workload's input set out over worker processes — one shard per
(workload, input chunk) — runs every input under the chosen engine, and
merges the per-shard :class:`~repro.interp.interpreter.Result` counters
back into one per-workload report (summed steps and call counts, merged
probe/site/block counters, aggregate steps/sec).

Two things make this more than a convenience wrapper:

- **Throughput**: interpreter runs are single-core; the per-input
  fan-out is how the codegen engine's speed shows up in fleet-bench
  throughput numbers rather than just per-run walls.
- **A pickling boundary**: the compiled :class:`~repro.ir.program.Program`
  crosses into each worker by pickle.  Cached execution plans hold
  closures and ``exec``-compiled code objects, neither of which
  pickles; ``Program.__getstate__`` strips both caches so the transfer
  works and workers rebuild plans lazily on first run.  The
  ``plans_compiled`` counter in each shard's report is the proof (and
  what ``tests/interp/test_codegen.py`` asserts).

Shards reuse :func:`repro.parallel.executor.parallel_map`, so worker
infrastructure failures degrade to a serial in-process run instead of
failing the bench.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..interp.interpreter import DEFAULT_ENGINE, DEFAULT_MAX_STEPS, ENGINES

DEFAULT_CHUNK = 1


def _run_shard(item: Tuple) -> dict:
    """Worker body: run one chunk of input vectors, return raw counters.

    Top-level so it pickles under ``ProcessPoolExecutor``; the Program
    inside ``item`` arrives through ``Program.__getstate__`` with its
    plan caches stripped, so the first run recompiles plans in-process.
    """
    from ..interp.interpreter import Interpreter

    program, chunk, engine, max_steps, site, block = item
    merged = {
        "runs": 0,
        "steps": 0,
        "call_count": 0,
        "exit_codes": [],
        "probe_counts": Counter(),
        "site_counts": Counter(),
        "block_counts": Counter(),
        "plans_compiled": 0,
        "plan_cache_hits": 0,
    }
    started = time.perf_counter()
    for inputs in chunk:
        interp = Interpreter(
            program, inputs, max_steps=max_steps, engine=engine,
            collect_site_counts=site, collect_block_counts=block,
        )
        result = interp.run()
        merged["runs"] += 1
        merged["steps"] += result.steps
        merged["call_count"] += result.call_count
        merged["exit_codes"].append(result.exit_code)
        merged["probe_counts"].update(result.probe_counts)
        merged["site_counts"].update(result.site_counts)
        merged["block_counts"].update(result.block_counts)
        merged["plans_compiled"] += interp.plans_compiled
        merged["plan_cache_hits"] += interp.plan_cache_hits
    merged["wall_s"] = time.perf_counter() - started
    return merged


def _chunks(seq: Sequence, size: int) -> List[list]:
    size = max(1, size)
    return [list(seq[i : i + size]) for i in range(0, len(seq), size)]


def run_sharded(
    names: Sequence[str],
    engine: str = DEFAULT_ENGINE,
    jobs: int = 4,
    chunk: int = DEFAULT_CHUNK,
    max_steps: int = DEFAULT_MAX_STEPS,
    collect_site_counts: bool = False,
    collect_block_counts: bool = False,
) -> dict:
    """Run every workload's input set sharded ``jobs`` wide.

    Each workload contributes its training inputs plus the reference
    input; shards are ``chunk`` inputs long.  Returns a report keyed by
    workload with merged counters, plus run-wide totals.
    """
    from ..parallel.executor import parallel_map
    from ..workloads.suite import get_workload

    items = []
    owners: List[str] = []
    for name in names:
        workload = get_workload(name)
        program = workload.compile()
        inputs = [list(t) for t in workload.train_inputs]
        inputs.append(list(workload.ref_input))
        for part in _chunks(inputs, chunk):
            items.append(
                (program, part, engine, max_steps,
                 collect_site_counts, collect_block_counts)
            )
            owners.append(name)

    started = time.perf_counter()
    shard_results, outcome = parallel_map(_run_shard, items, jobs=jobs)
    wall = time.perf_counter() - started

    per: Dict[str, dict] = {}
    for name, shard in zip(owners, shard_results):
        entry = per.setdefault(
            name,
            {
                "shards": 0,
                "runs": 0,
                "steps": 0,
                "call_count": 0,
                "exit_codes": [],
                "probe_counts": Counter(),
                "site_counts": Counter(),
                "block_counts": Counter(),
                "plans_compiled": 0,
                "plan_cache_hits": 0,
                "shard_wall_s": 0.0,
            },
        )
        entry["shards"] += 1
        entry["runs"] += shard["runs"]
        entry["steps"] += shard["steps"]
        entry["call_count"] += shard["call_count"]
        entry["exit_codes"].extend(shard["exit_codes"])
        entry["probe_counts"].update(shard["probe_counts"])
        entry["site_counts"].update(shard["site_counts"])
        entry["block_counts"].update(shard["block_counts"])
        entry["plans_compiled"] += shard["plans_compiled"]
        entry["plan_cache_hits"] += shard["plan_cache_hits"]
        entry["shard_wall_s"] += shard["wall_s"]

    total_steps = sum(entry["steps"] for entry in per.values())
    for entry in per.values():
        entry["shard_wall_s"] = round(entry["shard_wall_s"], 4)
        entry["steps_per_sec"] = (
            round(entry["steps"] / entry["shard_wall_s"], 1)
            if entry["shard_wall_s"]
            else 0.0
        )
    return {
        "engine": engine,
        "jobs": jobs,
        "chunk": chunk,
        "shards": len(items),
        "degraded": bool(outcome),
        "wall_s": round(wall, 4),
        "steps": total_steps,
        "steps_per_sec": round(total_steps / wall, 1) if wall else 0.0,
        "workloads": per,
    }


def _jsonable(report: dict) -> dict:
    """Counters keyed by tuples don't serialize; stringify the keys."""
    out = dict(report)
    out["workloads"] = {}
    for name, entry in report["workloads"].items():
        entry = dict(entry)
        for field in ("probe_counts", "site_counts", "block_counts"):
            entry[field] = {
                str(key): value for key, value in sorted(
                    entry[field].items(), key=lambda kv: str(kv[0])
                )
            }
        out["workloads"][name] = entry
    return out


def main(argv: Optional[Sequence[str]] = None) -> int:
    from ..workloads.suite import workload_names

    parser = argparse.ArgumentParser(
        prog="repro.bench.sharded",
        description="sharded interpreter bench: one process per "
        "workload/input chunk, merged Result counters",
    )
    parser.add_argument("--workloads", default=",".join(workload_names()),
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--engine", choices=ENGINES, default=DEFAULT_ENGINE)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--chunk", type=int, default=DEFAULT_CHUNK,
                        help="input vectors per shard")
    parser.add_argument("--max-steps", type=int, default=DEFAULT_MAX_STEPS)
    parser.add_argument("--site-counts", action="store_true",
                        help="merge per-call-site counters across shards")
    parser.add_argument("--block-counts", action="store_true",
                        help="merge per-block counters across shards")
    parser.add_argument("--output", metavar="FILE",
                        help="write the merged JSON report here")
    args = parser.parse_args(argv)

    names = [part.strip() for part in args.workloads.split(",") if part.strip()]
    report = run_sharded(
        names,
        engine=args.engine,
        jobs=args.jobs,
        chunk=args.chunk,
        max_steps=args.max_steps,
        collect_site_counts=args.site_counts,
        collect_block_counts=args.block_counts,
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(_jsonable(report), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote", args.output)
    print(
        "sharded: {} workload(s), {} shard(s) x{} jobs under '{}': "
        "{} steps in {:.2f}s ({:,.0f} steps/sec aggregate{})".format(
            len(names), report["shards"], report["jobs"], report["engine"],
            report["steps"], report["wall_s"], report["steps_per_sec"],
            ", DEGRADED to serial" if report["degraded"] else "",
        )
    )
    for name, entry in sorted(report["workloads"].items()):
        print(
            "  {:<10} {:>3} run(s) {:>10} steps {:>12,.0f} steps/sec "
            "{} plan(s) compiled".format(
                name, entry["runs"], entry["steps"],
                entry["steps_per_sec"], entry["plans_compiled"],
            )
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
