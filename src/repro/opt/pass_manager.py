"""Pass manager: composes procedure- and program-level optimizations.

The paper's claim rests on a strong downstream optimizer: "inlining at
the intermediate-code level ... a high-quality back end can exploit the
scheduling and register allocation opportunities presented by larger
subroutines."  Our pipeline is the classic scalar suite; HLO re-runs it
over every clone/inlined routine before recalibrating its budget.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

from ..ir.procedure import Procedure
from ..ir.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..resilience.guard import PassGuard

# A procedure pass takes (program, proc) and returns True when it changed IR.
ProcPass = Callable[[Program, Procedure], bool]

MAX_ITERATIONS = 8


def default_pipeline() -> List[Tuple[str, ProcPass]]:
    """The standard per-procedure pipeline, in order."""
    from .constprop import constant_propagation
    from .copyprop import copy_propagation
    from .cse import local_cse
    from .dce import dead_code_elimination
    from .licm import licm
    from .peephole import peephole
    from .simplifycfg import simplify_cfg

    return [
        ("constprop", constant_propagation),
        ("simplifycfg", simplify_cfg),
        ("copyprop", copy_propagation),
        ("peephole", peephole),
        ("cse", local_cse),
        ("licm", licm),
        ("dce", dead_code_elimination),
    ]


def optimize_proc(
    program: Program,
    proc: Procedure,
    pipeline: Optional[Sequence[Tuple[str, ProcPass]]] = None,
    max_iterations: int = MAX_ITERATIONS,
    guard: Optional["PassGuard"] = None,
    pass_number: int = -1,
    phase: str = "scalar",
) -> bool:
    """Run the pipeline over one procedure to a fixed point (bounded).

    With a :class:`~repro.resilience.PassGuard`, each pass application
    is isolated: an exception (or, in checked builds, a verifier
    failure) rolls the procedure back to its pre-pass state, records a
    structured diagnostic, and the remaining passes continue.  The
    iteration bound doubles as the per-pass step budget — a pass whose
    rollback/retry would otherwise loop forever converges to "no
    change" once the guard quarantines it.
    """
    passes = list(pipeline) if pipeline is not None else default_pipeline()
    changed_any = False
    for _ in range(max_iterations):
        changed = False
        for name, run in passes:
            if guard is not None:
                if guard.run_proc_pass(program, proc, name, run, pass_number, phase):
                    changed = True
            elif run(program, proc):
                changed = True
        if not changed:
            break
        changed_any = True
    return changed_any


def optimize_program(
    program: Program,
    pipeline: Optional[Sequence[Tuple[str, ProcPass]]] = None,
    interprocedural: bool = True,
    guard: Optional["PassGuard"] = None,
    pass_number: int = -1,
    phase: str = "scalar",
) -> bool:
    """Optimize every procedure, then apply program-level cleanups.

    With ``interprocedural`` set, dead-call elimination runs between
    per-procedure rounds (this is the analysis that deletes the no-op
    curses calls in the paper's 072.sc before inlining even starts).
    """
    from .deadcalls import eliminate_dead_calls

    changed_any = False
    for _ in range(3):
        changed = False
        for proc in list(program.all_procs()):
            if optimize_proc(
                program, proc, pipeline, guard=guard,
                pass_number=pass_number, phase=phase,
            ):
                changed = True
        if interprocedural:
            if guard is not None:
                deleted = guard.run_program_stage(
                    program, "deadcalls",
                    lambda: eliminate_dead_calls(program),
                    pass_number, phase, default=False,
                )
                changed = bool(deleted) or changed
            elif eliminate_dead_calls(program):
                changed = True
        if not changed:
            break
        changed_any = True
    return changed_any
