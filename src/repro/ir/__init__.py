"""The ucode-like intermediate representation.

Public surface: types, operand values, instructions, blocks, procedures,
modules, programs, a builder, a verifier, and the textual printer/parser
used for isom serialization.
"""

from .basicblock import BasicBlock
from .builder import IRBuilder
from .instructions import (
    CALL_INSTRS,
    Alloca,
    BinOp,
    Branch,
    Call,
    ICall,
    Instr,
    Jump,
    Load,
    Mov,
    Probe,
    Ret,
    Store,
    UnOp,
)
from .module import GlobalVar, Module
from .ops import (
    BINARY_OPS,
    COMMUTATIVE_OPS,
    COMPARISON_OPS,
    UNARY_OPS,
    EvalError,
    eval_binop,
    eval_unop,
    wrap_int,
)
from .procedure import (
    ATTR_ALWAYS_INLINE,
    ATTR_FP_REASSOC,
    ATTR_NOCLONE,
    ATTR_NOINLINE,
    ATTR_VARARGS,
    LINK_EXTERN,
    LINK_GLOBAL,
    LINK_STATIC,
    Procedure,
)
from .program import RUNTIME_BUILTINS, Program
from .parser import ParseError, parse_instr, parse_module, parse_operand, parse_program
from .printer import print_module, print_proc, print_program
from .types import Signature, Type, parse_type
from .values import FuncRef, GlobalRef, Imm, Operand, Reg, is_constant
from .verifier import VerifyError, verify_proc, verify_program

__all__ = [
    "ATTR_ALWAYS_INLINE",
    "ATTR_FP_REASSOC",
    "ATTR_NOCLONE",
    "ATTR_NOINLINE",
    "ATTR_VARARGS",
    "Alloca",
    "BasicBlock",
    "BinOp",
    "BINARY_OPS",
    "Branch",
    "CALL_INSTRS",
    "Call",
    "COMMUTATIVE_OPS",
    "COMPARISON_OPS",
    "EvalError",
    "FuncRef",
    "GlobalRef",
    "GlobalVar",
    "ICall",
    "IRBuilder",
    "Imm",
    "Instr",
    "Jump",
    "LINK_EXTERN",
    "LINK_GLOBAL",
    "LINK_STATIC",
    "Load",
    "Module",
    "Mov",
    "Operand",
    "ParseError",
    "Probe",
    "Procedure",
    "Program",
    "RUNTIME_BUILTINS",
    "Reg",
    "Ret",
    "Signature",
    "Store",
    "Type",
    "UNARY_OPS",
    "UnOp",
    "VerifyError",
    "eval_binop",
    "eval_unop",
    "is_constant",
    "parse_instr",
    "parse_module",
    "parse_operand",
    "parse_program",
    "parse_type",
    "print_module",
    "print_proc",
    "print_program",
    "verify_proc",
    "verify_program",
    "wrap_int",
]
