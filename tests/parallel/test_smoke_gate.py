"""The bench-smoke regression gate (pure comparison logic)."""

from __future__ import annotations

from repro.bench.smoke import baseline_view, check


def _report(cycles=1000.0, units=500.0, wall=2.0):
    return {
        "schema": 1,
        "scope": "cp",
        "workloads": {
            "compress": {
                "compile_units": units,
                "cycles": cycles,
                "checksum": "abc",
                "wall_s": wall,
            }
        },
        "totals": {"compile_units": units, "cycles": cycles},
        "build": {"jobs": 4, "serial_wall_s": 1.0, "parallel_wall_s": 1.0,
                  "speedup": 1.0},
        "cache": {"warm_hit_rate": 1.0},
    }


def test_within_threshold_passes():
    baseline = baseline_view(_report())
    assert check(_report(cycles=1100.0), baseline) == []  # +10% < 15%


def test_cycle_regression_fails():
    baseline = baseline_view(_report())
    failures = check(_report(cycles=1200.0), baseline)  # +20%
    assert len(failures) == 1
    assert "cycles" in failures[0]


def test_compile_unit_regression_fails():
    baseline = baseline_view(_report())
    failures = check(_report(units=700.0), baseline)  # +40%
    assert len(failures) == 1
    assert "compile_units" in failures[0]


def test_improvements_never_fail():
    baseline = baseline_view(_report())
    assert check(_report(cycles=100.0, units=50.0), baseline) == []


def test_wall_time_gated_only_on_request():
    baseline = _report()
    slow = _report(wall=10.0)
    assert check(slow, baseline) == []
    assert check(slow, baseline, gate_wall_time=True)


def test_unknown_workload_in_report_is_ignored():
    baseline = baseline_view(_report())
    extra = _report()
    extra["workloads"]["brand_new"] = {"compile_units": 1.0, "cycles": 1.0}
    assert check(extra, baseline) == []


def test_baseline_view_drops_host_dependent_fields():
    view = baseline_view(_report())
    assert "wall_s" not in view["workloads"]["compress"]
    assert "build" not in view and "cache" not in view


def _scale_report(sites_ratio=0.2, parity=0.95):
    report = _report()
    report["scale"] = {
        "ratios": {"wall_growth_ratio": 0.5, "peak_growth_ratio": 0.5,
                   "sites_growth_ratio": sites_ratio},
        "parity": {"compress": {"global_cycles": 1000.0,
                                "demand_cycles": 1000.0 * parity,
                                "ratio": parity}},
    }
    return report


def test_scale_sites_ratio_regression_fails():
    baseline = baseline_view(_scale_report())
    assert check(_scale_report(sites_ratio=0.22), baseline) == []  # +10%
    failures = check(_scale_report(sites_ratio=0.3), baseline)  # +50%
    assert len(failures) == 1 and "sites growth ratio" in failures[0]


def test_scale_parity_regression_fails():
    baseline = baseline_view(_scale_report())
    assert check(_scale_report(parity=1.04), baseline) == []  # +9.5%
    failures = check(_scale_report(parity=1.2), baseline)  # +26%
    assert len(failures) == 1 and "cycles parity" in failures[0]


def test_scale_baseline_view_keeps_deterministic_slice():
    view = baseline_view(_scale_report())
    assert view["scale"]["sites_growth_ratio"] == 0.2
    assert view["scale"]["parity"] == {"compress": 0.95}
