"""Load generator for the build daemon: hundreds of synthetic clients.

``repro bench-serve`` drives a mixed build/rebuild/run workload against
a daemon — an in-process one by default, or a running ``repro serve``
via ``--connect`` (the CI round trip) — and reports latency
percentiles, throughput, and the scheduler's dedupe/shed counters.

The traffic has three phases, each a barrier so the interesting
contention actually happens:

1. **stampede** — every client concurrently requests the *same* build
   of its workload.  Only one build per distinct key may execute; the
   rest must join in flight (``dedupe_hits``) or hit the finished-build
   LRU.  These are the cold-build latencies.
2. **warm rebuild** — every client asks again.  All of these should be
   LRU hits; their latencies are the warm-rebuild distribution the
   smoke gate watches.
3. **mixed** — every client issues a ``run`` request and a *variant*
   build (a distinct budget per client group), cold keys mid-run like
   a real fleet's config drift.

Gates (also enforced when this runs inside ``repro.bench.smoke``):
identical in-flight builds deduped (``dedupe_hits`` counter-asserted),
zero failed requests, warm-rebuild p95 under the cold-build p50, and
byte-identical artifacts vs a cold CLI build of the same module set.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..linker.isom import to_isom_text
from ..linker.toolchain import Toolchain
from ..serve.client import AsyncServeClient, ServeRequestError, parse_address
from ..serve.server import ReproServer
from ..serve.state import ServerState, artifact_checksum
from ..workloads.suite import get_workload, workload_names

SERVE_BENCH_SCHEMA = 1

DEFAULT_CLIENTS = 200
DEFAULT_WORKLOADS = ("compress", "sc")
# Clients per distinct variant-build config in the mixed phase.
VARIANT_GROUP = 8


@dataclass
class BenchConfig:
    clients: int = DEFAULT_CLIENTS
    workloads: Tuple[str, ...] = DEFAULT_WORKLOADS
    scope: str = "c"
    engine: str = ""
    connect: Optional[str] = None  # HOST:PORT of a running daemon
    connect_retry_s: float = 15.0
    concurrency: int = 4  # in-process server's build threads
    max_pending: int = 64  # in-process server's queue bound
    request_timeout: float = 120.0
    jobs: Optional[int] = None  # in-process server's compile jobs


@dataclass
class _Recorder:
    latency_ms: List[float] = field(default_factory=list)
    cold_build_ms: List[float] = field(default_factory=list)
    warm_rebuild_ms: List[float] = field(default_factory=list)
    run_ms: List[float] = field(default_factory=list)
    checksums: Dict[str, set] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    busy: int = 0
    requests: int = 0


def _percentile(samples: Sequence[float], fraction: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


def _dist(samples: Sequence[float]) -> dict:
    return {
        "count": len(samples),
        "p50": round(_percentile(samples, 0.50), 3),
        "p95": round(_percentile(samples, 0.95), 3),
        "p99": round(_percentile(samples, 0.99), 3),
        "max": round(max(samples), 3) if samples else 0.0,
    }


async def _one_request(
    client: AsyncServeClient,
    payload: dict,
    recorder: _Recorder,
    workload: str,
) -> None:
    started = time.perf_counter()
    recorder.requests += 1
    try:
        response = await client.request(payload)
    except ServeRequestError as exc:
        if exc.status == "busy":
            recorder.busy += 1
        else:
            recorder.errors.append("{}: {}".format(payload.get("op"), exc))
        return
    except (ConnectionError, OSError) as exc:
        recorder.errors.append("{}: {}".format(payload.get("op"), exc))
        return
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    recorder.latency_ms.append(elapsed_ms)
    op = response.get("op")
    if op == "build":
        if response.get("cached"):
            recorder.warm_rebuild_ms.append(elapsed_ms)
        else:
            recorder.cold_build_ms.append(elapsed_ms)
        if payload.get("budget_percent") is None:
            recorder.checksums.setdefault(workload, set()).add(
                response.get("checksum")
            )
    elif op == "run":
        recorder.run_ms.append(elapsed_ms)


async def _run_bench(cfg: BenchConfig) -> Tuple[dict, List[str]]:
    server: Optional[ReproServer] = None
    serve_task = None
    if cfg.connect is not None:
        host, port = parse_address(cfg.connect)
    else:
        server = ReproServer(
            ServerState(jobs=cfg.jobs),
            port=0,
            concurrency=cfg.concurrency,
            max_pending=cfg.max_pending,
            request_timeout=cfg.request_timeout,
        )
        await server.start()
        serve_task = asyncio.ensure_future(server.serve_until_shutdown())
        host, port = server.host, server.port

    workloads = {name: get_workload(name) for name in cfg.workloads}
    sources = {
        name: [list(pair) for pair in wl.sources]
        for name, wl in workloads.items()
    }
    assigned = [
        cfg.workloads[i % len(cfg.workloads)] for i in range(cfg.clients)
    ]

    recorder = _Recorder()
    deadline_retry = cfg.connect_retry_s if cfg.connect is not None else 0.0
    clients: List[AsyncServeClient] = []
    try:
        for _ in range(cfg.clients):
            attempt_until = time.monotonic() + deadline_retry
            while True:
                try:
                    clients.append(await AsyncServeClient.connect(host, port))
                    break
                except OSError:
                    if time.monotonic() >= attempt_until:
                        raise
                    await asyncio.sleep(0.2)

        started = time.perf_counter()

        def build_payload(index: int, budget: Optional[float] = None) -> dict:
            payload = {
                "op": "build",
                "sources": sources[assigned[index]],
                "scope": cfg.scope,
                "timeout": cfg.request_timeout,
            }
            if cfg.engine:
                payload["engine"] = cfg.engine
            if budget is not None:
                payload["budget_percent"] = budget
            return payload

        # Phase 1: stampede — identical concurrent cold builds.
        await asyncio.gather(*[
            _one_request(clients[i], build_payload(i), recorder, assigned[i])
            for i in range(cfg.clients)
        ])
        # Phase 2: warm rebuilds — every one an LRU hit.
        await asyncio.gather(*[
            _one_request(clients[i], build_payload(i), recorder, assigned[i])
            for i in range(cfg.clients)
        ])
        # Phase 3: mixed run + cold variant-build traffic.
        run_payloads = []
        for i in range(cfg.clients):
            wl = workloads[assigned[i]]
            run_payloads.append({
                "op": "run",
                "sources": sources[assigned[i]],
                "scope": cfg.scope,
                "inputs": list(wl.ref_input),
                "timeout": cfg.request_timeout,
            })
        await asyncio.gather(*[
            _one_request(clients[i], run_payloads[i], recorder, assigned[i])
            for i in range(cfg.clients)
        ])
        await asyncio.gather(*[
            _one_request(
                clients[i],
                build_payload(i, budget=90.0 - (i // VARIANT_GROUP)),
                recorder,
                assigned[i],
            )
            for i in range(cfg.clients)
        ])
        wall_s = time.perf_counter() - started

        stats = await clients[0].stats()
    finally:
        for client in clients:
            try:
                await client.close()
            except Exception:
                pass
        if server is not None:
            server.request_shutdown()
            await serve_task

    # Byte-identity: a cold CLI build of the same module set must hash
    # to exactly what the daemon served.
    local_checksums = {}
    for name, wl in workloads.items():
        cold = Toolchain(
            [list(pair) for pair in wl.sources], jobs=1,
            engine=cfg.engine or "fast",
        ).build(cfg.scope)
        local_checksums[name] = artifact_checksum({
            mod.name: to_isom_text(mod)
            for mod in cold.program.modules.values()
        })
    artifacts_identical = all(
        recorder.checksums.get(name) == {local_checksums[name]}
        for name in workloads
    )

    scheduler = stats["scheduler"]
    state = stats["state"]
    report = {
        "schema": SERVE_BENCH_SCHEMA,
        "clients": cfg.clients,
        "workloads": list(cfg.workloads),
        "scope": cfg.scope,
        "engine": cfg.engine or "fast",
        "connect": cfg.connect,
        "requests": recorder.requests,
        "errors": len(recorder.errors),
        "busy": recorder.busy,
        "wall_s": round(wall_s, 3),
        "throughput_rps": round(recorder.requests / wall_s, 2) if wall_s else 0.0,
        "latency_ms": _dist(recorder.latency_ms),
        "cold_build_ms": _dist(recorder.cold_build_ms),
        "warm_rebuild_ms": _dist(recorder.warm_rebuild_ms),
        "run_ms": _dist(recorder.run_ms),
        "builds": state["builds"],
        "result_hits": state["result_hits"],
        "dedupe_hits": scheduler["dedupe_hits"],
        "shed": scheduler["shed"],
        "timeouts": scheduler["timeouts"],
        "server_requests": stats["requests"],
        "artifacts_identical": artifacts_identical,
    }

    failures = check_serve_report(report)
    for error in recorder.errors[:10]:
        failures.append("serve: request failed: {}".format(error))
    return report, failures


def check_serve_report(report: dict) -> List[str]:
    """The gates: what must hold for any healthy serve bench run."""
    failures: List[str] = []
    if report["errors"]:
        failures.append(
            "serve: {} request(s) failed outright".format(report["errors"])
        )
    if report["dedupe_hits"] < 1:
        failures.append(
            "serve: identical concurrent builds were never deduped "
            "(dedupe_hits={})".format(report["dedupe_hits"])
        )
    if not report["artifacts_identical"]:
        failures.append(
            "serve: daemon artifacts differ from a cold CLI build "
            "of the same module set"
        )
    warm = report["warm_rebuild_ms"]
    cold = report["cold_build_ms"]
    if warm["count"] >= 5 and cold["count"] >= 2 and warm["p95"] >= cold["p50"]:
        failures.append(
            "serve: warm rebuild p95 {:.1f}ms not under cold build p50 "
            "{:.1f}ms — the warm path isn't warm".format(
                warm["p95"], cold["p50"]
            )
        )
    return failures


def run_serve_bench(
    clients: int = DEFAULT_CLIENTS,
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    scope: str = "c",
    engine: str = "",
    connect: Optional[str] = None,
    jobs: Optional[int] = None,
    concurrency: int = 4,
    max_pending: int = 64,
    request_timeout: float = 120.0,
) -> Tuple[dict, List[str]]:
    """Run the bench; returns ``(report, gate_failures)``."""
    cfg = BenchConfig(
        clients=clients,
        workloads=tuple(workloads),
        scope=scope,
        engine=engine,
        connect=connect,
        jobs=jobs,
        concurrency=concurrency,
        max_pending=max_pending,
        request_timeout=request_timeout,
    )
    return asyncio.run(_run_bench(cfg))


def summary_lines(report: dict) -> List[str]:
    return [
        "serve bench: {} clients x {} -> {} requests in {:.2f}s "
        "({:.0f} req/s)".format(
            report["clients"],
            "/".join(report["workloads"]),
            report["requests"],
            report["wall_s"],
            report["throughput_rps"],
        ),
        "  latency ms: p50 {:.1f}  p95 {:.1f}  p99 {:.1f}".format(
            report["latency_ms"]["p50"],
            report["latency_ms"]["p95"],
            report["latency_ms"]["p99"],
        ),
        "  cold build p50 {:.1f}ms  warm rebuild p95 {:.1f}ms".format(
            report["cold_build_ms"]["p50"],
            report["warm_rebuild_ms"]["p95"],
        ),
        "  builds {}  dedupe {}  warm-lru {}  shed {}  errors {}".format(
            report["builds"],
            report["dedupe_hits"],
            report["result_hits"],
            report["shed"],
            report["errors"],
        ),
        "  artifacts identical to cold CLI build: {}".format(
            "yes" if report["artifacts_identical"] else "NO"
        ),
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.serve",
        description="Load-generate a repro build daemon and gate its "
        "latency/dedupe/artifact behaviour.",
    )
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument(
        "--workloads",
        default=",".join(DEFAULT_WORKLOADS),
        help="comma-separated workload names ({})".format(
            ", ".join(workload_names())
        ),
    )
    parser.add_argument("--scope", default="c", choices=("base", "c", "p", "cp"))
    parser.add_argument("--engine", default="")
    parser.add_argument(
        "--connect",
        default=None,
        metavar="HOST:PORT",
        help="drive a running daemon instead of an in-process one",
    )
    parser.add_argument(
        "--jobs", type=int, default=None,
        help="compile workers for the in-process server",
    )
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--max-pending", type=int, default=64)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--output", default=None, metavar="FILE")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    report, failures = run_serve_bench(
        clients=args.clients,
        workloads=[w for w in args.workloads.split(",") if w],
        scope=args.scope,
        engine=args.engine,
        connect=args.connect,
        jobs=args.jobs,
        concurrency=args.concurrency,
        max_pending=args.max_pending,
        request_timeout=args.timeout,
    )
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        for line in summary_lines(report):
            print(line)
    for failure in failures:
        print("FAIL: {}".format(failure), file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
