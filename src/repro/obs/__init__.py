"""Observability: tracing, metrics, and the inlining-decision ledger.

One :class:`BuildObserver` rides through the whole pipeline — CLI,
toolchain, parallel executor, HLO driver, transforms, resilience guard
— carrying three sinks:

- :class:`~repro.obs.tracer.Tracer` — hierarchical spans exported as
  Chrome trace-event JSON (``--trace-out``, Perfetto-loadable);
- :class:`~repro.obs.metrics.MetricsRegistry` — counters / gauges /
  p50-p95 histograms, the one source of build numbers
  (``--metrics-out``);
- :class:`~repro.obs.ledger.InliningLedger` — every call site the
  inliner or cloner evaluated, with its outcome and reason
  (``--explain-inlining``).

Each sink has a null twin, and :data:`NULL_OBSERVER` bundles all
three, so instrumentation points are always-on method calls with a
no-op fast path — disabling observability costs (nearly) nothing and
needs no conditionals at the call sites.
"""

from .ledger import (
    InliningLedger,
    NULL_LEDGER,
    NullLedger,
    record_decision,
)
from .log import CliLogger, VERBOSITY_LEVELS
from .metrics import (
    MetricsRegistry,
    NULL_METRICS,
    NullMetrics,
    collect_build_metrics,
    format_build_summary,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer


class BuildObserver:
    """The tracer + metrics + ledger bundle threaded through a build."""

    __slots__ = ("tracer", "metrics", "ledger")

    def __init__(self, tracer=None, metrics=None, ledger=None):
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.ledger = ledger if ledger is not None else NULL_LEDGER

    @property
    def enabled(self) -> bool:
        """True when any sink is live (used to skip setup-only work)."""
        return bool(
            self.tracer.enabled or self.metrics.enabled or self.ledger.enabled
        )


NULL_OBSERVER = BuildObserver()

__all__ = [
    "BuildObserver",
    "CliLogger",
    "InliningLedger",
    "MetricsRegistry",
    "NULL_LEDGER",
    "NULL_METRICS",
    "NULL_OBSERVER",
    "NULL_TRACER",
    "NullLedger",
    "NullMetrics",
    "NullTracer",
    "Span",
    "Tracer",
    "VERBOSITY_LEVELS",
    "collect_build_metrics",
    "format_build_summary",
    "record_decision",
]
