"""The fleet decision ledger: recording, aggregation, JSONL, validator."""

from __future__ import annotations

import json

import pytest

from repro.obs.fleetledger import (
    BREAKER_CODES,
    COLLECTOR_CODES,
    CONTROLLER_CODES,
    FLEET_LEDGER_SCHEMA_VERSION,
    FleetLedger,
    NULL_FLEET_LEDGER,
    NullFleetLedger,
    split_reason,
)
from repro.obs.validate import validate_fleet_ledger_jsonl


def populated() -> FleetLedger:
    ledger = FleetLedger()
    ledger.verdict(1, "inst0", 0, True, "accepted")
    ledger.verdict(2, "inst0", 0, True, "duplicate")
    ledger.verdict(2, "inst1", 3, False, "transit:crc")
    ledger.verdict(3, "inst1", 4, True, "quarantined:payload:magic")
    ledger.transition(3, "inst1", "open")
    ledger.decision(3, 0, "no-evidence")
    ledger.decision(4, 1, "rollback:trap (injected)", build_id=1)
    ledger.decision(5, 1, "swap", build_id=2)
    return ledger


class TestSplitReason:
    def test_code_and_detail(self):
        assert split_reason("transit:crc") == ("transit", "crc")
        assert split_reason("accepted") == ("accepted", "")
        # Only the first colon splits; the rest stays in the detail.
        assert split_reason("quarantined:payload:magic") == (
            "quarantined", "payload:magic"
        )


class TestRecording:
    def test_counts_by_kind(self):
        ledger = populated()
        assert ledger.total == 8
        assert ledger.verdicts == 4
        assert ledger.transitions == 1
        assert ledger.decisions == 3

    def test_code_counts(self):
        codes = populated().code_counts()
        assert codes["verdict.accepted"] == 1
        assert codes["verdict.duplicate"] == 1
        assert codes["verdict.transit"] == 1
        assert codes["verdict.quarantined"] == 1
        assert codes["breaker.open"] == 1
        assert codes["decision.rollback"] == 1

    def test_entry_fields(self):
        ledger = populated()
        nack = ledger.entries[2].to_dict()
        assert nack == {
            "tick": 2, "actor": "collector", "kind": "verdict",
            "code": "transit", "detail": "crc",
            "source": "inst1", "seq": 3, "accepted": False,
        }
        swap = ledger.entries[-1].to_dict()
        assert swap["build_id"] == 2
        assert swap["epoch"] == 1
        assert "source" not in swap

    def test_code_vocabulary_covers_fixture(self):
        for entry in populated().entries:
            if entry.kind == "verdict":
                assert entry.code in COLLECTOR_CODES
            elif entry.kind == "breaker":
                assert entry.code in BREAKER_CODES
            else:
                assert entry.code in CONTROLLER_CODES


class TestNullTwin:
    def test_disabled_and_inert(self):
        null = NullFleetLedger()
        assert null.enabled is False
        assert null.total == 0
        null.verdict(1, "inst0", 0, True, "accepted")
        null.transition(1, "inst0", "open")
        null.decision(1, 0, "swap")
        assert null.total == 0
        assert NULL_FLEET_LEDGER.enabled is False

    def test_real_ledger_is_enabled(self):
        assert FleetLedger().enabled is True


class TestJsonl:
    def test_header_accounts_for_entries(self):
        header = populated().header()
        assert header["schema"] == FLEET_LEDGER_SCHEMA_VERSION
        assert header["kind"] == "fleet-ledger"
        assert header["entries"] == 8
        assert header["verdicts"] == 4
        assert header["transitions"] == 1
        assert header["decisions"] == 3

    def test_round_trip_validates(self, tmp_path):
        path = tmp_path / "fleet-ledger.jsonl"
        populated().write_jsonl(str(path))
        text = path.read_text()
        assert validate_fleet_ledger_jsonl(text) == []
        lines = text.strip().splitlines()
        assert len(lines) == 9  # header + one line per entry
        assert json.loads(lines[0])["kind"] == "fleet-ledger"

    def test_format_text(self):
        text = populated().format_text()
        assert "8 entries" in text
        assert "4 collector verdicts" in text
        assert "rollback:trap (injected)" in text
        assert "NACK" in text

    def test_format_text_limit(self):
        text = populated().format_text(limit=2)
        assert "... 6 more" in text


class TestValidator:
    def test_rejects_empty(self):
        assert validate_fleet_ledger_jsonl("") != []

    def test_rejects_bad_header_totals(self):
        ledger = populated()
        header = ledger.header()
        header["verdicts"] = 99
        lines = [json.dumps(header)]
        lines += [json.dumps(e.to_dict()) for e in ledger.entries]
        errors = validate_fleet_ledger_jsonl("\n".join(lines) + "\n")
        assert any("verdict" in e for e in errors)

    def test_rejects_unknown_kind(self):
        ledger = FleetLedger()
        ledger.verdict(1, "inst0", 0, True, "accepted")
        text = ledger.to_jsonl().replace('"verdict"', '"vibes"')
        assert validate_fleet_ledger_jsonl(text) != []

    def test_rejects_verdict_without_accepted(self):
        ledger = FleetLedger()
        ledger.verdict(1, "inst0", 0, True, "accepted")
        lines = ledger.to_jsonl().strip().splitlines()
        entry = json.loads(lines[1])
        del entry["accepted"]
        text = lines[0] + "\n" + json.dumps(entry) + "\n"
        assert any(
            "accepted" in e for e in validate_fleet_ledger_jsonl(text)
        )

    def test_rejects_garbage_line(self):
        text = populated().to_jsonl() + "not json\n"
        assert validate_fleet_ledger_jsonl(text) != []
