"""Fixtures for the build-daemon tests.

The end-to-end tests run the daemon on a background thread with its
own event loop and talk to it with the blocking :class:`ServeClient`;
the asyncio-level tests drive :class:`ReproServer` directly on the
test's own loop instead.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import ReproServer
from repro.serve.state import ServerState

# The same three-module program the parallel tests build: big enough
# that a "cp" build makes real inline decisions, small enough that the
# daemon tests stay fast.
SOURCES = [
    (
        "util",
        "int add(int a, int b) { return a + b; }\n"
        "int mul(int a, int b) { return a * b; }\n",
    ),
    (
        "mid",
        "extern int add(int a, int b);\n"
        "int twice(int x) { return add(x, x); }\n",
    ),
    (
        "main",
        "extern int twice(int x);\n"
        "extern int mul(int a, int b);\n"
        "int main() { int n = input(0); print_int(mul(twice(n), 3)); return 0; }\n",
    ),
]

TRAIN_INPUTS = [[5]]
REF_INPUT = [7]

BROKEN_SOURCES = [("bad", "int main( { return }")]


class DaemonHandle:
    """One background daemon: server object, address, clean shutdown."""

    def __init__(
        self,
        server: ReproServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ):
        self.server = server
        self.loop = loop
        self.thread = thread

    @property
    def address(self) -> str:
        return "{}:{}".format(self.server.host, self.server.port)

    def stop(self) -> None:
        """Drain the daemon from the test thread and wait it out."""
        if self.thread.is_alive():
            try:
                self.loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                pass  # loop already closed
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon failed to drain"


def start_daemon(state: Optional[ServerState] = None, **server_kwargs):
    started = threading.Event()
    box = {}

    def runner():
        async def main():
            server = ReproServer(state, **server_kwargs)
            await server.start()
            box["server"] = server
            box["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_until_shutdown()

        asyncio.run(main())

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert started.wait(30), "daemon failed to start"
    return DaemonHandle(box["server"], box["loop"], thread)


@pytest.fixture
def daemon():
    handle = start_daemon()
    yield handle
    handle.stop()


@pytest.fixture
def client(daemon):
    client = ServeClient(daemon.address)
    client.connect(retry_for=5.0)
    yield client
    client.close()
