"""AnalysisManager: memoization with explicit invalidation."""

from __future__ import annotations

from repro.analysis import AnalysisManager
from repro.core.config import HLOConfig
from repro.core.hlo import run_hlo
from repro.frontend import compile_program
from repro.linker.isom import to_isom_text

SOURCES = [
    (
        "lib",
        """
        int helper(int x) { return x * 3 + 1; }
        int wrap(int x) { return helper(x) + helper(x + 1); }
        """,
    ),
    (
        "main",
        """
        extern int wrap(int x);
        int main() {
          int i;
          int total = 0;
          for (i = 0; i < input(0); i++) total = total + wrap(i);
          print_int(total);
          return 0;
        }
        """,
    ),
]


def test_callgraph_is_cached_until_invalidated():
    manager = AnalysisManager(compile_program(SOURCES))
    first = manager.callgraph()
    assert manager.callgraph() is first
    assert (manager.hits, manager.misses) == (1, 1)
    manager.invalidate_procs(["wrap"])
    assert manager.callgraph() is not first
    assert manager.invalidations == 1


def test_entry_counts_cached_per_profile_presence():
    manager = AnalysisManager(compile_program(SOURCES))
    static = manager.entry_counts(None)
    assert manager.entry_counts(None) is static
    profiled = manager.entry_counts({("main", 0): 7})
    assert profiled is not static
    assert manager.entry_counts({("main", 0): 7}) is profiled


def test_invalidate_procs_is_selective_for_freqs():
    manager = AnalysisManager(compile_program(SOURCES))
    cache = manager.freq_cache()
    cache["wrap"] = {"entry": 1.0}
    cache["helper"] = {"entry": 1.0}
    manager.invalidate_procs(["wrap"])
    assert "wrap" not in manager.freq_cache()
    assert "helper" in manager.freq_cache()
    manager.invalidate_all()
    assert manager.freq_cache() == {}


def _final_isoms(memoize):
    program = compile_program(SOURCES)
    config = HLOConfig(memoize_analyses=memoize).with_scope(True, False)
    report = run_hlo(program, config)
    text = {
        name: to_isom_text(module) for name, module in program.modules.items()
    }
    return text, report


def test_memoized_hlo_is_equivalent_and_counts_reuse():
    memo_text, memo_report = _final_isoms(True)
    plain_text, plain_report = _final_isoms(False)
    assert memo_text == plain_text
    assert str(memo_report) == str(plain_report)
    assert memo_report.analysis_hits + memo_report.analysis_misses > 0
    assert plain_report.analysis_hits == plain_report.analysis_misses == 0
