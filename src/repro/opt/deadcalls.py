"""Interprocedural dead-call elimination.

Removes calls whose result is unused when the callee is provably
side-effect-free and terminating (see
:mod:`repro.analysis.sideeffects`).  This runs *before* inlining in the
HLO pipeline — it is the analysis that deleted the no-op curses calls
in the paper's 072.sc, which "would be ideal candidates for inlining,
but they are eliminated before inlining" (Section 3.1).
"""

from __future__ import annotations

from typing import Set

from ..analysis.callgraph import CallGraph
from ..analysis.sideeffects import side_effect_free_procs
from ..ir.instructions import Call
from ..ir.procedure import Procedure
from ..ir.program import Program
from ..ir.values import Reg
from .dce import liveness


def eliminate_dead_calls(program: Program) -> bool:
    graph = CallGraph(program)
    free = side_effect_free_procs(program, graph)
    if not free:
        return False
    changed = False
    for proc in program.all_procs():
        if _eliminate_in_proc(proc, free):
            changed = True
    return changed


def _eliminate_in_proc(proc: Procedure, free: Set[str]) -> bool:
    changed = False
    live_out = liveness(proc)
    for label, block in proc.blocks.items():
        live = set(live_out[label])
        kept = []
        for instr in reversed(block.instrs):
            if isinstance(instr, Call) and instr.callee in free:
                dead_result = instr.dest is None or instr.dest.name not in live
                if dead_result:
                    changed = True
                    continue
            if instr.dest is not None:
                live.discard(instr.dest.name)
            for op in instr.uses():
                if isinstance(op, Reg):
                    live.add(op.name)
            kept.append(instr)
        kept.reverse()
        block.instrs = kept
    return changed
