"""Differential suite: every optimized engine must be observably identical.

Every test runs the same program under each engine in
``OPTIMIZED_ENGINES`` (the pre-decoded ``fast`` engine and the
source-compiling ``codegen`` engine) against ``engine="reference"``
(via :mod:`repro.interp.diff`) and asserts the
complete observable outcome matches: Result fields including every
counter, the RecordingSink event stream, and — on trapping or
step-limited runs — the exception type and message.  Coverage comes
from the whole workload suite, seeded generator programs (varargs,
indirect calls through dispatchers, recursion, dynamic alloca), and
hand-written programs that pin the awkward paths: traps mid-block,
``exit()`` unwinding, step-limit expiry at arbitrary points.
"""

import pytest

from repro.frontend import compile_program
from repro.interp.diff import OPTIMIZED_ENGINES, assert_identical
from repro.workloads.generator import generate_sources
from repro.workloads.suite import get_workload, workload_names

GENERATOR_SEEDS = range(50)


@pytest.fixture(params=OPTIMIZED_ENGINES)
def engine(request):
    return request.param


class TestWorkloadSuite:
    @pytest.mark.parametrize("name", workload_names())
    def test_workload_identical(self, name, engine):
        workload = get_workload(name)
        assert_identical(
            workload.compile(), workload.ref_input, label=name, engine=engine,
        )


class TestGeneratedPrograms:
    @pytest.mark.parametrize("seed", GENERATOR_SEEDS)
    def test_generated_identical(self, seed, engine):
        program = compile_program(generate_sources(seed))
        assert_identical(
            program, [seed, seed * 7 + 3, seed % 5],
            label="generator seed {}".format(seed), engine=engine,
        )

    @pytest.mark.parametrize("seed", [3, 11, 27])
    def test_generated_under_step_limits(self, seed, engine):
        # The limit lands at arbitrary points: mid straight-line
        # segment, on a block boundary, inside a callee.  Both engines
        # must raise StepLimitExceeded with the same message (same
        # procedure, block, and instruction index) — or both finish.
        program = compile_program(generate_sources(seed))
        for max_steps in (1, 2, 3, 17, 100, 1001):
            assert_identical(
                program, [seed], max_steps=max_steps, engine=engine,
                label="seed {} max_steps {}".format(seed, max_steps),
            )


class TestHandWrittenPaths:
    def run_sources(self, source, inputs=(), max_steps=2_000_000,
                    label=None, engine="fast"):
        program = compile_program([("main", source)])
        assert_identical(
            program, inputs, max_steps=max_steps, label=label, engine=engine,
        )

    def test_varargs(self, engine):
        self.run_sources(
            """
            int total(int base, ...) {
              int acc = base;
              for (int k = 0; k < va_count(); k++) acc += va_arg(k);
              return acc;
            }
            int main() {
              print_int(total(1));
              print_int(total(1, 2, 3));
              print_int(total(10, 20, 30, 40, 50));
              return total(5, 6);
            }
            """,
            engine=engine, label="varargs",
        )

    def test_indirect_calls(self, engine):
        self.run_sources(
            """
            int inc(int x) { return x + 1; }
            int dbl(int x) { return x * 2; }
            int handler;
            int main() {
              handler = inc;
              int a = handler(4);
              handler = dbl;
              int b = handler(4);
              print_int(a);
              print_int(b);
              return a + b;
            }
            """,
            engine=engine, label="indirect calls",
        )

    def test_exit_mid_call_chain(self, engine):
        self.run_sources(
            """
            int helper(int x) {
              if (x > 3) exit(42);
              return x;
            }
            int main() {
              int i = 0;
              while (i < 10) { print_int(helper(i)); i = i + 1; }
              return 0;
            }
            """,
            engine=engine, label="exit unwind",
        )

    def test_division_by_zero_trap(self, engine):
        self.run_sources(
            "int main() { int d = input(0); return 7 / d; }",
            inputs=[0], engine=engine, label="div by zero",
        )

    def test_mod_by_zero_trap(self, engine):
        self.run_sources(
            "int main() { int d = input(0); return 7 % d; }",
            inputs=[0], engine=engine, label="mod by zero",
        )

    def test_negative_address_trap(self, engine):
        self.run_sources(
            """
            int main() {
              int p = 0 - 5;
              p[0] = 1;
              return 0;
            }
            """,
            engine=engine, label="negative address store",
        )

    def test_call_stack_overflow_trap(self, engine):
        # Unbounded recursion: the fast engine's inlined frame push and
        # the reference interpreter must trap with the same message at
        # the same depth.
        self.run_sources(
            """
            int spin(int x) { return spin(x + 1); }
            int main() { return spin(0); }
            """,
            engine=engine, label="call stack overflow",
        )

    def test_step_limit_in_tight_loop(self, engine):
        source = """
        int main() {
          int acc = 0;
          for (int i = 0; i < 100000; i++) acc = acc + i;
          return acc % 251;
        }
        """
        for max_steps in (1, 5, 6, 7, 123, 1000):
            self.run_sources(
                source, max_steps=max_steps, engine=engine,
                label="loop max_steps {}".format(max_steps),
            )

    def test_float_arithmetic_and_output(self, engine):
        self.run_sources(
            """
            int main() {
              float a = 1.5;
              float b = a * 2.0 + 0.25;
              print_flt(b);
              print_flt(b / 2.0);
              return 0;
            }
            """,
            engine=engine, label="float path",
        )
