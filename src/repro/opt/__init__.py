"""Scalar optimizer: the downstream passes that exploit inlining/cloning."""

from .constprop import constant_propagation
from .copyprop import copy_propagation
from .cse import local_cse
from .dce import dead_code_elimination, liveness
from .deadcalls import eliminate_dead_calls
from .licm import licm
from .pass_manager import (
    MAX_ITERATIONS,
    default_pipeline,
    optimize_proc,
    optimize_program,
)
from .peephole import peephole
from .simplifycfg import simplify_cfg

__all__ = [
    "MAX_ITERATIONS",
    "constant_propagation",
    "copy_propagation",
    "dead_code_elimination",
    "default_pipeline",
    "eliminate_dead_calls",
    "licm",
    "liveness",
    "local_cse",
    "optimize_proc",
    "optimize_program",
    "peephole",
    "simplify_cfg",
]
