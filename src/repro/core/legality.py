"""Legality, technical, pragmatic, and user-imposed screens (Section 2.4).

"The inliner first considers all call sites for any legal, technical,
pragmatic, or user-imposed restrictions on inlining.  Illegal sites
include those with gross type mismatches, varargs, or argument arity
differences.  Technically restricted sites include those where
information specific to the callee disagrees with information specific
to the caller [e.g. FP reassociation].  Pragmatic concerns include
issues like handling callees that use alloca ... User imposed
restrictions come from various command line options and pragmas."

Each check returns a reason string (for reports) or ``None`` when the
site passes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.callgraph import CallSite, EXTERNAL, INDIRECT
from ..ir.instructions import Call
from ..ir.procedure import (
    ATTR_FP_REASSOC,
    ATTR_NOCLONE,
    ATTR_NOINLINE,
    ATTR_VARARGS,
    Procedure,
)
from ..ir.program import Program


# Reason-string prefix -> Figure 5 legality class.  The inlining
# ledger (repro.obs.ledger) buckets every rejected call site by these
# classes; keep the table next to the strings so a new screen cannot
# be added without deciding its class.
REASON_CLASSES = (
    ("indirect call", "indirect"),
    ("not a direct call", "indirect"),
    ("external callee", "external"),
    ("self-recursive site", "recursion"),
    ("cross-module site", "scope"),
    ("module compiled module-at-a-time", "isom-fallback"),
    ("argument arity difference", "arity-mismatch"),
    ("callee takes variable arguments", "varargs"),
    ("callee permits FP reassociation", "fp-reassoc"),
    ("callee uses dynamic stack allocation", "alloca"),
    ("user directive", "user-directive"),
    ("cannot clone the program entry point", "entry-point"),
)


def classify_blocker(reason: str) -> str:
    """The Figure 5 legality class for a blocker reason string."""
    for prefix, clazz in REASON_CLASSES:
        if reason.startswith(prefix):
            return clazz
    return "other"


def inline_blocker(
    program: Program,
    site: CallSite,
    cross_module: bool = True,
    inline_recursive: bool = True,
    local_modules: Sequence[str] = (),
) -> Optional[str]:
    """Why this site cannot be inlined, or None when it can."""
    if site.category == INDIRECT:
        return "indirect call (callee computed at run time)"
    if site.category == EXTERNAL or site.callee is None:
        return "external callee (no intermediate code available)"
    callee = site.callee
    caller = site.caller

    if callee.name == caller.name and not inline_recursive:
        return "self-recursive site (disabled by configuration)"
    if not cross_module and callee.module != caller.module:
        return "cross-module site outside current optimization scope"
    blocked = _local_module_blocker(caller, callee, local_modules)
    if blocked:
        return blocked

    # Legal restrictions: arity / gross type mismatch, varargs.
    blocked = _signature_blocker(site, callee)
    if blocked:
        return blocked
    if ATTR_VARARGS in callee.attrs:
        return "callee takes variable arguments"

    # Technical restrictions: caller/callee IR-level disagreements.
    if ATTR_FP_REASSOC in callee.attrs and ATTR_FP_REASSOC not in caller.attrs:
        return "callee permits FP reassociation but caller does not"

    # Pragmatic restrictions.
    if callee.uses_dynamic_alloca:
        return "callee uses dynamic stack allocation (alloca)"

    # User-imposed restrictions.
    if ATTR_NOINLINE in callee.attrs:
        return "user directive: noinline"
    return None


def clone_blocker(
    program: Program,
    site: CallSite,
    cross_module: bool = True,
    local_modules: Sequence[str] = (),
) -> Optional[str]:
    """Why this site cannot participate in cloning, or None."""
    if site.category == INDIRECT:
        return "indirect call (callee computed at run time)"
    if site.category == EXTERNAL or site.callee is None:
        return "external callee (no intermediate code available)"
    callee = site.callee
    caller = site.caller

    if not cross_module and callee.module != caller.module:
        return "cross-module site outside current optimization scope"
    blocked = _local_module_blocker(caller, callee, local_modules)
    if blocked:
        return blocked
    blocked = _signature_blocker(site, callee)
    if blocked:
        return blocked
    if ATTR_VARARGS in callee.attrs:
        return "callee takes variable arguments"
    if ATTR_NOCLONE in callee.attrs:
        return "user directive: noclone"
    if callee.name == "main":
        return "cannot clone the program entry point"
    return None


def _local_module_blocker(
    caller: Procedure, callee: Procedure, local_modules: Sequence[str]
) -> Optional[str]:
    """Degradation screen (docs/resilience.md): a module whose isom was
    corrupt or version-skewed fell back to module-at-a-time compilation,
    so no transform may cross its boundary even in a link-time build."""
    if caller.module == callee.module:
        return None
    if caller.module in local_modules or callee.module in local_modules:
        return "module compiled module-at-a-time (isom fallback)"
    return None


def _signature_blocker(site: CallSite, callee: Procedure) -> Optional[str]:
    """Arity screens: "we could [transform] even in such cases, but the
    idea is to try and preserve the behavior of even semantically
    incorrect programs." """
    instr = site.instr
    if not isinstance(instr, Call):
        return "not a direct call"
    fixed = len(callee.params)
    if ATTR_VARARGS in callee.attrs:
        if len(instr.args) < fixed:
            return "argument arity difference (too few args for varargs callee)"
        return None
    if len(instr.args) != fixed:
        return "argument arity difference ({} args for {} params)".format(
            len(instr.args), fixed
        )
    return None
