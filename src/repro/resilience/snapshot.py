"""Cheap IR checkpoints for rollback after a failed pass.

Two granularities, matching the two granularities at which passes run:

- :class:`ProcedureSnapshot` — a structured copy of one procedure's
  mutable state (blocks, entry, params, attrs).  Used by the guarded
  scalar pipeline, which applies one pass to one procedure at a time.
  Instructions are copied individually (``Instr.copy()``, the same
  primitive body transplants use) because passes like constant
  propagation rewrite operands of existing instructions in place.
- :class:`ProgramSnapshot` — a structural copy of every module
  (procedures, globals, externs).  Used around program-level stages
  (clone/inline passes, dead-call elimination) that may touch any
  procedure.  Deliberately *not* the printer/parser round trip: a
  snapshot is taken before every guarded stage whether or not it
  fails, so capture must stay cheap.

Restores are **in place**: the ``Procedure``/``Program``/``Module``
objects keep their identity, so references held by surrounding driver
code (budget, reports, iteration lists) stay valid after a rollback.
Per-module site-id counters are intentionally left alone — they are
monotonic and never recycled, so a rolled-back stage simply leaves a
gap in the id space rather than a chance of reuse.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.module import GlobalVar, Module
from ..ir.procedure import Procedure
from ..ir.program import Program


def _copy_blocks(blocks: Dict[str, BasicBlock]) -> Dict[str, BasicBlock]:
    out: Dict[str, BasicBlock] = {}
    for label, block in blocks.items():
        copied = BasicBlock(label, [instr.copy() for instr in block.instrs])
        copied.profile_count = block.profile_count
        out[label] = copied
    return out


class ProcedureSnapshot:
    """Checkpoint of one procedure, restorable in place any number of times."""

    def __init__(self, proc: Procedure):
        self.name = proc.name
        self._params = list(proc.params)
        self._ret_type = proc.ret_type
        self._linkage = proc.linkage
        self._attrs = set(proc.attrs)
        self._entry = proc.entry
        self._blocks = _copy_blocks(proc.blocks)

    def restore(self, proc: Procedure) -> None:
        if proc.name != self.name:
            raise ValueError(
                "snapshot of @{} cannot restore @{}".format(self.name, proc.name)
            )
        proc.params = list(self._params)
        proc.ret_type = self._ret_type
        proc.linkage = self._linkage
        proc.attrs = set(self._attrs)
        proc.entry = self._entry
        proc.blocks = _copy_blocks(self._blocks)

    def materialize(self, module_name: str) -> Procedure:
        """Recreate the procedure from scratch (it was deleted meanwhile)."""
        proc = Procedure(
            self.name,
            list(self._params),
            self._ret_type,
            module_name,
            self._linkage,
            set(self._attrs),
        )
        proc.blocks = _copy_blocks(self._blocks)
        proc.entry = self._entry
        return proc


class ProgramSnapshot:
    """Checkpoint of a whole program, restorable in place.

    Captures every module's procedures, globals, and extern table.
    Stages never add or remove whole modules, so the module set itself
    is not versioned.
    """

    def __init__(self, program: Program):
        self._modules: List[
            Tuple[str, List[ProcedureSnapshot], List[Tuple], Dict]
        ] = []
        for name, mod in program.modules.items():
            procs = [ProcedureSnapshot(p) for p in mod.procs.values()]
            gvars = [
                (g.name, g.size, list(g.init), g.linkage) for g in mod.globals.values()
            ]
            self._modules.append((name, procs, gvars, dict(mod.externs)))

    def restore(self, program: Program) -> None:
        for name, proc_snaps, gvars, externs in self._modules:
            mod = program.modules.get(name)
            if mod is None:  # pragma: no cover - stages never drop modules
                mod = Module(name)
                program.modules[name] = mod
            mod.externs = dict(externs)

            new_globals: Dict[str, GlobalVar] = {}
            for gname, size, init, linkage in gvars:
                gvar = mod.globals.get(gname)
                if gvar is None:
                    gvar = GlobalVar(gname, size, init, name, linkage)
                else:
                    gvar.size = size
                    gvar.init = list(init)
                    gvar.linkage = linkage
                new_globals[gname] = gvar
            mod.globals = new_globals

            new_procs: Dict[str, Procedure] = {}
            for snap in proc_snaps:
                proc = mod.procs.get(snap.name)
                if proc is None:
                    proc = snap.materialize(name)
                else:
                    snap.restore(proc)
                new_procs[snap.name] = proc
            mod.procs = new_procs
