"""Apply a profile database to a freshly compiled program.

The PGO pipeline compiles twice: the instrumented image trains, then a
*fresh* compile of the same sources is annotated with the harvested
counts before HLO runs.  Annotation matches by (procedure, label) —
stable because the front end is deterministic — and silently skips keys
that no longer match, which is exactly the staleness behaviour of real
profile feedback.
"""

from __future__ import annotations

from ..ir.program import Program
from .database import ProfileDatabase


def annotate_program(program: Program, db: ProfileDatabase) -> int:
    """Attach block counts; returns the number of blocks annotated."""
    annotated = 0
    for proc in program.all_procs():
        for label, block in proc.blocks.items():
            count = db.block_count(proc.name, label)
            if count is not None:
                block.profile_count = count
                annotated += 1
    return annotated


def clear_annotations(program: Program) -> None:
    for proc in program.all_procs():
        for block in proc.blocks.values():
            block.profile_count = None
