"""AST node definitions for minic.

Plain dataclasses; every node carries the source line for diagnostics.
Types at this level are the two scalar kinds plus ``void``; pointers
are word-granular integers (addresses), so ``int *`` parses but types
as ``int``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ..ir.types import Type


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class Name(Expr):
    """A variable or function reference."""

    name: str = ""


@dataclass
class Unary(Expr):
    """op in - ! ~ * (deref) & (address-of)."""

    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class ShortCircuit(Expr):
    """&& and || with C short-circuit evaluation."""

    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Conditional(Expr):
    """The ternary ``cond ? a : b``."""

    cond: Optional[Expr] = None
    then_expr: Optional[Expr] = None
    else_expr: Optional[Expr] = None


@dataclass
class Assign(Expr):
    """``target op= value``; ``op`` is '' for plain assignment.

    Target forms: Name, Unary('*', ...), Index.
    """

    op: str = ""
    target: Optional[Expr] = None
    value: Optional[Expr] = None


@dataclass
class IncDec(Expr):
    """``++x  --x  x++  x--`` on a Name/Deref/Index target."""

    op: str = "++"
    target: Optional[Expr] = None
    prefix: bool = True


@dataclass
class CallExpr(Expr):
    """``f(args)`` — ``func`` is a Name (maybe a function or a variable
    holding a code pointer) or an arbitrary expression (paren'd)."""

    func: Optional[Expr] = None
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    """``base[index]`` — word-granular addressing."""

    base: Optional[Expr] = None
    index: Optional[Expr] = None


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class LocalDecl(Stmt):
    """``int x = e;`` or ``int a[N];`` (array size must be constant)."""

    name: str = ""
    type: Type = Type.INT
    array_size: Optional[int] = None
    init: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: Optional[Stmt] = None
    else_body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class DoWhile(Stmt):
    body: Optional[Stmt] = None
    cond: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None  # ExprStmt or LocalDecl or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Optional[Stmt] = None


@dataclass
class SwitchCase:
    """One ``case value:`` (or ``default:`` when ``value`` is None) arm
    with the statements up to the next label — C fallthrough applies."""

    value: Optional[int]
    stmts: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Switch(Stmt):
    cond: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ----------------------------------------------------------------------
# Top-level declarations
# ----------------------------------------------------------------------

@dataclass
class Param:
    name: str
    type: Type
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret_type: Type
    params: List[Param]
    varargs: bool
    body: Optional[Block]  # None for a prototype
    quals: Tuple[str, ...] = ()
    line: int = 0

    @property
    def is_proto(self) -> bool:
        return self.body is None


@dataclass
class GlobalDecl:
    name: str
    type: Type
    array_size: Optional[int]  # None for scalars
    init: List[Union[int, float]]
    static: bool = False
    extern: bool = False
    line: int = 0


@dataclass
class TranslationUnit:
    """One parsed source file."""

    decls: List[Union[FuncDef, GlobalDecl]] = field(default_factory=list)
