"""``li`` — an expression-tree interpreter (analog of SPEC's xlisp).

The SPEC lisp interpreters are dominated by recursive ``eval`` dispatch
over small per-operator helpers; the paper reports li as the suite's
biggest winner (2x), with cloning a "vital contributor".  This workload
has the same shape: a node pool module, an evaluator module whose
static helpers recurse back into ``eval``, and a driver that builds
random expression trees and folds them over many variable bindings.

Inputs: [number of trees, evaluation iterations, tree depth].
"""

from ..suite import Workload, register

CELLS = """
// Node pool for expression trees, interleaved so one node occupies one
// cache line (kind, left, right, val, aux at stride 8).  Kinds:
//   0 const (val)        1 var (val selects a or b)
//   2 add   3 sub        4 mul (mod 9973)
//   5 less-than          6 if (cond node in aux)
int pool[8192];
static int next_node = 0;

int node_count() { return next_node; }

int node(int kind, int left, int right, int val) {
  int i = next_node;
  if (i >= 1024) exit(3);
  next_node = next_node + 1;
  pool[i * 8] = kind;
  pool[i * 8 + 1] = left;
  pool[i * 8 + 2] = right;
  pool[i * 8 + 3] = val;
  pool[i * 8 + 4] = 0;
  return i;
}

int leaf_const(int v) { return node(0, 0, 0, v); }
int leaf_var(int which) { return node(1, 0, 0, which); }
int mk(int kind, int l, int r) { return node(kind, l, r, 0); }

int mk_if(int c, int l, int r) {
  int n = node(6, l, r, 0);
  pool[n * 8 + 4] = c;
  return n;
}
"""

EVAL = """
extern int pool[8192];

// Evaluation statistics, maintained only in traced mode.  ``mode`` is a
// pass-through parameter on the whole recursive evaluator nest — the
// paper names "cloning a recursive procedure with a pass-through
// parameter" as a case its multi-pass structure handles: a clone
// specialized on mode=0 drops all the bookkeeping below.
int stat_visits = 0;
int stat_depth = 0;

static void note_visit(int kind) {
  stat_visits = stat_visits + 1;
  stat_depth = (stat_depth * 31 + kind) % 1000003;
}

int eval(int n, int a, int b, int mode);

// Helpers receive the node base address and read their own child
// links.  With the pass-through ``mode`` they take five arguments —
// one beyond the register-argument budget — so cloning mode away also
// eliminates a memory argument at every hot call.
static int eval_add(int base, int a, int b, int mode) {
  return eval(pool[base + 1], a, b, mode) + eval(pool[base + 2], a, b, mode);
}

static int eval_sub(int base, int a, int b, int mode) {
  return eval(pool[base + 1], a, b, mode) - eval(pool[base + 2], a, b, mode);
}

static int eval_mul(int base, int a, int b, int mode) {
  int x = eval(pool[base + 1], a, b, mode) % 9973;
  int y = eval(pool[base + 2], a, b, mode) % 9973;
  return (x * y) % 9973;
}

static int eval_lt(int base, int a, int b, int mode) {
  if (eval(pool[base + 1], a, b, mode) < eval(pool[base + 2], a, b, mode)) return 1;
  return 0;
}

static int eval_if(int base, int a, int b, int mode) {
  if (eval(pool[base + 4], a, b, mode)) return eval(pool[base + 1], a, b, mode);
  return eval(pool[base + 2], a, b, mode);
}

int eval(int n, int a, int b, int mode) {
  int base = n * 8;
  int k = pool[base];
  if (mode) note_visit(k);
  if (k == 0) return pool[base + 3];
  if (k == 1) {
    if (pool[base + 3] == 0) return a;
    return b;
  }
  if (k == 2) return eval_add(base, a, b, mode);
  if (k == 3) return eval_sub(base, a, b, mode);
  if (k == 4) return eval_mul(base, a, b, mode);
  if (k == 5) return eval_lt(base, a, b, mode);
  return eval_if(base, a, b, mode);
}

int visits() { return stat_visits; }
int depth_sig() { return stat_depth; }

// Fold an expression over bindings (0,seed) .. (iters-1, seed^i):
// the hot loop the profile steers inlining toward.  mode=0 here is the
// clone-spec constant.
int eval_many(int root, int iters, int seed) {
  int total = 0;
  int i;
  for (i = 0; i < iters; i++) {
    total = total + eval(root, i, (i ^ seed) % 251, 0);
    total = total % 1000003;
  }
  return total;
}
"""

MAIN = """
extern int leaf_const(int v);
extern int leaf_var(int which);
extern int mk(int kind, int l, int r);
extern int mk_if(int c, int l, int r);
extern int node_count();
extern int eval(int n, int a, int b, int mode);
extern int eval_many(int root, int iters, int seed);
extern int visits();
extern int depth_sig();

static int seed = 12345;

static int rnd(int m) {
  seed = (seed * 1103515245 + 12345) % 2147483648;
  if (seed < 0) seed = -seed;
  return seed % m;
}

static int gen(int depth) {
  if (depth <= 0) {
    if (rnd(2)) return leaf_const(rnd(100));
    return leaf_var(rnd(2));
  }
  int k = 2 + rnd(5);
  if (k == 6) return mk_if(gen(depth - 1), gen(depth - 1), gen(depth - 1));
  return mk(k, gen(depth - 1), gen(depth - 1));
}

int roots[64];

int main() {
  int ntrees = input(0);
  int iters = input(1);
  int depth = input(2);
  if (ntrees > 64) ntrees = 64;
  int i;
  for (i = 0; i < ntrees; i++) roots[i] = gen(depth);
  int total = 0;
  for (i = 0; i < ntrees; i++) {
    // One traced evaluation per tree (cold), then the hot fold.
    total = (total + eval(roots[i], 1, 2, 1)) % 1000003;
    total = (total + eval_many(roots[i], iters, i * 7 + 1)) % 1000003;
  }
  print_int(total);
  print_int(node_count());
  print_int(visits());
  print_int(depth_sig());
  return total % 97;
}
"""

WORKLOAD = Workload(
    name="li",
    spec_analog="022.li / 130.li (xlisp interpreter)",
    description="recursive expression evaluator with per-operator helpers",
    sources=(("cells", CELLS), ("eval", EVAL), ("limain", MAIN)),
    train_inputs=((5, 10, 4),),
    ref_input=(8, 24, 5),
    suites=("92", "95"),
)


def register_workload() -> None:
    register(WORKLOAD)
