"""Span-based structured tracing, exported as Chrome trace-event JSON.

The span model is hierarchical and mirrors the toolchain's own shape::

    build                       (one per Toolchain.build / CLI command)
      frontend                  (module compiles; parallel workers get
        module:<name>            their own timeline rows, merged here)
      train / isom-roundtrip / link
      hlo
        input-stage / outline
        clone-pass N / inline-pass N
          clone:<name> / inline:<caller><-<callee>   (per-procedure)
        unreachable-sweep
        output-stage

Spans nest by containment on one timeline row (Chrome ``ph:"X"``
complete events); per-worker spans from the parallel executor land on
their own row (``tid`` = worker pid) of the same ``pid``, so Perfetto
renders the fan-out next to the coordinating build.  Pass failures from
the resilience layer are instant events (``ph:"i"``) at the moment the
guard caught them.

The disabled fast path is a shared :data:`NULL_TRACER` whose ``span``
returns one reusable no-op context manager — no allocation, no clock
read — so always-on call sites cost a method call when tracing is off.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Dict, List, Optional

TRACE_SCHEMA_VERSION = 1

# Chrome trace-event field cheat sheet: ph=X complete span, ph=i
# instant, ph=M metadata; ts/dur are microseconds.
_MAIN_TID = 0


class _NullSpan:
    """Reusable no-op span: the disabled-tracing fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """API-compatible tracer that records nothing."""

    enabled = False

    def span(self, name: str, cat: str = "build", **args) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "build", **args) -> None:
        pass

    def absorb_worker_spans(self, spans) -> None:
        pass

    def events(self) -> List[dict]:
        return []


NULL_TRACER = NullTracer()


class Span:
    """One timed region; records itself on the tracer at ``__exit__``."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_tid")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self._tid = _MAIN_TID

    def __enter__(self) -> "Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._tracer._complete(self, time.perf_counter())
        return False

    def add(self, **args) -> None:
        """Attach argument key/values to the span after the fact."""
        self.args.update(args)


class Tracer:
    """Collects trace events for one build; thread-safe appends.

    The epoch is taken in both ``perf_counter`` and wall-clock terms so
    spans measured in *other processes* (parallel workers report
    wall-clock start/end pairs) can be placed on the same timeline.
    """

    enabled = True

    def __init__(self) -> None:
        self._epoch_perf = time.perf_counter()
        self._epoch_wall = time.time()
        self._events: List[dict] = []
        self._lock = threading.Lock()
        self._thread_names: Dict[int, str] = {_MAIN_TID: "build"}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, cat: str = "build", **args) -> Span:
        return Span(self, name, cat, args)

    def _complete(self, span: Span, end: float) -> None:
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "pid": 1,
            "tid": span._tid,
            "ts": self._ts(span._start),
            "dur": max(0.0, (end - span._start) * 1e6),
        }
        if span.args:
            event["args"] = dict(span.args)
        with self._lock:
            self._events.append(event)

    def instant(self, name: str, cat: str = "build", **args) -> None:
        """A zero-duration marker (pass failures, degradations, ...)."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": _MAIN_TID,
            "ts": self._ts(time.perf_counter()),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def absorb_worker_spans(self, spans) -> None:
        """Merge spans measured in worker processes onto this timeline.

        Each item is a dict with ``name``, ``pid`` (the worker's OS
        pid, used as the tid of its timeline row), wall-clock ``start``
        / ``end`` seconds, and optional ``cat`` / ``args``.
        """
        with self._lock:
            for info in spans:
                tid = int(info["pid"])
                self._thread_names.setdefault(tid, "worker-{}".format(tid))
                event = {
                    "name": info["name"],
                    "cat": info.get("cat", "frontend"),
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": max(0.0, (info["start"] - self._epoch_wall) * 1e6),
                    "dur": max(0.0, (info["end"] - info["start"]) * 1e6),
                }
                if info.get("args"):
                    event["args"] = dict(info["args"])
                self._events.append(event)

    def _ts(self, perf_t: float) -> float:
        return max(0.0, (perf_t - self._epoch_perf) * 1e6)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._events)

    def to_dict(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        with self._lock:
            metadata = [
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": label},
                }
                for tid, label in sorted(self._thread_names.items())
            ]
            return {
                "traceEvents": metadata + list(self._events),
                "displayTimeUnit": "ms",
                "otherData": {"schema": TRACE_SCHEMA_VERSION, "tool": "repro"},
            }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=1)
            handle.write("\n")


def worker_span(name: str, start_wall: float, end_wall: float,
                pid: int, cat: str = "frontend",
                args: Optional[dict] = None) -> dict:
    """The picklable span record a worker process sends home."""
    info = {"name": name, "pid": pid, "start": start_wall, "end": end_wall,
            "cat": cat}
    if args:
        info["args"] = args
    return info
