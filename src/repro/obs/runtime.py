"""Guest execution profiling: flamegraphs out of the event stream.

Build-time observability (PR 3) answers "where did the *compiler*
spend its time"; this module answers the same question for the *guest
program* the interpreter is running.  :class:`RuntimeProfiler` is an
:class:`~repro.interp.events.EventSink` riding the same shadow-stack
technique as the sampling profile collector
(:class:`~repro.sampling.sampler.SamplingSink`): every instruction
event advances a seeded, jittered countdown, and when it expires the
profiler records the *entire* current call stack — not the k-deep
context the inliner consumes, but the root-to-leaf chain a flamegraph
wants.  Call edges are tallied exactly on the side (every executed
call already passes through the event stream), so caller→callee
counts carry no sampling noise.

Because all three engines — reference, fast, codegen — deliver
byte-identical event streams per sink mode (the differential fuzz
harness pins this), the same profiler attached to the same program,
inputs, and seed produces the *same samples* on every engine; the
flamegraph is a property of the execution, not of the engine that ran
it.

Exports: collapsed-stack text (``main;hot;inner 1234``, one context
per line — Brendan Gregg's ``flamegraph.pl`` / ``inferno`` input) and
speedscope JSON (https://www.speedscope.app/file-format-schema.json,
``type: sampled``), both weighted in *estimated instructions*: raw
sample counts scaled by the measured events-per-sample rate, so at
``rate=1`` the weights are exact instruction counts per context.

Zero-cost when off: the profiler is only ever attached when the user
asked for a flame (``repro run --flame-out``, ``repro profile
flame``); an unobserved run passes ``sink=None`` and the engines'
capability negotiation emits no callback code at all.  A constructed
but *disabled* profiler (``enabled=False``) negotiates every
capability off, which the bench harness uses to price the "attached
but off" path (it compiles to the same zero-callback plans).
"""

from __future__ import annotations

import json
import random
from typing import Dict, List, Optional, Tuple

from ..interp.events import EventSink
from ..ir.instructions import CALL_INSTRS

FLAME_SCHEMA = "https://www.speedscope.app/file-format-schema.json"

DEFAULT_FLAME_RATE = 20
DEFAULT_FLAME_JITTER = 0.2

StackKey = Tuple[str, ...]


class RuntimeProfiler(EventSink):
    """Samples full call stacks off the interpreter event stream.

    ``rate``
        Nominal instruction events between stack samples (1 = sample
        every instruction, i.e. exact attribution).
    ``seed`` / ``jitter``
        Seeded jitter spread for the inter-sample gap, exactly as in
        :class:`~repro.sampling.sampler.SamplingSink` — breaks
        loop-period resonance, keeps runs reproducible.
    ``enabled``
        ``False`` negotiates every capability off: the engines emit
        zero callback code and the profiler records nothing.
    """

    # Full-stack attribution needs exact, in-order instruction events
    # (the countdown defines which instruction each sample lands on)
    # plus call/return for the shadow stack; branch and memory traffic
    # are irrelevant, so engines skip those callbacks entirely.
    needs_branch = False
    needs_mem = False

    def __init__(
        self,
        rate: int = DEFAULT_FLAME_RATE,
        seed: int = 0,
        jitter: float = DEFAULT_FLAME_JITTER,
        enabled: bool = True,
    ) -> None:
        if rate < 1:
            raise ValueError("flame sample rate must be >= 1")
        self.rate = rate
        self.seed = seed
        self.jitter = jitter
        self.enabled = enabled
        if not enabled:
            # Instance-level capability override: a disabled profiler
            # negotiates exactly like sink=None, so the engines build
            # (and share) the zero-callback plans.
            self.needs_instr = False
            self.needs_call = False
            self.needs_return = False
        self.events = 0
        self.samples = 0
        self.stack_samples: Dict[StackKey, int] = {}
        self.call_edges: Dict[Tuple[str, str], int] = {}
        self.max_stack_depth = 0
        self._rng = random.Random(seed)
        self._spread = max(1, int(round(rate * jitter))) if rate > 1 else 0
        self._stack: List[str] = []  # shadow stack of caller names
        self._gap = self._next_gap()

    def _next_gap(self) -> int:
        if self._spread == 0:
            return self.rate
        return max(1, self.rate + self._rng.randint(-self._spread, self._spread))

    # -- EventSink callbacks -------------------------------------------

    def on_instr(self, proc, label, index, instr) -> None:
        self.events += 1
        if isinstance(instr, CALL_INSTRS):
            # Exact per-site tally (the LBR analogue): call edges never
            # go through the sampling countdown.
            callee = getattr(instr, "callee", None) or "<indirect>"
            edge = (proc.name, callee)
            self.call_edges[edge] = self.call_edges.get(edge, 0) + 1
        self._gap -= 1
        if self._gap <= 0:
            self._gap = self._next_gap()
            stack = tuple(self._stack) + (proc.name,)
            self.samples += 1
            self.stack_samples[stack] = self.stack_samples.get(stack, 0) + 1

    def on_call(self, caller, callee_name, kind, n_args) -> None:
        # Builtins never produce a matching on_return; they must not
        # grow the shadow stack (same rule as SamplingSink).
        if kind != "builtin":
            self._stack.append(caller.name)
            depth = len(self._stack) + 1
            if depth > self.max_stack_depth:
                self.max_stack_depth = depth

    def on_return(self, callee_name, caller) -> None:
        if self._stack:
            self._stack.pop()

    def reset_stack(self) -> None:
        """Forget the shadow stack between independent runs (a run
        ending via ``exit()`` leaves frames un-returned)."""
        self._stack = []

    # -- Derived figures -------------------------------------------------

    @property
    def effective_rate(self) -> float:
        """Measured events-per-sample (≈ the nominal rate)."""
        return self.events / self.samples if self.samples else 0.0

    def weighted_stacks(self) -> List[Tuple[StackKey, int]]:
        """(stack, estimated-instructions) per context, deterministic order.

        Raw sample counts are scaled by the measured events-per-sample
        rate so the weights sum to ≈ the executed instruction count;
        at ``rate=1`` they are exact.  Every weight stays >= 1: a
        context that was sampled at all represents at least one
        executed instruction.
        """
        scale = self.effective_rate
        return [
            (stack, max(1, int(round(count * scale))))
            for stack, count in sorted(self.stack_samples.items())
        ]

    # -- Exports -----------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed-stack text: ``root;child;leaf <weight>`` per line."""
        lines = [
            "{} {}".format(";".join(stack), weight)
            for stack, weight in self.weighted_stacks()
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro guest profile") -> dict:
        """The profile as a speedscope ``sampled``-type document."""
        weighted = self.weighted_stacks()
        frame_names = sorted({frame for stack, _w in weighted for frame in stack})
        frame_index = {frame: i for i, frame in enumerate(frame_names)}
        samples = [[frame_index[f] for f in stack] for stack, _w in weighted]
        weights = [weight for _stack, weight in weighted]
        total = sum(weights)
        return {
            "$schema": FLAME_SCHEMA,
            "exporter": "repro",
            "name": name,
            "activeProfileIndex": 0,
            "shared": {"frames": [{"name": f} for f in frame_names]},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "none",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def write(self, path: str, fmt: str = "auto",
              name: str = "repro guest profile") -> str:
        """Write the profile; returns the format actually written.

        ``fmt`` is ``speedscope``, ``collapsed``, or ``auto`` (by
        extension: ``.json`` → speedscope, anything else collapsed).
        """
        if fmt == "auto":
            fmt = "speedscope" if path.endswith(".json") else "collapsed"
        if fmt not in ("speedscope", "collapsed"):
            raise ValueError("unknown flame format {!r}".format(fmt))
        with open(path, "w") as handle:
            if fmt == "speedscope":
                json.dump(self.speedscope(name), handle, indent=2, sort_keys=True)
                handle.write("\n")
            else:
                handle.write(self.collapsed())
        return fmt

    def format_text(self, limit: Optional[int] = 10) -> str:
        """Human summary: hottest contexts plus the exact hot call edges."""
        weighted = sorted(
            self.weighted_stacks(), key=lambda item: (-item[1], item[0])
        )
        total = sum(weight for _stack, weight in weighted) or 1
        lines = [
            "runtime profile: {} samples / {} events "
            "(rate ~{:.1f}), {} contexts, max depth {}".format(
                self.samples, self.events, self.effective_rate,
                len(self.stack_samples), self.max_stack_depth,
            )
        ]
        shown = weighted if limit is None else weighted[:limit]
        for stack, weight in shown:
            lines.append(
                "  {:6.1%} {}".format(weight / total, ";".join(stack))
            )
        if limit is not None and len(weighted) > limit:
            lines.append("  ... {} more contexts".format(len(weighted) - limit))
        edges = sorted(
            self.call_edges.items(), key=lambda item: (-item[1], item[0])
        )
        if edges:
            lines.append("hot call edges (exact):")
            for (caller, callee), count in edges[: limit or len(edges)]:
                lines.append("  {:>10} {} -> {}".format(count, caller, callee))
        return "\n".join(lines)
