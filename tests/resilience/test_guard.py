"""The guarded pass runner: rollback, quarantine, bisection, strict."""

import pytest

from repro.core.config import HLOConfig
from repro.core.hlo import run_hlo
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import print_program
from repro.opt.pass_manager import default_pipeline
from repro.resilience import (
    PROGRAM_SCOPE,
    FaultInjector,
    GuardConfig,
    InjectedFault,
    PassGuard,
    bisect_failure,
)

LIB = """
static int twice(int x) { return x + x; }
int api(int x) { return twice(x) + 3; }
"""
MAIN = """
extern int api(int x);
int main() { print_int(api(input(0))); return 0; }
"""


def program():
    return compile_program([("lib", LIB), ("main", MAIN)])


def crashing(program, proc):
    raise InjectedFault("boom")


class TestRunProcPass:
    def test_failure_rolls_back_and_records(self):
        prog = program()
        proc = prog.proc("api")
        before = print_program(prog)
        guard = PassGuard()

        def breaks_then_raises(program, proc):
            proc.blocks[proc.entry].instrs.pop()
            raise InjectedFault("boom")

        changed = guard.run_proc_pass(prog, proc, "badpass", breaks_then_raises,
                                      pass_number=1, phase="scalar")
        assert changed is False
        assert print_program(prog) == before
        (failure,) = guard.failures
        assert failure.pass_name == "badpass"
        assert failure.proc == "api"
        assert failure.pass_number == 1
        assert failure.error_type == "InjectedFault"
        assert "boom" in failure.error

    def test_quarantine_stops_reinvoking(self):
        prog = program()
        proc = prog.proc("api")
        guard = PassGuard(GuardConfig(max_failures=2))
        calls = []

        def counted_crash(program, proc):
            calls.append(proc.name)
            raise InjectedFault("boom")

        for _ in range(5):
            guard.run_proc_pass(prog, proc, "badpass", counted_crash)
        assert len(calls) == 2  # third and later invocations skipped
        assert "badpass" in guard.quarantined
        assert guard.failures[-1].quarantined

    def test_strict_reraises(self):
        prog = program()
        guard = PassGuard(GuardConfig(strict=True))
        with pytest.raises(InjectedFault):
            guard.run_proc_pass(prog, prog.proc("api"), "badpass", crashing)

    def test_verify_each_pass_catches_corruption(self):
        prog = program()
        proc = prog.proc("api")
        before = print_program(prog)
        injector = FaultInjector(seed=3)
        guard = PassGuard(GuardConfig(verify_each_pass=True))
        changed = guard.run_proc_pass(
            prog, proc, "corrupt", injector.corrupting_pass("corrupt")
        )
        assert changed is False
        assert print_program(prog) == before
        assert guard.failures[0].error_type == "VerifyError"

    def test_corruption_unnoticed_without_verify(self):
        # Control for the test above: the same corrupting pass slips
        # through when per-pass verification is off.
        prog = program()
        proc = prog.proc("api")
        injector = FaultInjector(seed=3)
        guard = PassGuard(GuardConfig(verify_each_pass=False))
        guard.run_proc_pass(prog, proc, "corrupt", injector.corrupting_pass("corrupt"))
        assert not guard.failures


class TestRunProgramStage:
    def test_failure_restores_program_and_returns_default(self):
        prog = program()
        before = print_program(prog)
        guard = PassGuard()

        def stage():
            prog.delete_proc("twice$lib")
            raise InjectedFault("stage died")

        result = guard.run_program_stage(prog, "clone", stage, default=0)
        assert result == 0
        assert print_program(prog) == before
        (failure,) = guard.failures
        assert failure.proc == PROGRAM_SCOPE

    def test_bisection_names_culprit(self):
        prog = program()
        injector = FaultInjector(seed=0, crash_pass="cse")
        pipeline = injector.wrap_pipeline(default_pipeline())
        guard = PassGuard()

        def stage():
            raise InjectedFault("stage died")

        guard.run_program_stage(
            prog, "inline", stage, default=0, bisect_pipeline=pipeline
        )
        (failure,) = guard.failures
        assert failure.culprit.startswith("cse on @")


class TestBisectFailure:
    def test_finds_minimal_pair_and_leaves_program_intact(self):
        prog = program()
        before = print_program(prog)
        injector = FaultInjector(seed=0, crash_pass="peephole")
        pipeline = injector.wrap_pipeline(default_pipeline())
        pair = bisect_failure(prog, pipeline)
        assert pair is not None
        name, proc = pair
        assert name == "peephole"
        assert prog.proc(proc) is not None
        assert print_program(prog) == before

    def test_healthy_pipeline_yields_none(self):
        prog = program()
        before = print_program(prog)
        assert bisect_failure(prog, default_pipeline()) is None
        assert print_program(prog) == before


class TestGuardedHLO:
    def test_crashing_pass_build_completes_with_same_behavior(self):
        # The acceptance-criteria scenario: a deliberately crashing
        # scalar pass must not change what the program computes.
        baseline_prog = program()
        baseline = run_program(baseline_prog, [9]).behavior()

        prog = program()
        injector = FaultInjector(seed=1, crash_pass="constprop")
        pipeline = injector.wrap_pipeline(default_pipeline())
        report = run_hlo(prog, HLOConfig(), pipeline=pipeline)

        assert run_program(prog, [9]).behavior() == baseline
        assert report.pass_failures
        assert all(f.pass_name == "constprop" for f in report.pass_failures)
        assert report.degraded
        assert "constprop" in report.quarantined_passes

    def test_strict_hlo_raises_on_first_failure(self):
        prog = program()
        injector = FaultInjector(seed=1, crash_pass="constprop")
        pipeline = injector.wrap_pipeline(default_pipeline())
        with pytest.raises(InjectedFault):
            run_hlo(prog, HLOConfig(strict=True), pipeline=pipeline)

    def test_corrupting_pass_with_verify_rolls_back(self):
        baseline_prog = program()
        baseline = run_program(baseline_prog, [4]).behavior()

        prog = program()
        injector = FaultInjector(seed=2, corrupt_pass="dce")
        pipeline = injector.wrap_pipeline(default_pipeline())
        report = run_hlo(
            prog, HLOConfig(verify_each_pass=True), pipeline=pipeline
        )
        assert run_program(prog, [4]).behavior() == baseline
        assert report.pass_failures
        assert report.pass_failures[0].error_type == "VerifyError"

    def test_unguarded_config_still_works(self):
        prog = program()
        report = run_hlo(prog, HLOConfig(guarded=False))
        assert not report.pass_failures
