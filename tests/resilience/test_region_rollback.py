"""Region-scoped failure containment in the demand strategy.

The global strategy's guard snapshots the whole program per stage; the
demand planner instead isolates each *region*: a crash while
optimizing one region must roll back exactly that region's IR, report
counters, ledger decisions, and analysis memos — and every other
region's work must survive and ship.
"""

from repro.core import HLOConfig, run_hlo
from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import verify_program
from repro.obs import BuildObserver, InliningLedger

TWO_CHAINS = [(
    "m",
    """
    int ha(int x) { return x * 3 + 1; }
    int da(int n) {
      int t = 0;
      for (int i = 0; i < n; i++) t = t + ha(i);
      return t;
    }
    int hb(int x) { return x * 5 + 2; }
    int db(int n) {
      int t = 0;
      for (int i = 0; i < n; i++) t = t + hb(i);
      return t;
    }
    int main() {
      print_int(da(400) + db(400));
      return 0;
    }
    """,
)]

# Small enough that no single region can absorb both driver chains.
CONFIG_KWARGS = dict(strategy="demand", region_size_cap=30)


class CrashOnCaller:
    """Raise the first time an inline is attempted into ``target``."""

    def __init__(self, real, target):
        self.real = real
        self.target = target
        self.fired = False

    def __call__(self, program, caller, *args, **kwargs):
        if caller.name == self.target:
            self.fired = True
            raise RuntimeError("injected: inline into " + self.target)
        return self.real(program, caller, *args, **kwargs)


def _crashing_build(monkeypatch, target):
    from repro.core import regions

    crasher = CrashOnCaller(regions.perform_inline, target)
    monkeypatch.setattr(regions, "perform_inline", crasher)
    program = compile_program(TWO_CHAINS)
    ledger = InliningLedger()
    report = run_hlo(
        program, HLOConfig(**CONFIG_KWARGS),
        observer=BuildObserver(ledger=ledger),
    )
    assert crasher.fired, "injected fault never reached: test is vacuous"
    return program, report, ledger


def test_failed_region_rolls_back_others_survive(monkeypatch):
    baseline = run_program(compile_program(TWO_CHAINS)).behavior()
    program, report, _ = _crashing_build(monkeypatch, "da")

    verify_program(program)
    assert run_program(program).behavior() == baseline
    demand_failures = [f for f in report.pass_failures if f.phase == "demand"]
    assert demand_failures and demand_failures[0].pass_name == "demand"
    # The sibling chain's region committed its work.
    assert report.inlines >= 1


def test_failed_region_ledger_truncated(monkeypatch):
    program, report, ledger = _crashing_build(monkeypatch, "da")

    failed_indices = {
        f.pass_number for f in report.pass_failures if f.phase == "demand"
    }
    assert failed_indices
    failed_prefixes = tuple("r{}:".format(i) for i in failed_indices)
    regions_seen = {e.region for e in ledger.entries if e.region}
    # Decisions from healthy regions remain; every decision the failed
    # region recorded before crashing was truncated with its rollback.
    assert regions_seen
    assert not any(
        region.startswith(failed_prefixes) for region in regions_seen
    )


def test_quarantined_demand_stage_still_ships_a_build(monkeypatch):
    # Crash *every* region (target main's callers too): once the stage
    # hits max_failures it is quarantined, and the build must complete
    # as a no-transform HLO run with behavior intact.
    from repro.core import regions

    baseline = run_program(compile_program(TWO_CHAINS)).behavior()

    def always_crash(program, caller, *args, **kwargs):
        raise RuntimeError("injected: no inline survives")

    monkeypatch.setattr(regions, "perform_inline", always_crash)
    program = compile_program(TWO_CHAINS)
    report = run_hlo(program, HLOConfig(**CONFIG_KWARGS))

    verify_program(program)
    assert run_program(program).behavior() == baseline
    assert report.inlines == 0
    assert report.degraded
    assert "demand" in report.quarantined_passes
