"""`repro profile {sample,merge,report,check}` and sampling-aware
`train`/`compile` flags, end to end through the CLI driver."""

import json

import pytest

from repro.cli import main
from repro.profile.database import ProfileDatabase

PROGRAM = """
int helper(int x) { return x * 2 + 1; }
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 40; i = i + 1) {
    s = s + helper(i);
  }
  print_int(s);
  return 0;
}
"""

# helper's body differs: its fingerprint goes stale, main's stays fresh.
PROGRAM_EDITED = """
int helper(int x) {
  if (x > 10) { return x * 3; }
  return x * 2 + 1;
}
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 40; i = i + 1) {
    s = s + helper(i);
  }
  print_int(s);
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


def _sample(source_file, tmp_path, name="p.db", rate=10, extra=()):
    out = str(tmp_path / name)
    code = main(
        ["profile", "sample", source_file, "--rate", str(rate), "-o", out]
        + list(extra)
    )
    assert code == 0
    return out


class TestProfileSample:
    def test_writes_a_sampled_database(self, source_file, tmp_path, capsys):
        out = _sample(source_file, tmp_path)
        captured = capsys.readouterr().out
        assert "sampled 1 run(s)" in captured
        assert "confidence" in captured
        db = ProfileDatabase.load(out)
        assert db.sampled
        assert db.sample_count > 0

    def test_workload_sources_need_no_files(self, tmp_path, capsys):
        out = str(tmp_path / "wl.db")
        code = main(
            ["profile", "sample", "--workload", "compress",
             "--rate", "100", "-o", out]
        )
        assert code == 0
        assert ProfileDatabase.load(out).sampled

    def test_unknown_workload_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", "sample", "--workload", "nope",
                  "-o", str(tmp_path / "x.db")])

    def test_sources_required(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["profile", "sample", "-o", str(tmp_path / "x.db")])


class TestProfileMerge:
    def test_merge_accumulates_runs(self, source_file, tmp_path, capsys):
        a = _sample(source_file, tmp_path, "a.db", extra=["--seed", "0"])
        b = _sample(source_file, tmp_path, "b.db", extra=["--seed", "7"])
        out = str(tmp_path / "merged.db")
        code = main(["profile", "merge", a, b, "-o", out])
        assert code == 0
        assert "merged 2 database(s)" in capsys.readouterr().out
        merged = ProfileDatabase.load(out)
        assert merged.training_runs == 2
        assert merged.sampled

    def test_merge_with_weights(self, source_file, tmp_path):
        a = _sample(source_file, tmp_path, "a.db")
        b = _sample(source_file, tmp_path, "b.db", extra=["--seed", "3"])
        out = str(tmp_path / "merged.db")
        code = main(
            ["profile", "merge", a, b, "--weights", "3.0,1.0", "-o", out]
        )
        assert code == 0
        assert ProfileDatabase.load(out).training_runs == 2

    def test_weight_count_mismatch_fails(self, source_file, tmp_path):
        a = _sample(source_file, tmp_path, "a.db")
        with pytest.raises(SystemExit):
            main(["profile", "merge", a, "--weights", "1.0,2.0",
                  "-o", str(tmp_path / "m.db")])

    def test_weights_and_decay_are_exclusive(self, source_file, tmp_path):
        a = _sample(source_file, tmp_path, "a.db")
        b = _sample(source_file, tmp_path, "b.db", extra=["--seed", "1"])
        with pytest.raises(SystemExit):
            main(["profile", "merge", a, b, "--weights", "1.0,1.0",
                  "--decay", "0.5", "-o", str(tmp_path / "m.db")])

    def test_merge_with_decay(self, source_file, tmp_path):
        a = _sample(source_file, tmp_path, "a.db")
        b = _sample(source_file, tmp_path, "b.db", extra=["--seed", "4"])
        out = str(tmp_path / "m.db")
        assert main(["profile", "merge", a, b, "--decay", "0.5",
                     "-o", out]) == 0
        assert ProfileDatabase.load(out).training_runs == 2


class TestProfileReport:
    def test_human_readable(self, source_file, tmp_path, capsys):
        db = _sample(source_file, tmp_path)
        code = main(["profile", "report", db, source_file])
        assert code == 0
        out = capsys.readouterr().out
        assert "confidence" in out
        assert "coverage" in out

    def test_json_payload(self, source_file, tmp_path, capsys):
        db = _sample(source_file, tmp_path)
        capsys.readouterr()
        code = main(["profile", "report", db, source_file, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sampled"]
        assert payload["match_ratio"] == 1.0
        assert payload["staleness"]["stale"] == []

    def test_report_without_sources_skips_staleness(
        self, source_file, tmp_path, capsys
    ):
        db = _sample(source_file, tmp_path)
        capsys.readouterr()
        code = main(["profile", "report", db, "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["sampled"]


class TestProfileCheck:
    def test_fresh_profile_passes(self, source_file, tmp_path, capsys):
        db = _sample(source_file, tmp_path)
        code = main(["profile", "check", db, source_file])
        assert code == 0
        assert "profile check: OK" in capsys.readouterr().out

    def test_stale_procedure_fails_the_gate(
        self, source_file, tmp_path, capsys
    ):
        db = _sample(source_file, tmp_path)
        edited = tmp_path / "edited.mc"
        edited.write_text(PROGRAM_EDITED)
        code = main(["profile", "check", db, str(edited)])
        assert code == 1
        captured = capsys.readouterr()
        assert "stale" in captured.err

    def test_remap_salvages_and_passes_next_check(
        self, source_file, tmp_path, capsys
    ):
        db = _sample(source_file, tmp_path)
        edited = tmp_path / "edited.mc"
        edited.write_text(PROGRAM_EDITED)
        remapped = str(tmp_path / "remapped.db")
        code = main(
            ["profile", "check", db, str(edited), "--remap", remapped]
        )
        assert code == 1  # the input db is still stale
        assert "remapped:" in capsys.readouterr().out
        # The salvaged database passes a fresh check against the same
        # sources with the default match floor: only main's counts
        # remain and they are fresh.
        code = main(["profile", "check", remapped, str(edited)])
        assert code == 0

    def test_thin_confidence_fails_the_gate(
        self, source_file, tmp_path, capsys
    ):
        thin = _sample(source_file, tmp_path, rate=5000)
        code = main(
            ["profile", "check", thin, source_file,
             "--min-confidence", "0.99"]
        )
        assert code == 1
        assert "confidence" in capsys.readouterr().err


class TestTrainSampling:
    def test_train_sample_rate_writes_sampled_db(
        self, source_file, tmp_path, capsys
    ):
        out = str(tmp_path / "t.db")
        code = main(
            ["train", source_file, "--sample-rate", "10", "-o", out]
        )
        assert code == 0
        assert "sampled" in capsys.readouterr().out
        assert ProfileDatabase.load(out).sampled

    def test_train_multiple_inputs_flags_and_chunks(
        self, source_file, tmp_path, capsys
    ):
        out = str(tmp_path / "t.db")
        code = main(
            ["train", source_file,
             "--inputs", "1", "--inputs", "2;3", "-o", out]
        )
        assert code == 0
        assert "trained 3 run(s)" in capsys.readouterr().out
        db = ProfileDatabase.load(out)
        assert db.training_runs == 3
        assert not db.sampled


class TestCompileWithSampledProfile:
    def test_confident_sampled_profile_feeds_the_build(
        self, source_file, tmp_path, capsys
    ):
        db = str(tmp_path / "t.db")
        main(["train", source_file, "--sample-rate", "10",
              "--inputs", "0;0;0", "-o", db])
        capsys.readouterr()
        code = main(
            ["compile", source_file, "--scope", "cp", "--profile", db]
        )
        assert code == 0
        assert "static frequency estimates" not in capsys.readouterr().err

    def test_low_confidence_profile_degrades_to_static(
        self, source_file, tmp_path, capsys
    ):
        thin = _sample(source_file, tmp_path, rate=5000)
        capsys.readouterr()
        code = main(
            ["compile", source_file, "--scope", "cp", "--profile", thin]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "low-confidence sampled profile" in err
        assert "static frequency estimates" in err

    def test_strict_makes_low_confidence_fatal(self, source_file, tmp_path):
        thin = _sample(source_file, tmp_path, rate=5000)
        with pytest.raises(SystemExit, match="low-confidence"):
            main(["compile", source_file, "--scope", "cp",
                  "--profile", thin, "--strict"])
