"""Figure 6: relative speedup with inlining, cloning, or both.

Paper: each SPECint benchmark compiled four ways — neither, inline
only, clone only, both — at the cross-module + profile baseline, with
speedups relative to neither and geometric-mean summary rows.  The
claims the figure supports:

- "inlining alone has the biggest impact on performance";
- "cloning by itself does not yield significant performance
  improvements, and on some benchmarks actually reduces performance
  slightly";
- both together reach the suite-level speedup (1.24x SPEC92 / 1.32x
  SPEC95 on the PA8000; our substrate differs, so the *ordering* and
  rough magnitudes are the reproduction target, with per-benchmark
  maxima well above the mean).
"""

from __future__ import annotations

from repro.bench import fig6_speedups, format_table


def test_fig6_variant_speedups(benchmark, lab, archive):
    headers, rows = benchmark.pedantic(
        fig6_speedups, args=(lab,), rounds=1, iterations=1
    )
    text = format_table(headers, rows, "Figure 6: speedup over neither (cp scope)")
    archive("fig6_speedup", text)

    table = {row[0]: dict(zip(headers, row)) for row in rows}
    geo = table["geomean"]
    # Inlining dominates cloning-alone on the geometric mean.
    assert geo["inline"] > geo["clone"]
    # Both together materially beats no transforms at all.
    assert geo["both"] > 1.05
    # Clone-only hovers near 1.0 (the paper saw tiny gains or losses).
    assert 0.9 < geo["clone"] < 1.25
    # Every workload: both >= ~clone (cloning is additive, not harmful).
    for name, row in table.items():
        if name.startswith("geomean"):
            continue
        assert row["both"] > row["clone"] * 0.9, name
    # The paper reports both suite generations; both rows must exist and
    # both show the same ordering.
    for suite_row in ("geomean-92", "geomean-95"):
        assert suite_row in table
        assert table[suite_row]["inline"] > table[suite_row]["clone"]

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]
