"""Experiment laboratory: cached builds and measurements for the benches.

Every figure/table reproduction needs the same expensive artifacts —
trained toolchains, scope builds, machine-model runs — so the ``Lab``
memoizes them by configuration key.  The suite default budget is 400%
rather than the paper's 100%: our routines are one to two orders of
magnitude smaller than SPEC's, and under the quadratic cost model a
single inline is a far larger *relative* cost jump, so the knee of the
budget curve (Figure 8) sits higher.  EXPERIMENTS.md discusses this
substitution; ``bench_fig8_budget`` measures the knee directly.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional, Tuple

from ..core.config import HLOConfig
from ..interp.interpreter import Result
from ..linker.toolchain import BuildResult, Toolchain
from ..machine.metrics import MachineMetrics
from ..machine.pa8000 import MachineConfig
from ..workloads.suite import get_workload

SUITE_BUDGET_PERCENT = 400.0

# Figure 6 variants: which transforms are enabled.
VARIANTS = ("neither", "inline", "clone", "both")


def variant_config(base: HLOConfig, variant: str) -> HLOConfig:
    if variant == "neither":
        return replace(base, enable_inlining=False, enable_cloning=False)
    if variant == "inline":
        return replace(base, enable_cloning=False)
    if variant == "clone":
        return replace(base, enable_inlining=False)
    if variant == "both":
        return base
    raise ValueError("unknown variant {!r}".format(variant))


class Lab:
    """Caches toolchains, builds, and machine runs per configuration."""

    def __init__(
        self,
        budget_percent: float = SUITE_BUDGET_PERCENT,
        machine: Optional[MachineConfig] = None,
    ):
        self.budget_percent = budget_percent
        self.machine = machine or MachineConfig()
        self._toolchains: Dict[str, Toolchain] = {}
        self._builds: Dict[Tuple, BuildResult] = {}
        self._runs: Dict[Tuple, Tuple[MachineMetrics, Result]] = {}

    def default_config(self) -> HLOConfig:
        return HLOConfig(budget_percent=self.budget_percent)

    def toolchain(self, workload: str) -> Toolchain:
        tc = self._toolchains.get(workload)
        if tc is None:
            w = get_workload(workload)
            tc = Toolchain(
                list(w.sources),
                train_inputs=[list(t) for t in w.train_inputs],
            )
            self._toolchains[workload] = tc
        return tc

    def build(
        self,
        workload: str,
        scope: str = "cp",
        config: Optional[HLOConfig] = None,
        tag: str = "",
    ) -> BuildResult:
        """Build ``workload`` at ``scope``; cached by (workload, scope, tag).

        Pass a distinct ``tag`` whenever ``config`` differs from the
        lab default (the config object itself is not hashed).
        """
        key = (workload, scope, tag)
        cached = self._builds.get(key)
        if cached is None:
            cfg = config or self.default_config()
            cached = self.toolchain(workload).build(scope, cfg)
            self._builds[key] = cached
        return cached

    def measure(
        self,
        workload: str,
        scope: str = "cp",
        config: Optional[HLOConfig] = None,
        tag: str = "",
    ) -> Tuple[MachineMetrics, Result]:
        """Build and run on the reference input; cached like build()."""
        key = (workload, scope, tag)
        cached = self._runs.get(key)
        if cached is None:
            build = self.build(workload, scope, config, tag)
            w = get_workload(workload)
            cached = build.run(w.ref_input, machine=self.machine)
            self._runs[key] = cached
        return cached

    def measure_variant(
        self, workload: str, variant: str, scope: str = "cp"
    ) -> Tuple[MachineMetrics, Result]:
        cfg = variant_config(self.default_config(), variant)
        return self.measure(workload, scope, cfg, tag="variant:" + variant)
