"""CLI driver: each subcommand end to end."""

import os

import pytest

from repro.cli import main

PROGRAM = """
int twice(int x) { return x * 2; }
int main() {
  int n = input(0);
  print_int(twice(n) + input_len());
  return 0;
}
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.mc"
    path.write_text(PROGRAM)
    return str(path)


class TestRun:
    def test_run_prints_output(self, source_file, capsys):
        code = main(["run", source_file, "--inputs", "21"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "43"

    def test_run_simulate_reports_metrics(self, source_file, capsys):
        main(["run", source_file, "--inputs", "1", "--simulate"])
        captured = capsys.readouterr()
        assert "3" in captured.out
        assert "cycles=" in captured.err

    def test_run_without_hlo(self, source_file, capsys):
        code = main(["run", source_file, "--inputs", "2", "--no-hlo"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "5"

    def test_exit_code_propagates(self, tmp_path, capsys):
        path = tmp_path / "x.mc"
        path.write_text("int main() { return 3; }")
        assert main(["run", str(path)]) == 3


class TestCompile:
    def test_prints_ir(self, source_file, capsys):
        code = main(["compile", source_file, "--no-hlo"])
        assert code == 0
        out = capsys.readouterr().out
        assert 'module "prog"' in out
        assert "proc @main" in out

    def test_writes_isoms(self, source_file, tmp_path, capsys):
        isom_dir = str(tmp_path / "isoms")
        code = main(["compile", source_file, "--isom-dir", isom_dir])
        assert code == 0
        assert os.path.exists(os.path.join(isom_dir, "prog.isom"))


class TestTrainAndProfile:
    def test_train_writes_database(self, source_file, tmp_path, capsys):
        db_path = str(tmp_path / "p.profdb")
        code = main(["train", source_file, "--inputs", "5", "-o", db_path])
        assert code == 0
        assert os.path.exists(db_path)
        assert "trained 1 run(s)" in capsys.readouterr().out

    def test_profile_scope_pipeline(self, source_file, tmp_path, capsys):
        db_path = str(tmp_path / "p.profdb")
        main(["train", source_file, "--inputs", "5", "-o", db_path])
        capsys.readouterr()
        code = main(
            ["run", source_file, "--inputs", "21", "--scope", "cp",
             "--profile", db_path, "--budget", "400"]
        )
        assert code == 0
        assert capsys.readouterr().out.strip() == "43"

    def test_profile_scope_without_db_errors(self, source_file):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--scope", "cp"])


class TestReport:
    def test_report_lists_transforms(self, source_file, capsys):
        code = main(["report", source_file, "--budget", "1000"])
        assert code == 0
        out = capsys.readouterr().out
        assert "HLOReport" in out
        assert "transform events:" in out

    def test_transform_toggles(self, source_file, capsys):
        main(["report", source_file, "--budget", "1000", "--no-inline", "--no-clone"])
        out = capsys.readouterr().out
        assert "inlines=0" in out
        assert "clones=0" in out


class TestBench:
    def test_unknown_workload_errors(self):
        with pytest.raises(SystemExit):
            main(["bench", "doom"])


class TestResilienceFlags:
    def test_bad_profile_degrades_with_warning(self, source_file, tmp_path, capsys):
        bad = tmp_path / "bad.profdb"
        bad.write_text("not a database\n")
        code = main(
            ["run", source_file, "--inputs", "21", "--scope", "cp",
             "--profile", str(bad)]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "43"  # static fallback still runs
        assert "static frequency estimates" in captured.err
        assert "profile: static" in captured.err

    def test_missing_profile_degrades_with_warning(self, source_file, capsys):
        code = main(
            ["run", source_file, "--inputs", "21", "--scope", "cp",
             "--profile", "/nonexistent/x.profdb"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out.strip() == "43"
        assert "static frequency estimates" in captured.err

    def test_strict_makes_bad_profile_fatal(self, source_file, tmp_path):
        bad = tmp_path / "bad.profdb"
        bad.write_text("not a database\n")
        with pytest.raises(SystemExit):
            main(
                ["run", source_file, "--inputs", "21", "--scope", "cp",
                 "--profile", str(bad), "--strict"]
            )

    def test_report_accepts_strict_and_verify_flags(self, source_file, capsys):
        code = main(
            ["report", source_file, "--budget", "1000",
             "--strict", "--verify-each-pass"]
        )
        assert code == 0
        assert "HLOReport" in capsys.readouterr().out
