"""repro — a reproduction of "Aggressive Inlining" (PLDI 1997).

The package rebuilds the paper's HLO system and everything it stands
on: a ucode-like IR, a C-subset front end, a scalar optimizer, profile
feedback, a link-time (isom) pipeline, the budget-driven multi-pass
inliner/cloner, and a PA8000-style machine model for evaluation.

Quick start::

    from repro import Toolchain

    tc = Toolchain({"main": "int main(){ print_int(42); return 0; }"})
    result = tc.build("c")
    metrics, run = result.run()

See ``examples/quickstart.py`` for the guided tour and DESIGN.md for
the full system inventory.
"""

from .core.config import HLOConfig
from .core.hlo import run_hlo
from .core.report import HLOReport
from .frontend.driver import compile_module, compile_program
from .frontend.errors import CompileError
from .interp.interpreter import Interpreter, Result, run_program
from .ir.program import Program
from .linker.toolchain import SCOPES, BuildResult, Toolchain
from .machine.pa8000 import MachineConfig, simulate
from .profile.database import ProfileDatabase
from .profile.pgo import train

__version__ = "1.0.0"

__all__ = [
    "BuildResult",
    "CompileError",
    "HLOConfig",
    "HLOReport",
    "Interpreter",
    "MachineConfig",
    "Program",
    "ProfileDatabase",
    "Result",
    "SCOPES",
    "Toolchain",
    "__version__",
    "compile_module",
    "compile_program",
    "run_hlo",
    "run_program",
    "simulate",
    "train",
]
