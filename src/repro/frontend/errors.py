"""Front-end diagnostics."""

from __future__ import annotations


class CompileError(Exception):
    """A lexical, syntactic, or semantic error in minic source."""

    def __init__(self, message: str, line: int = 0, module: str = ""):
        where = ""
        if module or line:
            where = " [{}:{}]".format(module or "<source>", line)
        super().__init__(message + where)
        self.line = line
        self.module = module
