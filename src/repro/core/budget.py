"""HLO's compile-time budget model (Figure 2 of the paper).

"High-level control of the inliner is done by giving the inliner a
budget.  This budget is an estimate of how much compile time will
increase because of inlining. ... The HP-UX backend optimizer contains
several algorithms that are quadratic in the size of the routine being
optimized, so we model this effect accordingly."

Concretely:

- the current compile-time cost of a program is ``C = Σ_R size(R)²``
  (back-end cost is quadratic per routine);
- a budget percentage (default 100, Figure 8 sweeps 25–1000) allows the
  cost to grow to ``C * (1 + pct/100)``;
- the allowance is *staged* across passes so the first pass cannot
  consume everything: ``S[0] = C + B*0.2 ... S[limit-1] = C + B``.

Because the cost model is quadratic, a 100% compile-time budget yields
much less than 100% code growth (the paper reports ~20% typical growth).
"""

from __future__ import annotations

from typing import List

from ..ir.procedure import Procedure
from ..ir.program import Program

FIRST_STAGE_FRACTION = 0.2


def routine_cost(proc: Procedure) -> float:
    """Quadratic back-end cost model for one routine."""
    return float(proc.size()) ** 2


def program_cost(program: Program) -> float:
    """``C = Σ_R size(R)²`` over every defined routine."""
    return sum(routine_cost(p) for p in program.all_procs())


class Budget:
    """Tracks the compile-cost allowance through an HLO run."""

    def __init__(self, program: Program, budget_percent: float = 100.0, pass_limit: int = 4):
        if budget_percent < 0:
            raise ValueError("budget_percent must be non-negative")
        if pass_limit < 1:
            raise ValueError("pass_limit must be at least 1")
        self.initial_cost = program_cost(program)
        self.allowance = self.initial_cost * (budget_percent / 100.0)
        self.limit = self.initial_cost + self.allowance
        self.pass_limit = pass_limit
        self.stages = self._stage_thresholds()
        self.current = self.initial_cost

    def _stage_thresholds(self) -> List[float]:
        """``S[p] = C + B * f(p)`` with f rising linearly from 0.2 to 1."""
        if self.pass_limit == 1:
            return [self.initial_cost + self.allowance]
        thresholds = []
        for p in range(self.pass_limit):
            fraction = FIRST_STAGE_FRACTION + (1.0 - FIRST_STAGE_FRACTION) * (
                p / (self.pass_limit - 1)
            )
            thresholds.append(self.initial_cost + self.allowance * fraction)
        return thresholds

    def stage_limit(self, pass_number: int) -> float:
        index = min(pass_number, len(self.stages) - 1)
        return self.stages[index]

    def exhausted(self) -> bool:
        return self.current >= self.limit

    def fits(self, delta: float, pass_number: int) -> bool:
        """Would spending ``delta`` stay within this pass's stage?"""
        return self.current + delta <= self.stage_limit(pass_number)

    def charge(self, delta: float) -> None:
        self.current += delta

    def recalibrate(self, program: Program) -> None:
        """Replace the estimate with the measured cost (Figures 3/4:
        "optimize clones and recalibrate")."""
        self.current = program_cost(program)

    @staticmethod
    def inline_delta(caller_size: float, callee_size: float) -> float:
        """Cost increase of inlining a callee body into a caller.

        The caller grows to roughly ``caller + callee`` instructions
        (the call instruction is replaced by the body plus glue); the
        quadratic model charges the difference of squares.
        """
        new_size = caller_size + callee_size
        return new_size ** 2 - caller_size ** 2

    @staticmethod
    def clone_delta(clonee_size: float, deletes_clonee: bool) -> float:
        """Cost increase of materializing one clone.

        "a clone group that ensures that the clonee will be deleted is
        considered to have no compile time impact."
        """
        if deletes_clonee:
            return 0.0
        return clonee_size ** 2
