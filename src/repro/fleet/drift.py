"""Profile drift: how far has behaviour moved since the last build?

The reoptimize decision compares the collector's current merged profile
against the profile that produced the build now being served.  The
distance is the **total-variation distance** between the two profiles'
normalized count distributions — ``0.5 * Σ |p(k) - q(k)|`` over the
union of keys — taken over both block counts and call-site counts and
reporting the worse of the two.  TV distance is the natural choice
here: it is exactly the largest difference in probability mass the two
profiles assign to any set of program points, i.e. the most the
optimizer's notion of "hot" can have shifted.  Normalizing first makes
the measure invariant to how *much* evidence each side holds (the
fleet merge grows every round; raw counts would always "drift").

A build with no profile at all (the initial profile-less serving
build) is at maximal drift 1.0 from any real profile, which is what
bootstraps the first rebuild.

:class:`DriftTracker` smooths the round-by-round measure with an
exponential moving average so a single noisy round cannot trigger a
rebuild storm; the controller acts on the smoothed value.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..profile.database import ProfileDatabase


def _tv_distance(a: Dict, b: Dict) -> float:
    total_a = float(sum(a.values()))
    total_b = float(sum(b.values()))
    if total_a <= 0.0 and total_b <= 0.0:
        return 0.0
    if total_a <= 0.0 or total_b <= 0.0:
        return 1.0
    keys = set(a) | set(b)
    return 0.5 * sum(
        abs(a.get(key, 0) / total_a - b.get(key, 0) / total_b) for key in keys
    )


def profile_drift(
    base: Optional[ProfileDatabase], current: Optional[ProfileDatabase]
) -> float:
    """TV distance in [0, 1] between two profiles' hotness mass."""
    if current is None:
        return 0.0  # nothing new measured: nothing to act on
    if base is None:
        return 1.0  # serving an unprofiled build: maximal drift
    return max(
        _tv_distance(base.block_counts, current.block_counts),
        _tv_distance(base.site_counts, current.site_counts),
    )


class DriftTracker:
    """EMA smoothing of the round-by-round drift signal."""

    def __init__(self, alpha: float = 0.5):
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        self.alpha = alpha
        self.value: Optional[float] = None

    def update(self, drift: float) -> float:
        if self.value is None:
            self.value = drift
        else:
            self.value = self.alpha * drift + (1.0 - self.alpha) * self.value
        return self.value

    def reset(self) -> None:
        """Forget history (called after a swap re-anchors the baseline)."""
        self.value = None
