"""Fixtures for the parallel/incremental compilation tests."""

from __future__ import annotations

import pytest

from repro.linker.isom import to_isom_text

# A three-module program with cross-module calls, small enough that a
# full cp build (train + compile + HLO) stays fast in the suite.
SOURCES = [
    (
        "util",
        "int add(int a, int b) { return a + b; }\n"
        "int mul(int a, int b) { return a * b; }\n",
    ),
    (
        "mid",
        "extern int add(int a, int b);\n"
        "int twice(int x) { return add(x, x); }\n",
    ),
    (
        "main",
        "extern int twice(int x);\n"
        "extern int mul(int a, int b);\n"
        "int main() { int n = input(0); print_int(mul(twice(n), 3)); return 0; }\n",
    ),
]

TRAIN_INPUTS = [[5]]
REF_INPUT = [7]


@pytest.fixture
def sources():
    return [(name, text) for name, text in SOURCES]


def isoms(result):
    """Module name -> final isom text, for byte-level comparisons."""
    return {
        name: to_isom_text(module)
        for name, module in result.program.modules.items()
    }
