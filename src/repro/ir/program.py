"""Whole programs: an ordered collection of modules plus the runtime ABI.

Procedure and global names are unique program-wide (the front end
mangles statics), so ``Program`` keeps flat indexes over its modules.
``RUNTIME_BUILTINS`` is the small runtime library every program links
against; calls to these names are *external* call sites in the Figure 5
taxonomy — visible to the call graph but never inlined or cloned.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .module import GlobalVar, Module
from .procedure import Procedure
from .types import Signature, Type

# The runtime library (provided by the interpreter, akin to libc):
RUNTIME_BUILTINS: Dict[str, Signature] = {
    # print an integer to the program's output vector
    "print_int": Signature((Type.INT,), Type.VOID),
    # print a float to the program's output vector
    "print_flt": Signature((Type.FLT,), Type.VOID),
    # read element i of the input vector (0 when out of range)
    "input": Signature((Type.INT,), Type.INT),
    # number of elements in the input vector
    "input_len": Signature((), Type.INT),
    # terminate the program with an exit code
    "exit": Signature((Type.INT,), Type.VOID),
    # absolute value helper (a typical tiny libm entry point)
    "abs": Signature((Type.INT,), Type.INT),
    # allocate n heap words, returning the base address
    "sbrk": Signature((Type.INT,), Type.INT),
    # varargs access (valid inside a varargs procedure): extra arg i
    "va_arg": Signature((Type.INT,), Type.INT),
    # number of extra arguments passed to the current varargs procedure
    "va_count": Signature((), Type.INT),
}


class Program:
    """An ordered set of modules forming one executable image."""

    def __init__(self, modules: Optional[List[Module]] = None):
        self.modules: Dict[str, Module] = {}
        # Lazily populated by repro.interp.engine with a PlanCache of
        # pre-decoded execution plans; kept opaque here so the IR layer
        # never imports the interpreter.  Plans self-invalidate by
        # procedure fingerprint, so this only needs explicit clearing to
        # release memory.
        self._plan_cache = None
        # Same idea for the codegen engine's compiled-source plans
        # (repro.interp.codegen); invalidation covers both.
        self._codegen_cache = None
        for mod in modules or []:
            self.add_module(mod)

    def invalidate_plans(self) -> None:
        """Drop any cached execution plans (see ``repro.interp.engine``
        and ``repro.interp.codegen``)."""
        self._plan_cache = None
        self._codegen_cache = None

    def __getstate__(self):
        # Execution plans hold closures and exec-compiled code objects,
        # neither of which pickles; strip them so Programs cross process
        # boundaries (the sharded bench runner) and rebuild lazily.
        state = self.__dict__.copy()
        state["_plan_cache"] = None
        state["_codegen_cache"] = None
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_module(self, mod: Module) -> Module:
        if mod.name in self.modules:
            raise ValueError("duplicate module: {}".format(mod.name))
        for name in mod.procs:
            if self.proc(name) is not None:
                raise ValueError("duplicate procedure across modules: {}".format(name))
        for name in mod.globals:
            if self.global_var(name) is not None:
                raise ValueError("duplicate global across modules: {}".format(name))
        self.modules[mod.name] = mod
        return mod

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def proc(self, name: str) -> Optional[Procedure]:
        for mod in self.modules.values():
            if name in mod.procs:
                return mod.procs[name]
        return None

    def global_var(self, name: str) -> Optional[GlobalVar]:
        for mod in self.modules.values():
            if name in mod.globals:
                return mod.globals[name]
        return None

    def all_procs(self) -> Iterator[Procedure]:
        for mod in self.modules.values():
            yield from mod.procs.values()

    def all_globals(self) -> Iterator[GlobalVar]:
        for mod in self.modules.values():
            yield from mod.globals.values()

    def proc_names(self) -> List[str]:
        return [p.name for p in self.all_procs()]

    def main(self) -> Procedure:
        proc = self.proc("main")
        if proc is None:
            raise ValueError("program has no 'main' procedure")
        return proc

    def is_builtin(self, name: str) -> bool:
        return name in RUNTIME_BUILTINS

    def is_defined(self, name: str) -> bool:
        """True when ``name`` is a procedure with a body in this program."""
        return self.proc(name) is not None

    def callee_signature(self, name: str) -> Optional[Signature]:
        """Best-known signature for a callee name (defined, builtin, or extern)."""
        proc = self.proc(name)
        if proc is not None:
            return proc.signature()
        if name in RUNTIME_BUILTINS:
            return RUNTIME_BUILTINS[name]
        for mod in self.modules.values():
            if name in mod.externs:
                return mod.externs[name]
        return None

    def size(self) -> int:
        return sum(m.size() for m in self.modules.values())

    def delete_proc(self, name: str) -> None:
        for mod in self.modules.values():
            if name in mod.procs:
                del mod.procs[name]
                return
        raise KeyError(name)

    def __str__(self) -> str:
        return "\n\n".join(str(m) for m in self.modules.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Program ({} modules, {} procs, {} instrs)>".format(
            len(self.modules), len(list(self.all_procs())), self.size()
        )
