"""Worker-pool failures degrade to serial compilation; input errors don't."""

from __future__ import annotations

import os
import time

import pytest

import repro.parallel.executor as executor
from repro.frontend.errors import CompileError
from repro.linker.toolchain import Toolchain
from repro.parallel import MapOutcome, compile_sources, parallel_map

from .conftest import REF_INPUT, TRAIN_INPUTS, isoms


class _BrokenPool:
    """Stands in for ProcessPoolExecutor when the OS says no."""

    def __init__(self, *args, **kwargs):
        raise OSError("no processes for you")


@pytest.fixture
def broken_pool(monkeypatch):
    monkeypatch.setattr(executor, "ProcessPoolExecutor", _BrokenPool)


def test_parallel_map_falls_back_serially(broken_pool):
    warnings = []
    results, fell_back = parallel_map(
        lambda x: x * 2, [1, 2, 3], jobs=4, warn=warnings.append
    )
    assert results == [2, 4, 6]
    assert fell_back
    assert warnings and "serially" in warnings[0]


def test_compile_sources_survives_broken_pool(sources, broken_pool):
    program, stats = compile_sources(sources, jobs=4)
    assert list(program.modules) == [name for name, _text in sources]
    assert stats.serial_fallback
    assert stats.compiled == len(sources)


def test_toolchain_records_fallback_as_warning_not_degradation(
    sources, broken_pool
):
    result = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=4).build("cp")
    assert result.diagnostics.parallel_fallbacks
    assert any("serially" in w for w in result.diagnostics.warnings)
    assert "serial fallback" in result.diagnostics.summary(result.report)
    assert not result.degraded  # output identical, only slower to produce


def test_fallback_output_matches_healthy_build(sources, broken_pool):
    degraded_pool = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=4).build("cp")
    healthy = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=1).build("cp")
    assert isoms(degraded_pool) == isoms(healthy)
    behavior_a = degraded_pool.run(REF_INPUT)[1].behavior()
    behavior_b = healthy.run(REF_INPUT)[1].behavior()
    assert behavior_a == behavior_b


def test_compile_errors_propagate_through_workers():
    bad = [("ok", "int f() { return 1; }"), ("bad", "this is not minic")]
    with pytest.raises(CompileError):
        compile_sources(bad, jobs=2)


def test_worker_exception_class_recorded(sources, broken_pool):
    """The bare except no longer swallows the class name silently."""
    _program, stats = compile_sources(sources, jobs=4)
    assert "OSError" in stats.worker_errors


def test_diagnostics_carry_worker_errors_into_metrics(sources, broken_pool):
    result = Toolchain(sources, train_inputs=TRAIN_INPUTS, jobs=4).build("cp")
    assert "OSError" in result.diagnostics.worker_errors
    metrics = result.diagnostics.metrics(result.report)
    assert metrics.value("build.worker_errors") >= 1
    assert metrics.value("build.compile_timeouts") == 0


# The sentinel rides in the environment (inherited by fork and spawn
# children alike), so only pool workers sleep — the serial retry in the
# parent stays fast.
_PID_VAR = "_REPRO_TEST_PARENT_PID"


def _slow_in_worker(x):
    if os.environ.get(_PID_VAR) != str(os.getpid()):
        time.sleep(1.5)
    return x * 3


def test_parallel_map_watchdog_degrades_to_serial(monkeypatch):
    monkeypatch.setenv(_PID_VAR, str(os.getpid()))
    warnings = []
    results, outcome = parallel_map(
        _slow_in_worker, [1, 2, 3], jobs=2, warn=warnings.append, timeout=0.2
    )
    assert results == [3, 6, 9]
    assert outcome.fell_back
    assert outcome.timeouts >= 1
    assert warnings and "stalled" in warnings[0] and "serially" in warnings[0]


def test_compile_sources_counts_watchdog_timeouts(sources, monkeypatch):
    """Timeouts surface as ``compile_timeouts`` with their own reason."""
    real = executor.parallel_map

    def stalled(func, items, jobs=1, warn=None, timeout=None, pool=None):
        results, _outcome = real(func, items, jobs=1)
        if warn is not None:
            warn("parallel compile stalled (2 module(s) ...); compiling serially")
        return results, MapOutcome(fell_back=True, timeouts=2)

    monkeypatch.setattr(executor, "parallel_map", stalled)
    _program, stats = compile_sources(sources, jobs=4, timeout=0.1)
    assert stats.serial_fallback
    assert stats.compile_timeouts == 2
    assert stats.fallback_reason == "compile timeout"


def test_toolchain_records_compile_timeouts(sources, monkeypatch):
    real = executor.parallel_map

    def stalled(func, items, jobs=1, warn=None, timeout=None, pool=None):
        results, _outcome = real(func, items, jobs=1)
        return results, MapOutcome(fell_back=True, timeouts=1)

    monkeypatch.setattr(executor, "parallel_map", stalled)
    result = Toolchain(
        sources, train_inputs=TRAIN_INPUTS, jobs=4, compile_timeout=0.1
    ).build("cp")
    assert result.diagnostics.compile_timeouts >= 1
    assert any("timeout" in f for f in result.diagnostics.parallel_fallbacks)
    metrics = result.diagnostics.metrics(result.report)
    assert metrics.value("build.compile_timeouts") >= 1
    assert not result.degraded  # slower to produce, identical output
