"""Minimal ASCII charts for the archived experiment outputs.

The archived tables gain a visual: Figure 8's budget curves render as a
scatter of one glyph per budget level, which is close to how the paper
prints them (run time vs number of transforms, one line per budget).
Pure text, deterministic, no dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

Series = Dict[float, List[Tuple[int, float]]]  # budget -> [(x, y)]

GLYPHS = "abcdefghijklmnop"


def ascii_curves(
    series: Series,
    width: int = 64,
    height: int = 16,
    x_label: str = "transforms performed",
    y_label: str = "run cycles",
) -> str:
    """Render one glyph-per-budget scatter plot of the Figure 8 curves."""
    points = [(x, y, b) for b, curve in sorted(series.items()) for x, y in curve]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = max(x_max - x_min, 1)
    y_span = max(y_max - y_min, 1e-9)

    grid = [[" "] * width for _ in range(height)]
    budget_glyph = {
        budget: GLYPHS[i % len(GLYPHS)]
        for i, budget in enumerate(sorted(series))
    }
    for x, y, budget in points:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y_max - y) / y_span * (height - 1)))
        grid[row][col] = budget_glyph[budget]

    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            prefix = "{:>9.0f} |".format(y_max)
        elif i == height - 1:
            prefix = "{:>9.0f} |".format(y_min)
        else:
            prefix = " " * 9 + " |"
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10 + " {}={} ... {}={}  ({}, y={})".format(
            x_label, x_min, x_label, x_max, x_label, y_label
        )
    )
    legend = "  ".join(
        "{}=budget {:.0f}%".format(glyph, budget)
        for budget, glyph in sorted(budget_glyph.items())
    )
    lines.append(" " * 10 + " " + legend)
    return "\n".join(lines)
