"""Lexer for minic, the C-subset front-end language.

minic is the reproduction's stand-in for the paper's C sources: it has
globals and file statics, arrays, word-granular pointers, function
pointers, varargs, floats, and the full C statement/expression core —
enough to write the SPEC-like workloads and to exercise every legality
screen in HLO (varargs, arity mismatches, alloca, statics promotion).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .errors import CompileError

KEYWORDS = frozenset(
    [
        "int", "float", "void",
        "if", "else", "while", "for", "do", "return", "break", "continue",
        "switch", "case", "default",
        "static", "extern", "inline", "noinline", "noclone", "reassoc",
    ]
)

# Token kinds beyond keywords: NAME, INT, FLOAT, CHAR, punctuation, EOF.
_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<line_comment>//[^\n]*)
  | (?P<block_comment>/\*.*?\*/)
  | (?P<float>(?:\d+\.\d*(?:[eE][-+]?\d+)?|\.\d+(?:[eE][-+]?\d+)?|\d+[eE][-+]?\d+))
  | (?P<int>0[xX][0-9a-fA-F]+|\d+)
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<name>[A-Za-z_]\w*)
  | (?P<punct>\.\.\.|<<=|>>=|\|\||&&|==|!=|<=|>=|<<|>>|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|[-+*/%<>=!~&|^?:;,.(){}\[\]])
    """,
    re.VERBOSE | re.DOTALL,
)

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    kind: str  # 'name', 'int', 'float', 'kw', 'punct', 'eof'
    text: str
    line: int

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return "{}({!r})@{}".format(self.kind, self.text, self.line)


def tokenize(source: str, module: str = "") -> List[Token]:
    """Tokenize minic source, raising :class:`CompileError` on bad input."""
    tokens: List[Token] = []
    pos = 0
    line = 1
    n = len(source)
    while pos < n:
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise CompileError(
                "unexpected character {!r}".format(source[pos]), line, module
            )
        text = m.group(0)
        kind = m.lastgroup
        if kind in ("ws", "line_comment", "block_comment"):
            line += text.count("\n")
            pos = m.end()
            continue
        if kind == "name":
            tok_kind = "kw" if text in KEYWORDS else "name"
            tokens.append(Token(tok_kind, text, line))
        elif kind == "int":
            tokens.append(Token("int", text, line))
        elif kind == "float":
            tokens.append(Token("float", text, line))
        elif kind == "char":
            value = _char_value(text, line, module)
            tokens.append(Token("int", str(value), line))
        else:
            tokens.append(Token("punct", text, line))
        line += text.count("\n")
        pos = m.end()
    tokens.append(Token("eof", "", line))
    return tokens


def _char_value(text: str, line: int, module: str) -> int:
    inner = text[1:-1]
    if inner.startswith("\\"):
        esc = inner[1]
        if esc not in _ESCAPES:
            raise CompileError("unknown escape {!r}".format(inner), line, module)
        return _ESCAPES[esc]
    return ord(inner)
