#!/usr/bin/env python
"""Figure 8 in miniature: sweep the inliner's budget and watch run time.

The paper validates its heuristics by varying the budget from 25 to
1000 and artificially stopping the inliner after N transforms: run time
falls almost monotonically and flattens once the budget is "sufficiently
large".  This example reproduces the sweep for one workload and prints
the curve per budget level.

Run:  python examples/budget_explorer.py [workload]
"""

import sys
from dataclasses import replace

from repro import HLOConfig
from repro.bench import Lab, format_table
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "li"
    if name not in workload_names():
        raise SystemExit("unknown workload {!r}; try one of {}".format(
            name, ", ".join(workload_names())))
    workload = get_workload(name)
    lab = Lab()
    toolchain = lab.toolchain(name)

    rows = []
    for budget in (25.0, 100.0, 400.0, 1000.0):
        cfg = HLOConfig(budget_percent=budget)
        full = toolchain.build("cp", cfg)
        total = full.report.transform_count
        # Sample a few stop-after points along the curve.
        stops = sorted({0, total // 4, total // 2, (3 * total) // 4, total})
        curve = []
        for stop in stops:
            build = toolchain.build("cp", replace(cfg, stop_after=stop))
            metrics, _run = build.run(workload.ref_input, machine=lab.machine)
            curve.append((build.report.transform_count, metrics.cycles))
        first = curve[0][1]
        last = curve[-1][1]
        rows.append([
            int(budget),
            total,
            "{:.0f}".format(first),
            "{:.0f}".format(last),
            "{:.2f}x".format(first / last if last else 0.0),
            " -> ".join("{}:{:.0f}k".format(n, c / 1000) for n, c in curve),
        ])

    print(format_table(
        ["budget%", "transforms", "cycles@0", "cycles@full", "gain", "curve (N:cycles)"],
        rows,
        title="Budget sweep for {!r} (Figure 8 shape)".format(name),
    ))
    print("\nExpected shape: each curve falls as transforms are allowed, and")
    print("beyond some budget the endpoint stops improving (the asymptote).")


if __name__ == "__main__":
    main()
