"""Schema validation for observability outputs (CI gate).

``python -m repro.obs.validate --trace T.json --metrics M.json
[--ledger L.jsonl]`` checks that the artifacts CI uploads actually
parse and carry the fields their consumers (Perfetto, the bench
dashboard, the ledger tooling) rely on.  Pure stdlib — the checks are
hand-rolled rather than jsonschema-based so the validator runs in the
bare CI image.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .ledger import DECISIONS

_TRACE_PHASES = {"X", "i", "M", "B", "E", "C"}


def validate_trace(obj) -> List[str]:
    """Problems with a Chrome trace-event JSON object (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict) or "traceEvents" not in obj:
        return ["trace: top level must be an object with 'traceEvents'"]
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        return ["trace: 'traceEvents' must be a non-empty list"]
    for index, event in enumerate(events):
        where = "trace: event[{}]".format(index)
        if not isinstance(event, dict):
            errors.append(where + " is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append("{} missing {!r}".format(where, key))
        phase = event.get("ph")
        if phase not in _TRACE_PHASES:
            errors.append("{} has unknown ph {!r}".format(where, phase))
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    errors.append(
                        "{} {} must be a non-negative number".format(where, key)
                    )
        if phase == "i" and "ts" not in event:
            errors.append(where + " instant missing 'ts'")
    return errors


def validate_metrics(obj) -> List[str]:
    """Problems with a ``--metrics-out`` JSON object (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["metrics: top level must be an object"]
    if not isinstance(obj.get("schema"), int):
        errors.append("metrics: missing integer 'schema'")
    for section in ("counters", "gauges"):
        table = obj.get(section)
        if not isinstance(table, dict):
            errors.append("metrics: missing object {!r}".format(section))
            continue
        for name, value in table.items():
            if not isinstance(value, (int, float)):
                errors.append(
                    "metrics: {}[{!r}] is not a number".format(section, name)
                )
    histograms = obj.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("metrics: missing object 'histograms'")
    else:
        for name, summary in histograms.items():
            if not isinstance(summary, dict):
                errors.append("metrics: histogram {!r} is not an object".format(name))
                continue
            for key in ("count", "sum", "min", "max", "mean", "p50", "p95"):
                if not isinstance(summary.get(key), (int, float)):
                    errors.append(
                        "metrics: histogram {!r} missing numeric {!r}".format(
                            name, key
                        )
                    )
    return errors


def validate_ledger_jsonl(text: str) -> List[str]:
    """Problems with an ``--explain-inlining-out`` JSONL file."""
    errors: List[str] = []
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return ["ledger: file is empty"]
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        return ["ledger: header line is not JSON: {}".format(exc)]
    for key in ("schema", "considered", "decisions", "rejection_classes"):
        if key not in header:
            errors.append("ledger: header missing {!r}".format(key))
    entries = 0
    for number, line in enumerate(lines[1:], start=2):
        try:
            record = json.loads(line)
        except ValueError as exc:
            errors.append("ledger: line {} is not JSON: {}".format(number, exc))
            continue
        entries += 1
        for key in ("phase", "pass", "caller", "callee", "site_id",
                    "decision", "reason", "reason_class"):
            if key not in record:
                errors.append(
                    "ledger: line {} missing {!r}".format(number, key)
                )
        if record.get("decision") not in DECISIONS:
            errors.append(
                "ledger: line {} has unknown decision {!r}".format(
                    number, record.get("decision")
                )
            )
    considered = header.get("considered")
    if isinstance(considered, int) and considered != entries:
        errors.append(
            "ledger: header says {} considered but file has {} entries".format(
                considered, entries
            )
        )
    return errors


def validate_bench(obj) -> List[str]:
    """Problems with a ``BENCH_smoke.json`` report (empty = valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return ["bench: top level must be an object"]
    if not isinstance(obj.get("schema"), int):
        errors.append("bench: missing integer 'schema'")
    workloads = obj.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        errors.append("bench: missing non-empty object 'workloads'")
    else:
        for name, entry in workloads.items():
            where = "bench: workloads[{!r}]".format(name)
            if not isinstance(entry, dict):
                errors.append(where + " is not an object")
                continue
            for key in ("compile_units", "cycles", "wall_s"):
                if not isinstance(entry.get(key), (int, float)):
                    errors.append("{} missing numeric {!r}".format(where, key))
            if not isinstance(entry.get("checksum"), str):
                errors.append(where + " missing string 'checksum'")
    for section in ("totals", "build", "cache", "observability"):
        if not isinstance(obj.get(section), dict):
            errors.append("bench: missing object {!r}".format(section))
    sampling = obj.get("sampling")
    if not isinstance(sampling, dict):
        errors.append("bench: missing object 'sampling'")
    else:
        for key in ("rate", "min_overlap", "mean_overlap"):
            if not isinstance(sampling.get(key), (int, float)):
                errors.append("bench: sampling missing numeric {!r}".format(key))
        per = sampling.get("workloads")
        if not isinstance(per, dict) or not per:
            errors.append("bench: sampling missing non-empty object 'workloads'")
        else:
            for name, entry in per.items():
                where = "bench: sampling.workloads[{!r}]".format(name)
                if not isinstance(entry, dict):
                    errors.append(where + " is not an object")
                    continue
                for key in ("overlap", "exact_decisions",
                            "sampled_decisions", "confidence"):
                    if not isinstance(entry.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(where, key)
                        )
                overlap = entry.get("overlap")
                if isinstance(overlap, (int, float)) and not 0.0 <= overlap <= 1.0:
                    errors.append(
                        "{} overlap {} outside [0, 1]".format(where, overlap)
                    )
    interp = obj.get("interp")
    if not isinstance(interp, dict):
        errors.append("bench: missing object 'interp'")
    else:
        if not isinstance(interp.get("engine"), str):
            errors.append("bench: interp missing string 'engine'")
        for key in ("min_speedup", "mean_speedup", "plans_compiled",
                    "plan_cache_hits", "codegen_min_speedup",
                    "codegen_mean_speedup", "codegen_plans_compiled",
                    "codegen_plan_cache_hits"):
            if not isinstance(interp.get(key), (int, float)):
                errors.append("bench: interp missing numeric {!r}".format(key))
        per = interp.get("workloads")
        if not isinstance(per, dict) or not per:
            errors.append("bench: interp missing non-empty object 'workloads'")
        else:
            for name, entry in per.items():
                where = "bench: interp.workloads[{!r}]".format(name)
                if not isinstance(entry, dict):
                    errors.append(where + " is not an object")
                    continue
                for key in ("steps", "steps_per_sec",
                            "reference_steps_per_sec", "speedup",
                            "codegen_steps_per_sec", "codegen_speedup"):
                    if not isinstance(entry.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(where, key)
                        )
                for key in ("speedup", "codegen_speedup"):
                    value = entry.get(key)
                    if isinstance(value, (int, float)) and value <= 0:
                        errors.append(
                            "{} {} {} is not positive".format(where, key, value)
                        )
    fleet = obj.get("fleet")
    if not isinstance(fleet, dict):
        errors.append("bench: missing object 'fleet'")
    else:
        for key in ("rounds", "seed", "fault_rate", "min_jaccard",
                    "mean_jaccard"):
            if not isinstance(fleet.get(key), (int, float)):
                errors.append("bench: fleet missing numeric {!r}".format(key))
        per = fleet.get("workloads")
        if not isinstance(per, dict) or not per:
            errors.append("bench: fleet missing non-empty object 'workloads'")
        else:
            for name, entry in per.items():
                where = "bench: fleet.workloads[{!r}]".format(name)
                if not isinstance(entry, dict):
                    errors.append(where + " is not an object")
                    continue
                for key in ("jaccard", "rebuilds", "rollbacks", "swaps",
                            "quarantined_epochs", "served_rolled_back"):
                    if not isinstance(entry.get(key), (int, float)):
                        errors.append(
                            "{} missing numeric {!r}".format(where, key)
                        )
                jac = entry.get("jaccard")
                if isinstance(jac, (int, float)) and not 0.0 <= jac <= 1.0:
                    errors.append(
                        "{} jaccard {} outside [0, 1]".format(where, jac)
                    )
    return errors


def _load_json(path: str, errors: List[str], label: str):
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        errors.append("{}: cannot load {}: {}".format(label, path, exc))
        return None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.obs.validate",
        description="schema-validate observability artifacts",
    )
    parser.add_argument("--trace", metavar="FILE",
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--metrics", metavar="FILE",
                        help="metrics JSON to validate")
    parser.add_argument("--ledger", metavar="FILE",
                        help="inlining-ledger JSONL to validate")
    parser.add_argument("--bench", metavar="FILE",
                        help="BENCH_smoke.json report to validate")
    args = parser.parse_args(argv)
    if not (args.trace or args.metrics or args.ledger or args.bench):
        parser.error(
            "nothing to validate: pass --trace/--metrics/--ledger/--bench"
        )

    errors: List[str] = []
    if args.trace:
        obj = _load_json(args.trace, errors, "trace")
        if obj is not None:
            errors.extend(validate_trace(obj))
    if args.metrics:
        obj = _load_json(args.metrics, errors, "metrics")
        if obj is not None:
            errors.extend(validate_metrics(obj))
    if args.ledger:
        try:
            with open(args.ledger) as handle:
                errors.extend(validate_ledger_jsonl(handle.read()))
        except OSError as exc:
            errors.append("ledger: cannot load {}: {}".format(args.ledger, exc))
    if args.bench:
        obj = _load_json(args.bench, errors, "bench")
        if obj is not None:
            errors.extend(validate_bench(obj))

    for error in errors:
        print("FAIL:", error, file=sys.stderr)
    if not errors:
        print("observability artifacts valid")
    return 1 if errors else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
