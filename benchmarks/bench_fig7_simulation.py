"""Figure 7: PA8000 simulation results for the four transform variants.

Paper: for several benchmarks, a PA8000 simulator reports relative
cycles, CPI, relative I-cache accesses, I-cache miss rate, relative
D-cache accesses, D-cache miss rate, relative branches, and branch miss
rate — each scaled to the neither-inlining-nor-cloning run.  The claims
the figure supports:

- "in several benchmarks inlining has resulted in dramatic drops in
  overall execution time (cycles) and the number of instructions
  retired";
- "inlining reduces the total number of I-cache accesses" even as the
  miss *rate* may rise (same misses over fewer accesses, plus code
  expansion);
- "the number of D-cache accesses is also dramatically decreased ...
  a big part of this is the elimination of caller and callee register
  save operations at call sites that have been inlined";
- "the number of branches overall is reduced" (calls are branches).
"""

from __future__ import annotations

from repro.bench import FIG7_WORKLOADS, fig7_simulation, format_table


def test_fig7_machine_metrics(benchmark, lab, archive):
    headers, rows = benchmark.pedantic(
        fig7_simulation, args=(lab,), rounds=1, iterations=1
    )
    text = format_table(headers, rows, "Figure 7: machine metrics relative to neither")
    archive("fig7_simulation", text)

    table = {(r[0], r[1]): dict(zip(headers, r)) for r in rows}
    for name in FIG7_WORKLOADS:
        neither = table[(name, "neither")]
        both = table[(name, "both")]
        assert abs(neither["rel_cycles"] - 1.0) < 1e-9
        # Cycles drop with both transforms on every simulated workload.
        assert both["rel_cycles"] < 1.0, name
        # Fewer I-cache accesses (fewer retired instructions) ...
        assert both["rel_icache_acc"] < 1.02, name
        # ... fewer D-cache accesses (save/restore elimination) ...
        assert both["rel_dcache_acc"] < 1.0, name
        # ... and fewer branches (calls and returns are branches).
        assert both["rel_branches"] < 1.0, name

    benchmark.extra_info["rows"] = [list(map(str, r)) for r in rows]


def test_fig7_large_icache_mitigates_expansion(benchmark, archive):
    """The abstract's cache claim: "a large instruction cache mitigates
    the impact of code expansion."  With the default (large) I-cache the
    inlined image's miss rate stays negligible; shrinking the cache
    below the expanded code's footprint makes the expansion visible as
    misses and erodes part of the win."""
    from repro.bench import Lab
    from repro.machine import MachineConfig

    def measure():
        rows = []
        for icache_bytes in (8192, 1024):
            lab = Lab(machine=MachineConfig(icache_bytes=icache_bytes))
            base, _ = lab.measure_variant("vortex", "neither")
            both, _ = lab.measure_variant("vortex", "both")
            rows.append(
                [
                    icache_bytes,
                    both.cycles / base.cycles,
                    base.icache_miss_rate,
                    both.icache_miss_rate,
                ]
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = format_table(
        ["icache_bytes", "rel_cycles_both", "imr_neither", "imr_both"],
        rows,
        "Figure 7 addendum: I-cache size vs inlining benefit (vortex)",
    )
    archive("fig7_icache_sensitivity", text)

    large, small = rows
    # The expanded code misses more in the small cache ...
    assert small[3] > large[3]
    # ... which erodes (but does not erase) the speedup.
    assert small[1] > large[1]
    assert small[1] < 1.0
