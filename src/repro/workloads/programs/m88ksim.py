"""``m88ksim`` — a tiny CPU simulator (analog of SPEC 124.m88ksim).

An instruction-set simulator's core is a fetch/decode/dispatch loop
over small opcode handlers; the paper names m88ksim one of the
benchmarks where *cloning* is a vital contributor (the dispatcher is
repeatedly called with constant mode arguments).  The simulated ISA
here has a register file, memory, ALU/branch/memory ops, and a
``step(trace)`` entry whose constant ``trace=0`` argument at the hot
call site is exactly the clone-spec bait.

Inputs: [guest loop count, guest array size, simulator step cap].
"""

from ..suite import Workload, register

CPU = """
// Guest machine state.
int regs[16];
int gmem[1024];
int pc = 0;
int halted = 0;
int cycles = 0;

void reset() {
  int i;
  for (i = 0; i < 16; i++) regs[i] = 0;
  pc = 0;
  halted = 0;
  cycles = 0;
}

int get_reg(int r) { return regs[r & 15]; }
void set_reg(int r, int v) { if ((r & 15) != 0) regs[r & 15] = v; }
int get_pc() { return pc; }
void set_pc(int v) { pc = v & 1023; }
int load_mem(int a) { return gmem[a & 1023]; }
void store_mem(int a, int v) { gmem[a & 1023] = v; }
int is_halted() { return halted; }
void halt() { halted = 1; }
void tick() { cycles = cycles + 1; }
int cycle_count() { return cycles; }
"""

OPS = """
extern int get_reg(int r);
extern void set_reg(int r, int v);
extern int get_pc();
extern void set_pc(int v);
extern int load_mem(int a);
extern void store_mem(int a, int v);
extern void halt();

// Encoding: op in bits 12..15, d in 8..11, a in 4..7, b/imm in 0..3.
static int fld_op(int w) { return (w >> 12) & 15; }
static int fld_d(int w) { return (w >> 8) & 15; }
static int fld_a(int w) { return (w >> 4) & 15; }
static int fld_b(int w) { return w & 15; }

static void op_add(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) + get_reg(fld_b(w))); }
static void op_sub(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) - get_reg(fld_b(w))); }
static void op_mul(int w) { set_reg(fld_d(w), (get_reg(fld_a(w)) * get_reg(fld_b(w))) % 65521); }
static void op_addi(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) + fld_b(w)); }
static void op_subi(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) - fld_b(w)); }
static void op_and(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) & get_reg(fld_b(w))); }
static void op_xor(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) ^ get_reg(fld_b(w))); }
static void op_shl(int w) { set_reg(fld_d(w), get_reg(fld_a(w)) << fld_b(w)); }
static void op_ld(int w) { set_reg(fld_d(w), load_mem(get_reg(fld_a(w)) + fld_b(w))); }
static void op_st(int w) { store_mem(get_reg(fld_a(w)) + fld_b(w), get_reg(fld_d(w))); }

static void op_beq(int w) {
  if (get_reg(fld_d(w)) == get_reg(fld_a(w))) set_pc(get_pc() + fld_b(w) - 8);
}

static void op_bne(int w) {
  if (get_reg(fld_d(w)) != get_reg(fld_a(w))) set_pc(get_pc() + fld_b(w) - 8);
}

int execute(int w, int trace) {
  int op = fld_op(w);
  if (trace) {
    // A real simulator would log; tracing is off on the hot path, and
    // cloning execute(w, 0) deletes this branch entirely.
    print_int(op);
  }
  switch (op) {
    case 0: halt(); return 0;
    case 1: op_add(w); break;
    case 2: op_sub(w); break;
    case 3: op_mul(w); break;
    case 4: op_addi(w); break;
    case 5: op_subi(w); break;
    case 6: op_and(w); break;
    case 7: op_xor(w); break;
    case 8: op_shl(w); break;
    case 9: op_ld(w); break;
    case 10: op_st(w); break;
    case 11: op_beq(w); break;
    case 12: op_bne(w); break;
  }
  return 1;
}
"""

SIM = """
extern int execute(int w, int trace);
extern int get_pc();
extern void set_pc(int v);
extern int load_mem(int a);
extern int is_halted();
extern void tick();

int step(int trace) {
  int w = load_mem(get_pc());
  set_pc(get_pc() + 1);
  tick();
  return execute(w, trace);
}

int run(int max_steps) {
  int n = 0;
  while (!is_halted() && n < max_steps) {
    step(0);
    n = n + 1;
  }
  return n;
}
"""

MAIN = """
extern void reset();
extern void store_mem(int a, int v);
extern void set_reg(int r, int v);
extern int get_reg(int r);
extern void set_pc(int v);
extern int run(int max_steps);
extern int cycle_count();

// Host-side assembler for the guest program.
static int emit_at = 0;

static void emit(int op, int d, int a, int b) {
  store_mem(512 + emit_at, (op << 12) | (d << 8) | (a << 4) | (b & 15));
  emit_at = emit_at + 1;
}

// Branch offsets: when the guest branch at address P executes, pc is
// already P+1 and the handler does pc += b - 8, so b = target - P + 7.
static int boff(int target, int at) { return (target - at + 7) & 15; }

int main() {
  int loops = input(0);
  int asize = input(1);
  int cap = input(2);
  if (asize > 15) asize = 15;
  reset();
  // Guest data: gmem[0..asize-1] holds small values to sum.
  int i;
  for (i = 0; i < asize; i++) store_mem(i, (i * 3 + 1) & 15);

  // Guest registers: r1 outer counter, r2 index, r3 accumulator,
  // r4 inner bound, r5 scratch, r6 constant one, r8 outer bound.
  // Guest program (addresses relative to 512):
  emit_at = 0;
  emit(4, 1, 0, 0);            // 0: r1 = 0
  emit(4, 6, 0, 1);            // 1: r6 = 1
  emit(4, 2, 0, 0);            // 2: outer: r2 = 0
  emit(9, 5, 2, 0);            // 3: inner: r5 = mem[r2]
  emit(1, 3, 3, 5);            // 4: r3 = r3 + r5
  emit(1, 2, 2, 6);            // 5: r2 = r2 + 1
  emit(12, 2, 4, boff(3, 6));  // 6: bne r2, r4 -> 3
  emit(1, 1, 1, 6);            // 7: r1 = r1 + 1
  emit(12, 1, 8, boff(2, 8));  // 8: bne r1, r8 -> 2
  emit(0, 0, 0, 0);            // 9: halt

  set_reg(4, asize);
  set_reg(8, loops);
  set_pc(512);
  int steps = run(cap);
  print_int(get_reg(3));
  print_int(get_reg(1));
  print_int(steps);
  print_int(cycle_count());
  return get_reg(3) % 97;
}
"""

WORKLOAD = Workload(
    name="m88ksim",
    spec_analog="124.m88ksim (CPU simulator)",
    description="fetch/decode/dispatch loop over small opcode handlers",
    sources=(("cpu", CPU), ("ops", OPS), ("sim", SIM), ("simmain", MAIN)),
    train_inputs=((20, 10, 20000),),
    ref_input=(60, 14, 200000),
    suites=("95",),
)


def register_workload() -> None:
    register(WORKLOAD)
