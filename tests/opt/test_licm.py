"""Loop-invariant code motion."""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_program
from repro.interp import run_program
from repro.ir import BinOp, verify_program
from repro.opt import licm, optimize_program
from repro.workloads.generator import generate_sources

from ..conftest import single_proc_program


def loop_body_op_count(program, name, op):
    """Count `op` instructions in blocks that belong to loops."""
    from repro.analysis import find_loops

    proc = program.proc(name)
    body_labels = set()
    for loop in find_loops(proc):
        body_labels |= loop.body
    return sum(
        1
        for label in body_labels
        for instr in proc.blocks[label].instrs
        if getattr(instr, "op", None) == op
    )


class TestHoisting:
    def loopy(self):
        def body(b):
            n = b.call("input", [0])
            k = b.call("input", [1])
            s = b.reg("s")
            i = b.reg("i")
            b.mov(0, s)
            b.mov(0, i)
            head, body_b, done = b.new_block(), b.new_block(), b.new_block()
            b.jump(head)
            b.set_block(head)
            t = b.lt(i, n)
            b.branch(t, body_b, done)
            b.set_block(body_b)
            inv = b.mul(k, 3)  # invariant: k never changes in the loop
            step = b.add(inv, 1)  # invariant chain
            b.binop("add", s, step, dest=s)
            b.binop("add", i, 1, dest=i)
            b.jump(head)
            b.set_block(done)
            b.ret(s)

        return single_proc_program(body)

    def test_invariant_chain_hoisted(self):
        program = self.loopy()
        before = run_program(program, [5, 7]).behavior()
        assert licm(program, program.proc("main"))
        verify_program(program)
        assert run_program(program, [5, 7]).behavior() == before
        # The multiply left the loop body.
        assert loop_body_op_count(program, "main", "mul") == 0

    def test_zero_trip_loop_still_correct(self):
        program = self.loopy()
        licm(program, program.proc("main"))
        # n = 0: the loop body never runs; hoisted code must be benign.
        assert run_program(program, [0, 9]).exit_code == 0

    def test_variant_values_not_hoisted(self):
        def body(b):
            n = b.call("input", [0])
            s = b.reg("s")
            i = b.reg("i")
            b.mov(0, s)
            b.mov(0, i)
            head, body_b, done = b.new_block(), b.new_block(), b.new_block()
            b.jump(head)
            b.set_block(head)
            t = b.lt(i, n)
            b.branch(t, body_b, done)
            b.set_block(body_b)
            sq = b.mul(i, i)  # depends on i: NOT invariant
            b.binop("add", s, sq, dest=s)
            b.binop("add", i, 1, dest=i)
            b.jump(head)
            b.set_block(done)
            b.ret(s)

        program = single_proc_program(body)
        licm(program, program.proc("main"))
        assert loop_body_op_count(program, "main", "mul") == 1
        assert run_program(program, [4]).exit_code == 0 + 1 + 4 + 9

    def test_trapping_division_not_hoisted(self):
        def body(b):
            n = b.call("input", [0])
            d = b.call("input", [1])
            s = b.reg("s")
            i = b.reg("i")
            b.mov(0, s)
            b.mov(0, i)
            head, body_b, done = b.new_block(), b.new_block(), b.new_block()
            b.jump(head)
            b.set_block(head)
            t = b.lt(i, n)
            b.branch(t, body_b, done)
            b.set_block(body_b)
            q = b.div(100, d)  # traps when d == 0: must stay guarded
            b.binop("add", s, q, dest=s)
            b.binop("add", i, 1, dest=i)
            b.jump(head)
            b.set_block(done)
            b.ret(s)

        program = single_proc_program(body)
        licm(program, program.proc("main"))
        assert loop_body_op_count(program, "main", "div") == 1
        # n=0, d=0: no iteration, no trap — before and after LICM.
        assert run_program(program, [0, 0]).exit_code == 0

    def test_minic_loop(self):
        sources = [
            (
                "m",
                """
                int main() {
                  int n = input(0);
                  int k = input(1);
                  int s = 0;
                  for (int i = 0; i < n; i++) {
                    s += k * k + 3;
                  }
                  print_int(s);
                  return 0;
                }
                """,
            )
        ]
        program = compile_program(sources)
        before = run_program(program, [6, 4]).behavior()
        optimize_program(program)
        verify_program(program)
        assert run_program(program, [6, 4]).behavior() == before
        assert loop_body_op_count(program, "main", "mul") == 0

    def test_idempotent(self):
        program = self.loopy()
        licm(program, program.proc("main"))
        assert not licm(program, program.proc("main"))


class TestProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=200_000))
    def test_licm_preserves_behavior(self, seed):
        sources = generate_sources(seed)
        reference = run_program(compile_program(sources), max_steps=500_000)
        program = compile_program(sources)
        for proc in list(program.all_procs()):
            licm(program, proc)
        verify_program(program)
        result = run_program(program, max_steps=1_000_000)
        assert result.behavior() == reference.behavior()
