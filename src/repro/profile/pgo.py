"""Convenience wrapper for the two-compile PGO workflow.

``train()`` performs the instrumenting compile and the training run and
returns the profile database; the caller then recompiles fresh IR and
annotates it.  ``Toolchain`` in :mod:`repro.linker` drives both halves.
"""

from __future__ import annotations

from typing import Sequence, Union

from ..frontend.driver import SourceList, compile_program
from ..interp.interpreter import DEFAULT_ENGINE, DEFAULT_MAX_STEPS, run_program
from ..ir.program import Program
from .database import ProfileDatabase
from .instrument import instrument_program

InputVector = Sequence[Union[int, float]]


def train(
    sources: SourceList,
    training_inputs: Sequence[InputVector],
    entry: str = "main",
    max_steps: int = DEFAULT_MAX_STEPS,
    engine: str = DEFAULT_ENGINE,
) -> ProfileDatabase:
    """Instrumenting compile + training run(s) over ``training_inputs``.

    Each input vector is one training run; counts accumulate, so a
    training *set* (as SPEC provides) is a list of vectors.
    """
    db = ProfileDatabase()
    for inputs in training_inputs:
        # A fresh instrumented image per run keeps runs independent.
        program = compile_program(sources)
        probe_map = instrument_program(program)
        result = run_program(
            program, inputs, entry=entry, max_steps=max_steps, engine=engine
        )
        db.merge_run(program, probe_map, result.probe_counts, result.steps)
    return db


def train_program(
    program: Program,
    probe_free_builder,
    training_inputs: Sequence[InputVector],
) -> ProfileDatabase:  # pragma: no cover - thin alternative entry point
    """Train when a Program object (not sources) is the unit of work."""
    db = ProfileDatabase()
    for inputs in training_inputs:
        fresh = probe_free_builder()
        probe_map = instrument_program(fresh)
        result = run_program(fresh, inputs)
        db.merge_run(fresh, probe_map, result.probe_counts, result.steps)
    return db
