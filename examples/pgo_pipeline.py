#!/usr/bin/env python
"""The full profile-guided, cross-module pipeline on a real workload.

Reproduces the paper's Section 3.2 walk for one benchmark: compile the
``sc`` (spreadsheet) workload under all four scope configurations —

  base  module-at-a-time, no profile
  c     cross-module (isom/link-time path)
  p     profile feedback (instrument, train, recompile)
  cp    both

— and report transform counts, compile cost, and simulated run time,
the columns of the paper's Table 1.

Run:  python examples/pgo_pipeline.py [workload]
"""

import sys

from repro import HLOConfig, Toolchain
from repro.bench import format_table
from repro.workloads import get_workload, workload_names


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "sc"
    if name not in workload_names():
        raise SystemExit("unknown workload {!r}; try one of {}".format(
            name, ", ".join(workload_names())))

    workload = get_workload(name)
    print("workload: {} ({})".format(workload.name, workload.spec_analog))
    print("         ", workload.description)

    toolchain = Toolchain(
        list(workload.sources),
        train_inputs=[list(t) for t in workload.train_inputs],
    )
    config = HLOConfig(budget_percent=400)

    rows = []
    baseline_cycles = None
    behaviors = set()
    for scope in ("base", "c", "p", "cp"):
        result = toolchain.build(scope, config)
        metrics, run = result.run(workload.ref_input)
        behaviors.add(run.behavior())
        if baseline_cycles is None:
            baseline_cycles = metrics.cycles
        rows.append([
            scope,
            result.report.inlines,
            result.report.clones,
            result.report.clone_replacements,
            result.report.deletions,
            result.stats.compile_units,
            metrics.cycles,
            baseline_cycles / metrics.cycles,
        ])

    assert len(behaviors) == 1, "scopes must agree on program behaviour"
    print()
    print(format_table(
        ["scope", "inlines", "clones", "repls", "deletions",
         "compile_units", "run_cycles", "speedup"],
        rows,
        title="Table 1 walk for {!r} (reference input)".format(name),
    ))
    print("\nEvery scope produced identical program output — the paper's")
    print("monotonic-improvement property is visible in the speedup column.")


if __name__ == "__main__":
    main()
