"""Parser: declarations, statements, expression precedence, errors."""

import pytest

from repro.frontend import CompileError, parse_source
from repro.frontend import ast


def parse(source):
    return parse_source(source, "t")


def parse_expr(text):
    unit = parse("int f() { return (" + text + "); }")
    return unit.decls[0].body.stmts[0].value


class TestTopLevel:
    def test_function_definition(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        func = unit.decls[0]
        assert isinstance(func, ast.FuncDef)
        assert func.name == "add"
        assert [p.name for p in func.params] == ["a", "b"]
        assert not func.is_proto

    def test_prototype(self):
        unit = parse("int f(int x);")
        assert unit.decls[0].is_proto

    def test_varargs(self):
        unit = parse("int f(int x, ...);")
        assert unit.decls[0].varargs

    def test_void_param_list(self):
        unit = parse("int f(void) { return 0; }")
        assert unit.decls[0].params == []

    def test_qualifiers(self):
        unit = parse("static inline int f() { return 0; }")
        assert set(unit.decls[0].quals) == {"static", "inline"}

    def test_global_scalar_and_array(self):
        unit = parse("int g = 5; static int arr[4] = {1, 2};")
        g, arr = unit.decls
        assert g.init == [5] and g.array_size is None
        assert arr.static and arr.array_size == 4 and arr.init == [1, 2]

    def test_global_brace_init_infers_size(self):
        unit = parse("int a[] = {1, 2, 3};" if False else "int a[3] = {1, 2, 3};")
        assert unit.decls[0].array_size == 3

    def test_comma_separated_globals(self):
        unit = parse("int a, b = 2, c[4];")
        assert [d.name for d in unit.decls] == ["a", "b", "c"]

    def test_float_global(self):
        unit = parse("float pi = 3.25;")
        assert unit.decls[0].init == [3.25]

    def test_negative_initializer(self):
        unit = parse("int g = -7;")
        assert unit.decls[0].init == [-7]

    def test_too_many_initializers(self):
        with pytest.raises(CompileError):
            parse("int a[2] = {1, 2, 3};")

    def test_void_variable_rejected(self):
        with pytest.raises(CompileError):
            parse("void g;")


class TestStatements:
    def test_if_else_chain(self):
        unit = parse("int f(int x) { if (x) return 1; else if (x < 0) return 2; return 3; }")
        stmt = unit.decls[0].body.stmts[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body, ast.If)

    def test_loops(self):
        unit = parse(
            "int f() { while (1) break; do continue; while (0); "
            "for (int i = 0; i < 3; i++) { } for (;;) break; return 0; }"
        )
        stmts = unit.decls[0].body.stmts
        assert isinstance(stmts[0], ast.While)
        assert isinstance(stmts[1], ast.DoWhile)
        assert isinstance(stmts[2], ast.For)
        bare_for = stmts[3]
        assert bare_for.init is None and bare_for.cond is None and bare_for.step is None

    def test_local_decl_list(self):
        unit = parse("int f() { int a = 1, b, c[8]; return a; }")
        block = unit.decls[0].body.stmts[0]
        assert isinstance(block, ast.Block)
        assert len(block.stmts) == 3
        assert block.stmts[2].array_size == 8

    def test_empty_statement(self):
        parse("int f() { ;;; return 0; }")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "add"
        assert expr.rhs.op == "mul"

    def test_precedence_shift_vs_compare(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "lt"
        assert expr.lhs.op == "shl"

    def test_left_associativity(self):
        expr = parse_expr("10 - 3 - 2")
        assert expr.op == "sub" and expr.lhs.op == "sub"

    def test_short_circuit_nodes(self):
        expr = parse_expr("a && b || c")
        assert isinstance(expr, ast.ShortCircuit) and expr.op == "||"
        assert expr.lhs.op == "&&"

    def test_ternary_right_associates(self):
        expr = parse_expr("a ? 1 : b ? 2 : 3")
        assert isinstance(expr, ast.Conditional)
        assert isinstance(expr.else_expr, ast.Conditional)

    def test_assignment_forms(self):
        unit = parse("int f(int a) { a = 1; a += 2; a <<= 3; return a; }")
        stmts = unit.decls[0].body.stmts
        assert stmts[0].expr.op == ""
        assert stmts[1].expr.op == "add"
        assert stmts[2].expr.op == "shl"

    def test_assignment_right_associates(self):
        unit = parse("int f(int a, int b) { a = b = 1; return a; }")
        assign = unit.decls[0].body.stmts[0].expr
        assert isinstance(assign.value, ast.Assign)

    def test_invalid_assignment_target(self):
        with pytest.raises(CompileError):
            parse("int f() { 1 = 2; return 0; }")

    def test_unary_chain(self):
        expr = parse_expr("-~!x")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_postfix_chain(self):
        expr = parse_expr("f(1)[2]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.CallExpr)

    def test_inc_dec(self):
        pre = parse_expr("++x")
        post = parse_expr("x--")
        assert pre.prefix and pre.op == "++"
        assert not post.prefix and post.op == "--"

    def test_address_and_deref(self):
        expr = parse_expr("*&x")
        assert expr.op == "*" and expr.operand.op == "&"

    def test_call_args(self):
        expr = parse_expr("f(1, g(2), h())")
        assert len(expr.args) == 3
        assert len(expr.args[1].args) == 1
        assert expr.args[2].args == []


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "int f( { return 0; }",
            "int f() { return 0 }",
            "int f() { if return 0; }",
            "int f() { return ; } }",
            "int 3f() { return 0; }",
            "int f() {",
        ],
    )
    def test_syntax_errors(self, source):
        with pytest.raises(CompileError):
            parse(source)

    def test_error_carries_line(self):
        with pytest.raises(CompileError) as err:
            parse("int f() {\n  return 0\n}")
        assert err.value.line >= 2
