"""Deterministic fault injection for the resilience test matrix.

Every recovery path in the degradation ladder must be *provably* live —
a fallback that is never exercised is a fallback that has silently
rotted.  The injector manufactures the four failure classes the ladder
handles, all driven by one seeded :class:`random.Random` so a failing
test reproduces from its seed:

- a pass that raises (:func:`FaultInjector.failing_pass`);
- a pass that mutates IR into something the verifier rejects
  (:func:`FaultInjector.corrupting_pass`);
- truncated / garbled isom text (:func:`FaultInjector.corrupt_text`);
- garbled profile-database lines (same entry point).

Wired into :class:`~repro.linker.toolchain.Toolchain` via its
``fault_injector`` hook, which calls :meth:`corrupt_isom` /
:meth:`corrupt_profile` at the exact points real corruption would
enter: between serialization and parse.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..ir.instructions import Jump
from ..ir.procedure import Procedure
from ..ir.program import Program
from .errors import InjectedFault

CORRUPTION_MODES = ("truncate", "garble", "bitflip-checksum", "version-skew")


class FaultInjector:
    """Seeded source of deterministic faults.

    ``crash_pass`` / ``corrupt_pass`` name a scalar pass to sabotage
    (see :meth:`wrap_pipeline`); ``isom_modules`` lists module names
    whose isom text to corrupt; ``corrupt_profile_db`` garbles the
    profile database text.  ``mode`` picks the text-corruption flavour.
    """

    def __init__(
        self,
        seed: int = 0,
        crash_pass: Optional[str] = None,
        corrupt_pass: Optional[str] = None,
        isom_modules: Sequence[str] = (),
        corrupt_profile_db: bool = False,
        mode: str = "truncate",
    ):
        if mode not in CORRUPTION_MODES:
            raise ValueError(
                "unknown corruption mode {!r}; expected one of {}".format(
                    mode, CORRUPTION_MODES
                )
            )
        self.seed = seed
        self.rng = random.Random(seed)
        self.crash_pass = crash_pass
        self.corrupt_pass = corrupt_pass
        self.isom_modules = tuple(isom_modules)
        self.corrupt_profile_db = corrupt_profile_db
        self.mode = mode
        self.injected: List[str] = []  # log of every fault actually fired

    # ------------------------------------------------------------------
    # Pass-level faults
    # ------------------------------------------------------------------

    def failing_pass(self, name: str = "injected-crash"):
        """A scalar pass that always raises :class:`InjectedFault`."""

        def run(program: Program, proc: Procedure) -> bool:
            self.injected.append("crash:{}:{}".format(name, proc.name))
            raise InjectedFault(
                "injected crash in pass {!r} on @{} (seed {})".format(
                    name, proc.name, self.seed
                )
            )

        return run

    def corrupting_pass(self, name: str = "injected-corrupt"):
        """A scalar pass that breaks the IR instead of raising.

        Appends a jump to a label that does not exist, which the
        verifier rejects — modelling a pass whose output is wrong
        rather than one that crashes.
        """

        def run(program: Program, proc: Procedure) -> bool:
            blocks = [b for b in proc.blocks.values() if b.terminator is not None]
            if not blocks:
                return False
            block = blocks[self.rng.randrange(len(blocks))]
            bogus = "__injected_missing_{}".format(self.rng.randrange(1 << 16))
            block.instrs[-1] = Jump(bogus)
            self.injected.append("corrupt:{}:{}".format(name, proc.name))
            return True

        return run

    def wrap_pipeline(self, pipeline):
        """Sabotage the configured pass of a ``(name, fn)`` pipeline.

        The named pass keeps its position so bisection and quarantine
        report the pass a user would recognize.
        """
        wrapped = []
        for name, run in pipeline:
            if name == self.crash_pass:
                wrapped.append((name, self.failing_pass(name)))
            elif name == self.corrupt_pass:
                wrapped.append((name, self.corrupting_pass(name)))
            else:
                wrapped.append((name, run))
        return wrapped

    # ------------------------------------------------------------------
    # Text-level faults
    # ------------------------------------------------------------------

    def corrupt_text(self, text: str) -> str:
        """Damage serialized text per ``mode``, deterministically."""
        if self.mode == "truncate":
            # Cut mid-line somewhere in the back half of the payload.
            cut = self.rng.randrange(len(text) // 2, max(len(text) - 1, 1))
            return text[:cut]
        if self.mode == "garble":
            lines = text.splitlines()
            # Only lines with something to garble are candidates — the
            # fault must actually fire, every time, from any seed.
            victims = [
                i for i in range(1, len(lines))
                if any(ch.isalnum() for ch in lines[i])
            ]
            if victims:
                victim = self.rng.choice(victims)
                lines[victim] = "".join(
                    self.rng.choice("#!?~") if ch.isalnum() else ch
                    for ch in lines[victim]
                )
            return "\n".join(lines) + "\n"
        if self.mode == "bitflip-checksum":
            # Flip one hex digit of the header checksum, leaving the
            # payload intact: pure checksum-mismatch corruption.
            head, _, rest = text.partition("\n")
            fields = head.split()
            if fields and all(c in "0123456789abcdef" for c in fields[-1]):
                digits = list(fields[-1])
                pos = self.rng.randrange(len(digits))
                digits[pos] = "0" if digits[pos] != "0" else "f"
                fields[-1] = "".join(digits)
            return " ".join(fields) + "\n" + rest
        # version-skew: claim a far-future format version.
        head, _, rest = text.partition("\n")
        fields = head.split()
        if len(fields) >= 2:
            fields[1] = "999"
        return " ".join(fields) + "\n" + rest

    def corrupt_isom(self, text: str, module_name: str) -> str:
        if module_name not in self.isom_modules:
            return text
        self.injected.append("isom:{}:{}".format(self.mode, module_name))
        return self.corrupt_text(text)

    def corrupt_profile(self, text: str) -> str:
        if not self.corrupt_profile_db:
            return text
        self.injected.append("profile:{}".format(self.mode))
        return self.corrupt_text(text)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<FaultInjector seed={} mode={} fired={}>".format(
            self.seed, self.mode, len(self.injected)
        )
